"""repro — a reproduction of *Hermes: Providing Tight Control over
High-Performance SDN Switches* (Chen & Benson, CoNEXT 2017).

Hermes gives SDN control-plane actions (TCAM rule insertion / deletion /
modification) *performance guarantees* by carving a switch's TCAM into a
small, mostly-empty shadow table that absorbs all guaranteed insertions and
a large main table that rules predictively migrate into.

Quick start::

    from repro import (
        HermesService, GuaranteeSpec, pica8_p3290, FlowMod, Rule, Action,
    )

    service = HermesService()
    service.register_switch("edge-1", pica8_p3290())
    handle = service.CreateTCAMQoS("edge-1", GuaranteeSpec.milliseconds(5))
    hermes = service.installer(handle.shadow_id)
    result = hermes.apply(
        FlowMod.add(Rule.from_prefix("10.0.0.0/24", 100, Action.output(1)))
    )
    assert result.latency <= 5e-3

Package map — see DESIGN.md for the full inventory:

* :mod:`repro.core` — Hermes itself (Gate Keeper, Rule Manager, Algorithm 1).
* :mod:`repro.tcam` — the TCAM substrate and empirical switch models.
* :mod:`repro.switchsim` — FlowMods, installers, pipeline, switch agent.
* :mod:`repro.baselines` — ESPRES, Tango, ShadowSwitch, naive.
* :mod:`repro.simulator` — the Varys flow-level network simulator.
* :mod:`repro.topology` / :mod:`repro.traffic` / :mod:`repro.bgp` — workloads.
* :mod:`repro.experiments` — one module per table/figure in the paper.
"""

from .baselines import (
    EspresInstaller,
    NaiveInstaller,
    ShadowSwitchInstaller,
    TangoInstaller,
    make_installer,
)
from .core import (
    GuaranteeSpec,
    HermesConfig,
    HermesInstaller,
    HermesService,
    QoSHandle,
    asic_overhead,
    max_insertion_rate,
    shadow_capacity_for,
)
from .switchsim import FlowMod, FlowModCommand, FlowModResult, SwitchAgent
from .simulator import Simulation, SimulationConfig, TeAppConfig
from .tcam import (
    Action,
    Prefix,
    Rule,
    TernaryMatch,
    commodity_switch_models,
    dell_8132f,
    get_switch_model,
    hp_5406zl,
    ideal_switch,
    pica8_p3290,
)

__version__ = "1.0.0"

__all__ = [
    "Action",
    "EspresInstaller",
    "FlowMod",
    "FlowModCommand",
    "FlowModResult",
    "GuaranteeSpec",
    "HermesConfig",
    "HermesInstaller",
    "HermesService",
    "NaiveInstaller",
    "Prefix",
    "QoSHandle",
    "Rule",
    "ShadowSwitchInstaller",
    "Simulation",
    "SimulationConfig",
    "SwitchAgent",
    "TangoInstaller",
    "TeAppConfig",
    "TernaryMatch",
    "asic_overhead",
    "commodity_switch_models",
    "dell_8132f",
    "get_switch_model",
    "hp_5406zl",
    "ideal_switch",
    "make_installer",
    "max_insertion_rate",
    "pica8_p3290",
    "shadow_capacity_for",
    "__version__",
]
