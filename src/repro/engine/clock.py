"""Simulated time: the monotonic clock and serially-occupied resources.

Every layer of the reproduction used to keep private time state — the
simulator's ``self.now``, each switch agent's ``busy_until`` cursor, the
channel's per-message retry clock.  This module is the one place mutable
time lives now: a :class:`Clock` is the timeline (shared by everything
co-simulating in it), and a :class:`SerialResource` is the busy-horizon of
anything that executes one thing at a time (a switch CPU, a TCAM write
port).  The determinism lint's ``adhoc-event-loop`` rule keeps it that way:
``now``/``busy_until`` attributes outside ``repro.engine`` are findings.
"""

from __future__ import annotations


class Clock:
    """A monotonic simulated clock.

    The clock only moves forward, and only via :meth:`advance_to` — the
    scheduler (or a driving loop) advances it to each event's timestamp
    before dispatching.  Components never mutate time themselves; they read
    :attr:`now` and derive deadlines from it.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        """Start the timeline at ``start`` simulated seconds."""
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time, in seconds."""
        return self._now

    def advance_to(self, time: float) -> float:
        """Move the clock forward to ``time``; returns the new now.

        Raises ``ValueError`` on any attempt to move backwards — a
        scheduling bug that would silently corrupt every derived timeline.
        """
        if time < self._now:
            raise ValueError(
                f"clock cannot run backwards: now={self._now!r}, asked {time!r}"
            )
        self._now = time
        return self._now

    def __repr__(self) -> str:
        return f"Clock(now={self._now:.6f})"


class SerialResource:
    """A resource that serves one occupant at a time on a shared timeline.

    Models the switch-CPU semantics the agent used to keep in an ad-hoc
    ``busy_until`` float: work submitted at time *t* starts at
    ``max(t, free_at)`` and holds the resource until its finish time.
    Occupancy never moves backwards, so timings derived from it are
    monotone per resource even when submissions arrive out of order.
    """

    __slots__ = ("_free_at",)

    def __init__(self, free_at: float = 0.0) -> None:
        """Create the resource, free from ``free_at`` onwards."""
        self._free_at = float(free_at)

    @property
    def free_at(self) -> float:
        """Earliest time the resource can start new work."""
        return self._free_at

    def start_time(self, at_time: float) -> float:
        """When work submitted at ``at_time`` would begin (no state change)."""
        return max(at_time, self._free_at)

    def acquire(self, at_time: float, duration: float) -> float:
        """Occupy the resource for ``duration`` starting no earlier than
        ``at_time``; returns the start time.  ``free_at`` becomes
        ``start + duration``."""
        start = self.start_time(at_time)
        self._free_at = start + duration
        return start

    def occupy_until(self, time: float) -> None:
        """Extend the busy horizon to ``time`` (never backwards)."""
        if time > self._free_at:
            self._free_at = time

    def stall(self, at_time: float, duration: float) -> None:
        """Inject a pause: the horizon becomes ``max(free_at, at_time) +
        duration`` — the fault injector's CPU-stall semantics."""
        self._free_at = max(self._free_at, at_time) + duration

    def __repr__(self) -> str:
        return f"SerialResource(free_at={self._free_at:.6f})"
