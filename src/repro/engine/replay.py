"""Trace-driven replay: re-execute a recorded run on the kernel.

Every traced simulation leaves a ``hermes-trace/1`` file whose
``agent.action`` spans record, per switch, exactly when each FlowMod hit
the switch CPU and what command it carried.  This module closes the loop
the ROADMAP asked for: it reconstructs a timed workload from those spans,
re-executes it — against *any* scheme and switch model — on the shared
engine clock (all switches co-simulating in one
:class:`~repro.engine.scheduler.EventScheduler` timeline), and records a
fresh trace so the two runs diff stage-by-stage with ``python -m repro.obs
diff``.

Traces do not carry rule contents (spans record commands, not matches), so
the workload synthesizes deterministic stand-in rules: the *n*-th ADD on a
switch installs an exact-match rule keyed by *n* with the controller's TE
priority spread, and each DELETE removes the oldest live synthesized rule
on that switch (controller deletions are FIFO per flow).  The replay
therefore preserves the recorded arrival process, command mix, and
per-switch interleaving — the inputs that drive queueing and TCAM cost —
while the scheme/model under test supplies the latencies.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .clock import Clock
from .scheduler import EventScheduler


@dataclass(frozen=True)
class ReplayAction:
    """One recorded control-plane action, in trace order.

    Attributes:
        time: when the FlowMod reached the switch (the span's start).
        switch: recorded switch name.
        command: ``add`` / ``modify`` / ``delete``.
        xid: the recorded transaction id (None when the channel did not
            stamp one).
    """

    time: float
    switch: str
    command: str
    xid: Optional[int] = None


@dataclass
class ReplayReport:
    """Outcome of replaying a recorded trace against a fresh scheme.

    Attributes:
        scheme: installer scheme the workload was replayed against.
        switch_model: switch-model registry key used for every agent.
        switches: recorded switch names, in first-appearance order.
        actions: reconstructed actions (the replayed workload).
        executed: FlowMods actually submitted.
        skipped: DELETE/MODIFY actions dropped because no synthesized rule
            was live on their switch (trailing deletes of prefilled state).
        response_times: per-action queueing-inclusive times, in execution
            order across all switches.
        tracer: the recording tracer of the replayed run (None when the
            caller did not ask for one).
    """

    scheme: str
    switch_model: str
    switches: List[str] = field(default_factory=list)
    actions: List[ReplayAction] = field(default_factory=list)
    executed: int = 0
    skipped: int = 0
    response_times: List[float] = field(default_factory=list)
    tracer: object = None


def actions_from_records(records: Sequence[dict]) -> List[ReplayAction]:
    """Extract the recorded control-plane actions from trace records.

    Returns one :class:`ReplayAction` per ``agent.action`` span, ordered by
    ``(start time, record position)`` — spans emit on finish, so record
    order alone is completion order, not submission order.
    """
    actions: List[Tuple[float, int, ReplayAction]] = []
    for position, record in enumerate(records):
        if record.get("type") != "span" or record.get("name") != "agent.action":
            continue
        attrs = record.get("attrs", {})
        switch = attrs.get("switch")
        if switch is None:
            continue
        action = ReplayAction(
            time=float(record["start"]),
            switch=str(switch),
            command=str(attrs.get("command", "add")),
            xid=attrs.get("xid"),
        )
        actions.append((action.time, position, action))
    actions.sort(key=lambda item: (item[0], item[1]))
    return [action for _, _, action in actions]


def reconstruct_workload(records: Sequence[dict]):
    """Rebuild per-switch timed FlowMod workloads from trace records.

    Returns ``(workloads, skipped)`` where ``workloads`` maps each switch
    name to its list of :class:`~repro.traffic.TimedFlowMod`, in time
    order, with deterministically synthesized rules; ``skipped`` counts
    recorded deletes/modifies that addressed pre-trace (unsynthesized)
    state and were dropped.
    """
    from ..switchsim.messages import FlowMod
    from ..tcam.rule import Action, Rule
    from ..tcam.ternary import TernaryMatch
    from ..traffic import TimedFlowMod

    workloads: Dict[str, List] = {}
    live_rules: Dict[str, deque] = {}
    add_counts: Dict[str, int] = {}
    skipped = 0
    for action in actions_from_records(records):
        timeline = workloads.setdefault(action.switch, [])
        live = live_rules.setdefault(action.switch, deque())
        if action.command == "add":
            ordinal = add_counts.get(action.switch, 0)
            add_counts[action.switch] = ordinal + 1
            rule = Rule(
                match=TernaryMatch(
                    value=ordinal & 0xFFFFFFFF, mask=0xFFFFFFFF, width=32
                ),
                priority=100 + (ordinal % 64),
                action=Action.output(1),
            )
            live.append(rule)
            timeline.append(
                TimedFlowMod(time=action.time, flow_mod=FlowMod.add(rule))
            )
        elif action.command == "delete":
            if not live:
                skipped += 1
                continue
            rule = live.popleft()
            timeline.append(
                TimedFlowMod(
                    time=action.time, flow_mod=FlowMod.delete(rule.rule_id)
                )
            )
        elif action.command == "modify":
            if not live:
                skipped += 1
                continue
            rule = live[0]
            timeline.append(
                TimedFlowMod(
                    time=action.time,
                    flow_mod=FlowMod.modify(rule.rule_id, action=Action.output(2)),
                )
            )
        else:
            skipped += 1
    return workloads, skipped


def _background_rules(count: int) -> List[object]:
    """The controller's prefill rule set (low-priority /24 background)."""
    from ..tcam.rule import Action, Rule

    return [
        Rule.from_prefix(
            f"10.{(index // 256) % 256}.{index % 256}.0/24",
            10 + (index % 80),
            Action.output((index % 8) + 1),
        )
        for index in range(count)
    ]


def replay_records(
    records: Sequence[dict],
    scheme: str,
    switch_model: str,
    hermes_config=None,
    seed: int = 7,
    prefill: int = 0,
    tracer=None,
) -> ReplayReport:
    """Replay the recorded workload against ``scheme`` on ``switch_model``.

    Every recorded switch gets a fresh agent over a fresh installer; all
    agents share one kernel :class:`~repro.engine.clock.Clock`, and the
    merged timeline is dispatched through one
    :class:`~repro.engine.scheduler.EventScheduler` — the recorded
    interleaving across switches is preserved exactly.

    Args:
        records: trace records (from
            :func:`repro.obs.export.parse_trace_lines` / ``read_trace``).
        scheme: installer scheme to re-execute against.
        switch_model: switch-model registry key for every agent.
        hermes_config: forwarded when the scheme needs one.
        seed: base seed for per-switch installer latency streams.
        prefill: background rules pre-installed per switch (match the
            original run's ``baseline_occupancy`` for comparable numbers).
        tracer: optional :class:`~repro.obs.RecordingTracer` capturing the
            replayed run (pass one, write it out, and ``python -m
            repro.obs diff`` the two files).
    """
    from dataclasses import replace as dc_replace

    from ..baselines import make_installer
    from ..switchsim.agent import SwitchAgent
    from ..tcam import get_switch_model
    from .rng import RngStreams

    workloads, skipped = reconstruct_workload(records)
    clock = Clock()
    scheduler = EventScheduler(clock)
    streams = RngStreams(seed)
    timing = get_switch_model(switch_model)
    agents: Dict[str, SwitchAgent] = {}
    for switch in workloads:
        installer = make_installer(
            scheme,
            timing,
            rng=streams.stream(f"installer:{switch}"),
            hermes_config=(
                dc_replace(hermes_config) if hermes_config is not None else None
            ),
        )
        if prefill:
            installer.prefill(_background_rules(prefill))
        agents[switch] = SwitchAgent(
            installer, name=switch, tracer=tracer, clock=clock
        )
        for timed in workloads[switch]:
            scheduler.schedule(timed.time, "flowmod", (switch, timed.flow_mod))

    report = ReplayReport(
        scheme=scheme,
        switch_model=switch_model,
        switches=list(workloads),
        actions=actions_from_records(records),
        skipped=skipped,
        tracer=tracer,
    )
    while scheduler:
        event = scheduler.pop()
        clock.advance_to(event.time)
        switch, flow_mod = event.payload
        completed = agents[switch].submit(flow_mod, at_time=event.time)
        report.executed += 1
        report.response_times.append(completed.response_time)
    return report


def replay_file(
    trace_path: str,
    scheme: str,
    switch_model: str,
    out_path: Optional[str] = None,
    hermes_config=None,
    seed: int = 7,
    prefill: int = 0,
) -> ReplayReport:
    """Read a ``hermes-trace/1`` file, replay it, optionally write the new
    trace to ``out_path`` (ready for ``python -m repro.obs diff``)."""
    from ..obs.export import read_trace, write_trace
    from ..obs.tracer import RecordingTracer

    header, records = read_trace(trace_path)
    tracer = RecordingTracer(
        meta={
            "replay_of": trace_path,
            "source_meta": header.get("meta", {}),
            "scheme": scheme,
            "switch_model": switch_model,
            "seed": seed,
        }
    )
    report = replay_records(
        records,
        scheme,
        switch_model,
        hermes_config=hermes_config,
        seed=seed,
        prefill=prefill,
        tracer=tracer,
    )
    if out_path is not None:
        write_trace(tracer, out_path)
    return report
