"""Named, seeded RNG streams — the kernel's randomness bookkeeping.

The experiment layer used to derive per-switch installer RNGs with a
mutable closure counter (``counter["next"] += 1; default_rng(seed + n)``)
— reproducible only as long as nobody reads the stream in a different
order or forgets to copy the idiom.  :class:`RngStreams` centralizes it:
each *named* stream gets a generator derived from the base seed, assigned
in first-request order so existing seeded scenarios stay byte-identical
(the n-th distinct stream is exactly ``default_rng(seed + n)``).

The bookkeeping is pure stdlib; numpy is imported lazily only when a
generator is actually constructed, so the kernel core stays importable
without it.  :func:`child_seed` derives per-config worker seeds for
:class:`~repro.engine.sweep.SweepRunner` fan-out.
"""

from __future__ import annotations

import zlib
from typing import Dict


def child_seed(base_seed: int, index: int) -> int:
    """A stable derived seed for the ``index``-th child of ``base_seed``.

    Used by sweep fan-out: each config slot gets an independent,
    reproducible seed regardless of which worker runs it.  The derivation
    (crc32 over a tagged string) matches the spirit of
    :meth:`repro.faults.injector.FaultInjector.child_rng` and is identical
    across processes and platforms.
    """
    return zlib.crc32(f"{base_seed}/{index}".encode()) & 0x7FFFFFFF


class RngStreams:
    """A registry of named RNG streams under one base seed.

    Streams are keyed by name; the same name always returns the same
    generator object, so a component can re-request its stream instead of
    threading the object around.  Ordinals are assigned in first-request
    order, reproducing the legacy closure-counter derivation
    (``default_rng(seed + ordinal)``, ordinals from 1) byte-for-byte for
    call sites that request each name once, in a deterministic order.
    """

    def __init__(self, seed: int) -> None:
        """Create the registry for ``seed`` (no generators built yet)."""
        self.seed = int(seed)
        self._ordinals: Dict[str, int] = {}
        self._streams: Dict[str, object] = {}

    def ordinal(self, name: str) -> int:
        """The 1-based ordinal of ``name`` (assigned on first request)."""
        if name not in self._ordinals:
            self._ordinals[name] = len(self._ordinals) + 1
        return self._ordinals[name]

    def stream(self, name: str):
        """The named stream's ``np.random.Generator`` (cached per name)."""
        if name not in self._streams:
            import numpy as np

            self._streams[name] = np.random.default_rng(
                self.seed + self.ordinal(name)
            )
        return self._streams[name]

    def spawn(self, index: int) -> "RngStreams":
        """A child registry for the ``index``-th parallel task (sweep
        workers): independent streams, deterministic regardless of worker
        placement."""
        return RngStreams(child_seed(self.seed, index))

    def names(self) -> list:
        """Stream names requested so far, in ordinal order."""
        return sorted(self._ordinals, key=self._ordinals.get)

    def __repr__(self) -> str:
        return f"RngStreams(seed={self.seed}, streams={len(self._ordinals)})"
