"""The discrete-event kernel: one clock, one queue, named RNG streams.

``repro.engine`` owns the three things every simulated layer used to
re-implement privately:

* **time** — :class:`Clock` (monotonic simulated seconds) and
  :class:`SerialResource` (a busy-horizon for one-at-a-time hardware like
  the switch CPU);
* **scheduling** — :class:`EventScheduler`, a single priority queue with
  deterministic ``(time, tier, seq)`` ordering identical to the
  simulator's legacy heap (``seq`` breaks same-instant ties in scheduling
  order; :data:`TIER_COMPLETION` slots flow completions ahead of
  same-time events);
* **randomness** — :class:`RngStreams`, named seeded streams replacing
  the experiment layer's closure-counter seed derivation, plus
  :func:`child_seed` for per-task sweep seeds.

The clock/scheduler core is pure stdlib.  On top of it ride
:class:`SweepRunner` (process-parallel experiment fan-out with
deterministic, task-ordered merging) and :mod:`repro.engine.replay`
(re-execute a recorded ``hermes-trace/1`` workload against a different
scheme/switch model).  The simulator, the switch agents, and the
experiment drivers are all clients of this package; the determinism
lint's ``adhoc-event-loop`` rule keeps private event loops from creeping
back in.
"""

from .clock import Clock, SerialResource
from .rng import RngStreams, child_seed
from .scheduler import TIER_COMPLETION, TIER_DEFAULT, Event, EventScheduler
from .sweep import SweepOutcome, SweepRunner, SweepTask, write_bench
from . import replay

__all__ = [
    "Clock",
    "Event",
    "EventScheduler",
    "RngStreams",
    "SerialResource",
    "SweepOutcome",
    "SweepRunner",
    "SweepTask",
    "TIER_COMPLETION",
    "TIER_DEFAULT",
    "child_seed",
    "replay",
    "write_bench",
]
