"""The discrete-event scheduler: one priority queue, deterministic order.

Events dispatch in ``(time, tier, seq)`` order.  ``seq`` is a per-scheduler
monotone counter, so two events at the same instant fire in the order they
were scheduled — exactly the tie-break the simulator's private heap used
(its entries were ``(time, seq, ...)``).  The ``tier`` field slots a class
of events *ahead* of same-time peers regardless of scheduling order:
flow-completion events use :data:`TIER_COMPLETION` so the event-driven
completion path preserves the legacy dispatch order
(completion → arrival → other events) at shared timestamps.

The scheduler is pure stdlib and knows nothing about what events mean;
clients dispatch on :attr:`Event.kind`.  Stale-event handling is the
client's job too (e.g. the simulator stamps completion events with a
rate-epoch and skips superseded ones on pop) — cancellation by mutation
would break the replay/parity guarantees.

A schedule-order race sanitizer (:mod:`repro.analysis.races`) can attach
via :meth:`EventScheduler.attach_sanitizer`: it is then told about every
``schedule()`` (to capture the scheduling call site) and every ``pop()``
(to attribute subsequent state accesses to the dispatched event).  A
wall-clock profiler (:mod:`repro.obs.perf`) attaches the same way via
:meth:`EventScheduler.attach_profiler` and is told about every ``pop()``
so it can attribute the wall time until the *next* pop to the dispatched
event.  With neither attached — the default — each hook is a single
``is None`` test, and runs are byte-identical to a scheduler without the
seams.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from .clock import Clock

#: Tier of engine-scheduled flow completions: sorts before same-time events.
TIER_COMPLETION = 0
#: Tier of everything else (the default).
TIER_DEFAULT = 1


@dataclass(order=True, frozen=True)
class Event:
    """One scheduled occurrence.

    Ordering is ``(time, tier, seq)``; ``kind`` and ``payload`` never
    participate in comparisons (``seq`` is unique per scheduler, so ties
    cannot reach them).
    """

    time: float
    tier: int
    seq: int
    kind: str = field(compare=False)
    payload: object = field(compare=False, default=None)


class EventScheduler:
    """A deterministic priority-queue event scheduler over a :class:`Clock`.

    One scheduler owns one timeline: everything scheduled through it —
    simulator epochs, path activations, link failures, flow completions,
    replayed FlowMods — interleaves in a single total order, which is what
    lets multiple switches co-simulate without private clocks.
    """

    def __init__(self, clock: Optional[Clock] = None) -> None:
        """Create an empty scheduler (and a fresh clock unless one is shared)."""
        self.clock = clock if clock is not None else Clock()
        self._heap: List[Event] = []
        self._seq = itertools.count()
        self._sanitizer = None
        self._profiler = None

    @property
    def sanitizer(self):
        """The attached race sanitizer, or None (the default: no recording)."""
        return self._sanitizer

    def attach_sanitizer(self, sanitizer) -> None:
        """Attach a race sanitizer (``None`` detaches).

        The sanitizer must expose ``on_schedule(event)`` and
        ``on_dispatch(event)``; see
        :class:`repro.analysis.races.RaceSanitizer`.
        """
        self._sanitizer = sanitizer

    @property
    def profiler(self):
        """The attached wall-clock profiler, or None (the default)."""
        return self._profiler

    def attach_profiler(self, profiler) -> None:
        """Attach a wall-clock profiler (``None`` detaches).

        The profiler must expose ``on_dispatch(event)``; see
        :class:`repro.obs.perf.Profiler`.  Like the sanitizer seam, a
        detached profiler costs one ``is None`` test per pop.
        """
        self._profiler = profiler

    def schedule(
        self,
        time: float,
        kind: str,
        payload: object = None,
        tier: int = TIER_DEFAULT,
    ) -> Event:
        """Enqueue an event; returns the (immutable) scheduled event.

        ``time`` may equal the current instant (the event fires next) but
        events cannot be scheduled in the past.
        """
        if time < self.clock.now:
            raise ValueError(
                f"cannot schedule into the past: now={self.clock.now!r}, "
                f"asked {time!r}"
            )
        event = Event(
            time=time, tier=tier, seq=next(self._seq), kind=kind, payload=payload
        )
        heapq.heappush(self._heap, event)
        if self._sanitizer is not None:
            self._sanitizer.on_schedule(event)
        return event

    def peek(self) -> Optional[Event]:
        """The next event to dispatch, or None when empty (not removed)."""
        return self._heap[0] if self._heap else None

    def pop(self) -> Event:
        """Remove and return the next event (does not advance the clock —
        callers advance explicitly so they can drain state up to the
        event's instant first)."""
        event = heapq.heappop(self._heap)
        if self._sanitizer is not None:
            self._sanitizer.on_dispatch(event)
        if self._profiler is not None:
            self._profiler.on_dispatch(event)
        return event

    def next_time(self) -> float:
        """Timestamp of the next event, or ``inf`` when empty."""
        return self._heap[0].time if self._heap else math.inf

    def pending(self, kinds: Iterable[str]) -> bool:
        """True when any queued event has a kind in ``kinds``."""
        wanted = set(kinds)
        return any(event.kind in wanted for event in self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __repr__(self) -> str:
        return (
            f"EventScheduler(pending={len(self._heap)}, "
            f"now={self.clock.now:.6f})"
        )
