"""Process-parallel experiment sweeps with deterministic merging.

A sweep is a list of independent (experiment-function, args) tasks — one
per predictor/corrector pair, chaos cell, or ablation variant.
:class:`SweepRunner` fans them over worker processes and merges the
results back **in task order**, so the merged output of a parallel run is
indistinguishable from the serial loop it replaces (``workers=1`` *is*
that loop: no pool, no pickling, byte-identical to the legacy code).

Tasks must be module-level callables with picklable arguments — the same
constraint ``concurrent.futures`` imposes; the experiment modules expose
their per-cell functions (``run_pair``, ``run_cell``, ``run_variant``) at
module scope for exactly this reason.  Per-task child seeds come from
:func:`repro.engine.rng.child_seed` when a sweep wants decorrelated
randomness per cell; the stock experiment sweeps seed each cell explicitly
from their config, so placement never affects results.

Parallel runs ship tasks to workers in contiguous *chunks* (several cells
per submitted future) to amortize process startup and pickling overhead —
on short cells, one-task-per-future can make a "parallel" sweep slower
than the serial loop on few-core machines.  The chunk size defaults to an
auto heuristic (about four chunks per worker, for load balance) and is
tunable per runner; chunking never changes results or their order, only
how tasks are batched onto processes.

:func:`write_bench` records sweep timings in the repo's ``BENCH_*.json``
artifact convention (a ``format`` tag plus a payload dict).
"""

from __future__ import annotations

import json
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple


def _run_chunk(func: Callable, chunk: Sequence[Tuple]) -> List[object]:
    """Worker-side helper: run one contiguous chunk of homogeneous tasks.

    Module-level so it pickles; results stay in chunk order.
    """
    return [func(*args) for args in chunk]


def _run_task_chunk(tasks: Sequence["SweepTask"]) -> List[object]:
    """Worker-side helper for heterogeneous :class:`SweepTask` chunks."""
    return [task.func(*task.args) for task in tasks]


def _chunked(items: Sequence, size: int) -> List[Sequence]:
    return [items[start : start + size] for start in range(0, len(items), size)]


@dataclass(frozen=True)
class SweepTask:
    """One unit of a sweep: ``func(*args)`` run in some worker.

    ``func`` must be picklable (module-level); ``label`` names the task in
    reports.
    """

    func: Callable
    args: Tuple = ()
    label: str = ""


@dataclass
class SweepOutcome:
    """A completed sweep: per-task results in task order, plus timing."""

    results: List[object] = field(default_factory=list)
    labels: List[str] = field(default_factory=list)
    workers: int = 1
    elapsed_seconds: float = 0.0


class SweepRunner:
    """Runs independent experiment tasks, serially or across processes.

    ``workers=1`` (the default) runs the tasks inline in submission order —
    the exact legacy behaviour of every experiment's ``for`` loop.
    ``workers>1`` uses a :class:`~concurrent.futures.ProcessPoolExecutor`
    and ships tasks in contiguous chunks (``chunksize`` per future;
    ``None`` = auto, about four chunks per worker) to amortize process
    startup; results are gathered by task index, so the merged list is
    identical to the serial one whenever the tasks themselves are
    process-independent (each stock experiment cell seeds its own RNGs and
    builds its own topology, so they are).
    """

    def __init__(self, workers: int = 1, chunksize: Optional[int] = None) -> None:
        """Create a runner that uses ``workers`` processes (1 = inline).

        ``chunksize`` fixes how many tasks each submitted future carries;
        None picks ``ceil(tasks / (workers * 4))`` at call time.
        """
        if workers < 1:
            raise ValueError(f"workers must be at least 1: {workers}")
        if chunksize is not None and chunksize < 1:
            raise ValueError(f"chunksize must be at least 1: {chunksize}")
        self.workers = workers
        self.chunksize = chunksize

    def _chunk_size_for(self, task_count: int) -> int:
        if self.chunksize is not None:
            return self.chunksize
        return max(1, -(-task_count // (self.workers * 4)))

    def map(self, func: Callable, task_args: Sequence[Tuple]) -> List[object]:
        """Run ``func(*args)`` for each args tuple; results in task order."""
        if self.workers == 1:
            return [func(*args) for args in task_args]
        task_args = list(task_args)
        chunks = _chunked(task_args, self._chunk_size_for(len(task_args)))
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            futures = [pool.submit(_run_chunk, func, chunk) for chunk in chunks]
            return [
                result for future in futures for result in future.result()
            ]

    def run(self, tasks: Sequence[SweepTask]) -> SweepOutcome:
        """Run heterogeneous tasks; returns results plus wall-clock timing.

        Timing uses the process monotonic clock — it measures the *host*
        cost of the sweep (the number benchmarks record), never simulated
        time.
        """
        # Lazy import: the engine package must not import repro.obs at
        # module load (obs imports nothing from engine, but keeping the
        # kernel's import graph leaf-free is a deliberate invariant).
        from ..obs.perf.wallclock import wallclock

        started = wallclock()
        if self.workers == 1:
            results = [task.func(*task.args) for task in tasks]
        else:
            chunks = _chunked(list(tasks), self._chunk_size_for(len(tasks)))
            with ProcessPoolExecutor(max_workers=self.workers) as pool:
                futures = [
                    pool.submit(_run_task_chunk, chunk) for chunk in chunks
                ]
                results = [
                    result for future in futures for result in future.result()
                ]
        elapsed = wallclock() - started
        return SweepOutcome(
            results=results,
            labels=[task.label for task in tasks],
            workers=self.workers,
            elapsed_seconds=elapsed,
        )


def write_bench(
    path: str, format_tag: str, payload: dict, indent: Optional[int] = 2
) -> str:
    """Write a ``BENCH_*.json`` artifact (format tag first); returns path."""
    document = {"format": format_tag}
    document.update(payload)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=indent)
        handle.write("\n")
    return path
