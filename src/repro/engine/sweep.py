"""Process-parallel experiment sweeps with deterministic merging.

A sweep is a list of independent (experiment-function, args) tasks — one
per predictor/corrector pair, chaos cell, or ablation variant.
:class:`SweepRunner` fans them over worker processes and merges the
results back **in task order**, so the merged output of a parallel run is
indistinguishable from the serial loop it replaces (``workers=1`` *is*
that loop: no pool, no pickling, byte-identical to the legacy code).

Tasks must be module-level callables with picklable arguments — the same
constraint ``concurrent.futures`` imposes; the experiment modules expose
their per-cell functions (``run_pair``, ``run_cell``, ``run_variant``) at
module scope for exactly this reason.  Per-task child seeds come from
:func:`repro.engine.rng.child_seed` when a sweep wants decorrelated
randomness per cell; the stock experiment sweeps seed each cell explicitly
from their config, so placement never affects results.

:func:`write_bench` records sweep timings in the repo's ``BENCH_*.json``
artifact convention (a ``format`` tag plus a payload dict).
"""

from __future__ import annotations

import json
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class SweepTask:
    """One unit of a sweep: ``func(*args)`` run in some worker.

    ``func`` must be picklable (module-level); ``label`` names the task in
    reports.
    """

    func: Callable
    args: Tuple = ()
    label: str = ""


@dataclass
class SweepOutcome:
    """A completed sweep: per-task results in task order, plus timing."""

    results: List[object] = field(default_factory=list)
    labels: List[str] = field(default_factory=list)
    workers: int = 1
    elapsed_seconds: float = 0.0


class SweepRunner:
    """Runs independent experiment tasks, serially or across processes.

    ``workers=1`` (the default) runs the tasks inline in submission order —
    the exact legacy behaviour of every experiment's ``for`` loop.
    ``workers>1`` uses a :class:`~concurrent.futures.ProcessPoolExecutor`;
    results are gathered by task index, so the merged list is identical to
    the serial one whenever the tasks themselves are process-independent
    (each stock experiment cell seeds its own RNGs and builds its own
    topology, so they are).
    """

    def __init__(self, workers: int = 1) -> None:
        """Create a runner that uses ``workers`` processes (1 = inline)."""
        if workers < 1:
            raise ValueError(f"workers must be at least 1: {workers}")
        self.workers = workers

    def map(self, func: Callable, task_args: Sequence[Tuple]) -> List[object]:
        """Run ``func(*args)`` for each args tuple; results in task order."""
        if self.workers == 1:
            return [func(*args) for args in task_args]
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            futures = [pool.submit(func, *args) for args in task_args]
            return [future.result() for future in futures]

    def run(self, tasks: Sequence[SweepTask]) -> SweepOutcome:
        """Run heterogeneous tasks; returns results plus wall-clock timing.

        Timing uses the process monotonic clock — it measures the *host*
        cost of the sweep (the number benchmarks record), never simulated
        time.
        """
        import time as _time

        # det: allow(wall-clock) -- benchmarks measure real sweep cost
        started = _time.perf_counter()
        if self.workers == 1:
            results = [task.func(*task.args) for task in tasks]
        else:
            with ProcessPoolExecutor(max_workers=self.workers) as pool:
                futures = [pool.submit(task.func, *task.args) for task in tasks]
                results = [future.result() for future in futures]
        # det: allow(wall-clock) -- benchmarks measure real sweep cost
        elapsed = _time.perf_counter() - started
        return SweepOutcome(
            results=results,
            labels=[task.label for task in tasks],
            workers=self.workers,
            elapsed_seconds=elapsed,
        )


def write_bench(
    path: str, format_tag: str, payload: dict, indent: Optional[int] = 2
) -> str:
    """Write a ``BENCH_*.json`` artifact (format tag first); returns path."""
    document = {"format": format_tag}
    document.update(payload)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=indent)
        handle.write("\n")
    return path
