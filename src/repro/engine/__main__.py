"""``python -m repro.engine`` — kernel-backed trace replay.

Subcommand ``replay`` reconstructs the workload recorded in a
``hermes-trace/1`` file and re-executes it against a chosen scheme and
switch model on the engine clock, writing a fresh trace that ``python -m
repro.obs diff`` compares stage-by-stage against the original::

    python -m repro.engine replay trace.jsonl \\
        --scheme hermes --switch dell-8132f --out replayed.jsonl
    python -m repro.obs diff trace.jsonl replayed.jsonl
"""

from __future__ import annotations

import argparse
import sys

from .replay import replay_file


def _cmd_replay(args: argparse.Namespace) -> int:
    hermes_config = None
    if args.scheme == "hermes":
        from ..experiments.common import default_hermes_config

        hermes_config = default_hermes_config()
    report = replay_file(
        args.trace,
        args.scheme,
        args.switch,
        out_path=args.out,
        hermes_config=hermes_config,
        seed=args.seed,
        prefill=args.prefill,
    )
    print(
        f"replayed {report.executed} FlowMods over {len(report.switches)} "
        f"switches against {report.scheme} on {report.switch_model} "
        f"({report.skipped} pre-trace deletes skipped)"
    )
    if args.out:
        print(f"wrote {args.out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.engine`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.engine",
        description="Replay recorded hermes-trace/1 workloads on the kernel.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    p_replay = subparsers.add_parser(
        "replay", help="re-execute a recorded trace against a scheme/switch"
    )
    p_replay.add_argument("trace", help="path to a hermes-trace/1 JSONL file")
    p_replay.add_argument(
        "--scheme", default="hermes", help="installer scheme to replay against"
    )
    p_replay.add_argument(
        "--switch", default="pica8-p3290", help="switch-model registry key"
    )
    p_replay.add_argument(
        "--out", default=None, help="write the replayed trace here"
    )
    p_replay.add_argument(
        "--seed", type=int, default=7, help="installer latency seed"
    )
    p_replay.add_argument(
        "--prefill",
        type=int,
        default=0,
        help="background rules per switch (match the original run's "
        "baseline_occupancy)",
    )
    p_replay.set_defaults(func=_cmd_replay)
    return parser


def main(argv=None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
