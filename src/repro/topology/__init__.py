"""Topologies and routing: fat-tree data centers and ISP backbones."""

from .fattree import (
    FatTreeSpec,
    build_fat_tree,
    core_name,
    agg_name,
    edge_name,
    host_name,
    hosts,
    switches,
)
from .isp import (
    ISP_TOPOLOGY_NAMES,
    abilene,
    geant,
    get_isp_topology,
    pops,
    quest,
)
from .routing import Path, PathProvider, path_links, path_links_cached, path_switches

__all__ = [
    "FatTreeSpec",
    "ISP_TOPOLOGY_NAMES",
    "Path",
    "PathProvider",
    "abilene",
    "agg_name",
    "build_fat_tree",
    "core_name",
    "edge_name",
    "geant",
    "get_isp_topology",
    "host_name",
    "hosts",
    "path_links",
    "path_links_cached",
    "path_switches",
    "pops",
    "quest",
    "switches",
]
