"""Fat-tree data-center topology [Al-Fares et al., SIGCOMM'08].

The paper's data-center experiments run on a k=16 fat tree with 1024 servers
and 40 Gbps links (Section 8.1.3).  A k-ary fat tree has k pods, each with
k/2 edge and k/2 aggregation switches; (k/2)^2 core switches; and (k/2)^2
hosts per pod — k^3/4 hosts total.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import networkx as nx


@dataclass(frozen=True)
class FatTreeSpec:
    """Parameters of a fat-tree build.

    Attributes:
        k: pod count (must be even); k=16 gives the paper's 1024 hosts.
        link_capacity: capacity of every link in bits/second (40 Gbps
            default per the paper).
    """

    k: int = 16
    link_capacity: float = 40e9

    def __post_init__(self) -> None:
        if self.k < 2 or self.k % 2 != 0:
            raise ValueError(f"fat-tree k must be even and >= 2, got {self.k}")

    @property
    def host_count(self) -> int:
        """Total servers: k^3 / 4."""
        return self.k**3 // 4

    @property
    def switch_count(self) -> int:
        """Total switches: 5k^2/4."""
        return 5 * self.k**2 // 4


def core_name(index: int) -> str:
    """Name of the ``index``-th core switch."""
    return f"core-{index}"


def agg_name(pod: int, index: int) -> str:
    """Name of aggregation switch ``index`` in ``pod``."""
    return f"agg-{pod}-{index}"


def edge_name(pod: int, index: int) -> str:
    """Name of edge (ToR) switch ``index`` in ``pod``."""
    return f"edge-{pod}-{index}"


def host_name(pod: int, edge: int, index: int) -> str:
    """Name of host ``index`` under edge switch ``edge`` in ``pod``."""
    return f"host-{pod}-{edge}-{index}"


def build_fat_tree(spec: FatTreeSpec = FatTreeSpec()) -> nx.Graph:
    """Build the fat-tree graph.

    Nodes carry a ``kind`` attribute (``host`` / ``edge`` / ``agg`` /
    ``core``); edges carry ``capacity`` in bits/second.
    """
    k = spec.k
    half = k // 2
    graph = nx.Graph(name=f"fat-tree-k{k}")

    for core in range(half * half):
        graph.add_node(core_name(core), kind="core")
    for pod in range(k):
        for index in range(half):
            graph.add_node(agg_name(pod, index), kind="agg", pod=pod)
            graph.add_node(edge_name(pod, index), kind="edge", pod=pod)
        # Aggregation <-> core: agg switch i connects to cores
        # [i*half, (i+1)*half).
        for agg_index in range(half):
            for port in range(half):
                core_index = agg_index * half + port
                graph.add_edge(
                    agg_name(pod, agg_index),
                    core_name(core_index),
                    capacity=spec.link_capacity,
                )
        # Edge <-> aggregation: full bipartite within the pod.
        for edge_index in range(half):
            for agg_index in range(half):
                graph.add_edge(
                    edge_name(pod, edge_index),
                    agg_name(pod, agg_index),
                    capacity=spec.link_capacity,
                )
        # Hosts under each edge switch.
        for edge_index in range(half):
            for host_index in range(half):
                name = host_name(pod, edge_index, host_index)
                graph.add_node(name, kind="host", pod=pod)
                graph.add_edge(
                    name, edge_name(pod, edge_index), capacity=spec.link_capacity
                )
    return graph


def hosts(graph: nx.Graph) -> List[str]:
    """All host names, sorted for reproducibility."""
    return sorted(
        node for node, data in graph.nodes(data=True) if data.get("kind") == "host"
    )


def switches(graph: nx.Graph) -> List[str]:
    """All switch names (everything that is not a host), sorted."""
    return sorted(
        node for node, data in graph.nodes(data=True) if data.get("kind") != "host"
    )
