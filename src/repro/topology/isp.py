"""ISP topologies: Abilene, Geant, and Quest.

The paper evaluates on the Internet2/Abilene backbone (11 PoPs), the GEANT
European research network, and the Quest topology from the Internet Topology
Zoo (Section 8.1.3).  The node/edge lists are embedded here (the Zoo's
GraphML archive is not redistributable in this offline reproduction; the
embedded lists match the published maps' node counts and connectivity
structure — this substitution is recorded in DESIGN.md).

Link capacities default to the networks' historical line rates: OC-192
(10 Gbps) for Abilene and 10 Gbps for GEANT's core, 1 Gbps for Quest.
"""

from __future__ import annotations

from typing import List, Tuple

import networkx as nx

# (name, links) — Abilene, the Internet2 backbone c. 2004: 11 PoPs, 14 links.
_ABILENE_LINKS: List[Tuple[str, str]] = [
    ("SEATTLE", "SUNNYVALE"),
    ("SEATTLE", "DENVER"),
    ("SUNNYVALE", "LOSANGELES"),
    ("SUNNYVALE", "DENVER"),
    ("LOSANGELES", "HOUSTON"),
    ("DENVER", "KANSASCITY"),
    ("KANSASCITY", "HOUSTON"),
    ("KANSASCITY", "INDIANAPOLIS"),
    ("HOUSTON", "ATLANTA"),
    ("INDIANAPOLIS", "CHICAGO"),
    ("INDIANAPOLIS", "ATLANTA"),
    ("CHICAGO", "NEWYORK"),
    ("ATLANTA", "WASHINGTON"),
    ("NEWYORK", "WASHINGTON"),
]

# GEANT, the pan-European research backbone (24 PoPs, 37 links; the 2004-era
# map the tomo-gravity literature uses).
_GEANT_LINKS: List[Tuple[str, str]] = [
    ("UK", "FR"), ("UK", "NL"), ("UK", "IE"), ("UK", "BE"),
    ("FR", "ES"), ("FR", "CH"), ("FR", "LU"), ("FR", "DE"),
    ("NL", "DE"), ("NL", "BE"), ("IE", "NL"),
    ("ES", "PT"), ("ES", "IT"), ("PT", "UK"),
    ("CH", "IT"), ("CH", "DE"), ("CH", "AT"),
    ("DE", "AT"), ("DE", "SE"), ("DE", "PL"), ("DE", "CZ"),
    ("IT", "GR"), ("IT", "AT"),
    ("AT", "HU"), ("AT", "SI"), ("AT", "CZ"), ("AT", "SK"),
    ("SE", "NO"), ("SE", "FI"), ("SE", "DK"), ("DK", "NO"), ("DK", "DE"),
    ("PL", "CZ"), ("HU", "SK"), ("HU", "HR"), ("SI", "HR"), ("GR", "CY"),
]

# Quest (Topology Zoo): a 21-node research/education network.
_QUEST_LINKS: List[Tuple[str, str]] = [
    ("EDMONTON", "CALGARY"),
    ("CALGARY", "KAMLOOPS"),
    ("KAMLOOPS", "VANCOUVER"),
    ("VANCOUVER", "VICTORIA"),
    ("EDMONTON", "SASKATOON"),
    ("SASKATOON", "REGINA"),
    ("REGINA", "WINNIPEG"),
    ("WINNIPEG", "THUNDERBAY"),
    ("THUNDERBAY", "SUDBURY"),
    ("SUDBURY", "TORONTO"),
    ("TORONTO", "OTTAWA"),
    ("OTTAWA", "MONTREAL"),
    ("MONTREAL", "QUEBECCITY"),
    ("QUEBECCITY", "FREDERICTON"),
    ("FREDERICTON", "HALIFAX"),
    ("HALIFAX", "CHARLOTTETOWN"),
    ("CHARLOTTETOWN", "STJOHNS"),
    ("TORONTO", "HAMILTON"),
    ("HAMILTON", "LONDONONT"),
    ("LONDONONT", "WINDSOR"),
    ("WINDSOR", "TORONTO"),
    ("MONTREAL", "TORONTO"),
    ("EDMONTON", "WINNIPEG"),
]


def _build(name: str, links: List[Tuple[str, str]], capacity: float) -> nx.Graph:
    graph = nx.Graph(name=name)
    for left, right in links:
        graph.add_edge(left, right, capacity=capacity)
    for node in graph.nodes:
        graph.nodes[node]["kind"] = "pop"
    return graph


def abilene(link_capacity: float = 10e9) -> nx.Graph:
    """The Internet2/Abilene backbone: 11 PoPs, 14 OC-192 links."""
    return _build("abilene", _ABILENE_LINKS, link_capacity)


def geant(link_capacity: float = 10e9) -> nx.Graph:
    """The GEANT European research backbone: 24 PoPs, 37 links."""
    return _build("geant", _GEANT_LINKS, link_capacity)


def quest(link_capacity: float = 1e9) -> nx.Graph:
    """The Quest topology (Topology Zoo): 21 PoPs."""
    return _build("quest", _QUEST_LINKS, link_capacity)


_TOPOLOGIES = {"abilene": abilene, "geant": geant, "quest": quest}

ISP_TOPOLOGY_NAMES = tuple(sorted(_TOPOLOGIES))


def get_isp_topology(name: str, **kwargs) -> nx.Graph:
    """Look up an ISP topology by name (``abilene``/``geant``/``quest``)."""
    try:
        return _TOPOLOGIES[name.strip().lower()](**kwargs)
    except KeyError:
        raise KeyError(
            f"unknown topology {name!r}; known: {', '.join(ISP_TOPOLOGY_NAMES)}"
        ) from None


def pops(graph: nx.Graph) -> List[str]:
    """All PoP names, sorted for reproducibility."""
    return sorted(graph.nodes)
