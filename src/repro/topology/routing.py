"""Routing helpers: shortest paths, k-shortest paths, and ECMP sets.

The proactive traffic-engineering SDNApp (Section 8.1.1) moves flows between
alternative paths; these helpers enumerate the candidates.  Results are
cached per graph because path enumeration dominates simulator start-up on
the k=16 fat tree.
"""

from __future__ import annotations

import itertools
from functools import lru_cache
from typing import Dict, List, Tuple

import networkx as nx

Path = Tuple[str, ...]


class PathProvider:
    """Caching path oracle over one topology."""

    def __init__(self, graph: nx.Graph, k_paths: int = 4) -> None:
        """Create a provider enumerating up to ``k_paths`` per OD pair."""
        if k_paths < 1:
            raise ValueError(f"k_paths must be >= 1, got {k_paths}")
        self.graph = graph
        self.k_paths = k_paths
        self._cache: Dict[Tuple[str, str], List[Path]] = {}

    def shortest_path(self, source: str, target: str) -> Path:
        """The first of the k shortest paths."""
        return self.paths(source, target)[0]

    def paths(self, source: str, target: str) -> List[Path]:
        """Up to ``k_paths`` loop-free paths, shortest first.

        Raises:
            nx.NetworkXNoPath: when the endpoints are disconnected.
        """
        key = (source, target)
        if key not in self._cache:
            generator = nx.shortest_simple_paths(self.graph, source, target)
            found = [
                tuple(path) for path in itertools.islice(generator, self.k_paths)
            ]
            if not found:
                raise nx.NetworkXNoPath(f"no path {source} -> {target}")
            self._cache[key] = found
            # Paths are symmetric in an undirected graph: prime the reverse.
            self._cache.setdefault(
                (target, source), [tuple(reversed(path)) for path in found]
            )
        return self._cache[key]

    def ecmp_paths(self, source: str, target: str) -> List[Path]:
        """The equal-cost subset of the k shortest paths."""
        candidates = self.paths(source, target)
        best_length = len(candidates[0])
        return [path for path in candidates if len(path) == best_length]


@lru_cache(maxsize=None)
def path_links_cached(path: Path) -> Tuple[Tuple[str, str], ...]:
    """The (canonically ordered) links a path traverses, memoized.

    Paths are immutable tuples and the set of distinct paths is bounded
    by the topology (the :class:`PathProvider` cache), so the memo is
    small — but the links were being recomputed per flow on every rate
    recompute, TE epoch, and link failure, which the wall-clock profiler
    attributes squarely to the ``fairshare`` subsystem.  Hot paths call
    this directly; :func:`path_links` stays the list-returning wrapper.
    """
    return tuple(tuple(sorted((a, b))) for a, b in zip(path, path[1:]))


def path_links(path: Path) -> List[Tuple[str, str]]:
    """The (canonically ordered) links a path traverses."""
    return list(path_links_cached(path))


def path_switches(path: Path, graph: nx.Graph) -> List[str]:
    """The non-host nodes along a path (where rules must be installed)."""
    return [node for node in path if graph.nodes[node].get("kind") != "host"]
