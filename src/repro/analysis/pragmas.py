"""Suppression pragmas, parsed once and shared by every analysis family.

Two pragma namespaces live in the tree:

* ``# det: allow(rule, ...) -- why`` — the determinism lint's per-line
  suppressions (:mod:`repro.analysis.lint` and the project-wide pass in
  :mod:`repro.analysis.project`).
* ``# race: allow(rule, ...) -- why`` — the schedule-order race
  sanitizer's call-site suppressions (:mod:`repro.analysis.races`): a
  ``schedule()`` call carrying one declares that same-instant ordering
  against its peers is intentional and pinned by tests.

Both follow the same grammar: the pragma names one or more rules, must
justify itself after ``--`` (an unjustified pragma is itself a finding),
applies to its own line, and — when it is a standalone comment line —
also to the line directly below.  This module is the single parser for
that grammar; rule families consume a :class:`PragmaIndex` instead of
re-walking comment lines themselves.
"""

from __future__ import annotations

import re
from typing import Dict, List, Sequence, Set, Tuple

#: The determinism-lint namespace (``# det: allow(...)``).
DET = "det"
#: The race-sanitizer namespace (``# race: allow(...)``).
RACE = "race"


def pragma_pattern(namespace: str) -> re.Pattern:
    """The compiled pragma regex for one namespace.

    Group 1 captures the comma-separated rule list, group 2 the
    justification (empty when missing).
    """
    return re.compile(
        rf"#\s*{re.escape(namespace)}:\s*allow\(([^)]*)\)\s*(?:--|—)?\s*(\S?.*)$"
    )


class PragmaIndex:
    """Per-line suppressions of one namespace over one file's lines.

    Attributes:
        allowed: line number -> set of rule names suppressed there.
        unjustified: ``(line, col, text)`` of pragmas with no reason.
    """

    def __init__(self, namespace: str, lines: Sequence[str]) -> None:
        """Parse every pragma of ``namespace`` out of ``lines``."""
        self.namespace = namespace
        self.allowed: Dict[int, Set[str]] = {}
        self.unjustified: List[Tuple[int, int, str]] = []
        pattern = pragma_pattern(namespace)
        for number, line in enumerate(lines, start=1):
            match = pattern.search(line)
            if match is None:
                continue
            rules = {
                rule.strip() for rule in match.group(1).split(",") if rule.strip()
            }
            if not match.group(2).strip():
                self.unjustified.append((number, line.index("#"), line.strip()))
            self.allowed.setdefault(number, set()).update(rules)
            if line.lstrip().startswith("#"):
                # A standalone pragma comment covers the line below it.
                self.allowed.setdefault(number + 1, set()).update(rules)

    def allows(self, line: int, rule: str) -> bool:
        """True when ``rule`` is suppressed on ``line``."""
        return rule in self.allowed.get(line, set())


_FILE_CACHE: Dict[Tuple[str, str], PragmaIndex] = {}


def file_pragmas(path: str, namespace: str) -> PragmaIndex:
    """The (cached) :class:`PragmaIndex` of a source file on disk.

    Used by the race sanitizer to check scheduling call sites at run time;
    unreadable files index as empty (nothing suppressed).  The cache is
    keyed by path only — analysis runs are short-lived relative to edits.
    """
    key = (path, namespace)
    if key not in _FILE_CACHE:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                lines = handle.read().splitlines()
        except OSError:
            lines = []
        # det: allow(shared-state-mutation) -- idempotent cache; the value is a pure function of the key
        _FILE_CACHE[key] = PragmaIndex(namespace, lines)
    return _FILE_CACHE[key]


def clear_pragma_cache() -> None:
    """Drop the file-pragma cache (tests that rewrite fixtures call this)."""
    _FILE_CACHE.clear()
