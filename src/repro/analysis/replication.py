"""Multi-seed replication: mean, spread, and confidence intervals.

Single-seed simulation results can mislead; this helper re-runs a
seed-parameterized experiment across seeds and reports the replication
statistics the figures should be read with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

import numpy as np
from scipy import stats as scipy_stats


@dataclass(frozen=True)
class SeedSweep:
    """Replication statistics of one scalar metric across seeds.

    Attributes:
        values: the per-seed metric values, aligned with ``seeds``.
        seeds: the seeds used.
    """

    values: tuple
    seeds: tuple

    @property
    def mean(self) -> float:
        """Sample mean across seeds."""
        return float(np.mean(self.values))

    @property
    def std(self) -> float:
        """Sample standard deviation (ddof=1; 0.0 for a single seed)."""
        if len(self.values) < 2:
            return 0.0
        return float(np.std(self.values, ddof=1))

    def confidence_interval(self, level: float = 0.95) -> tuple:
        """Student-t confidence interval for the mean.

        Returns (low, high); degenerate (mean, mean) for a single seed.
        """
        if not 0.0 < level < 1.0:
            raise ValueError(f"level must be in (0, 1): {level}")
        if len(self.values) < 2:
            return (self.mean, self.mean)
        sem = self.std / np.sqrt(len(self.values))
        margin = scipy_stats.t.ppf((1 + level) / 2, len(self.values) - 1) * sem
        return (self.mean - margin, self.mean + margin)

    def __str__(self) -> str:
        low, high = self.confidence_interval()
        return (
            f"{self.mean:.4g} ± {self.std:.2g} "
            f"(95% CI [{low:.4g}, {high:.4g}], n={len(self.values)})"
        )


def replicate(
    metric_fn: Callable[[int], float], seeds: Sequence[int]
) -> SeedSweep:
    """Evaluate ``metric_fn(seed)`` for every seed.

    Raises:
        ValueError: when no seeds are given.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    values = tuple(float(metric_fn(seed)) for seed in seeds)
    return SeedSweep(values=values, seeds=tuple(seeds))


def replicate_many(
    metrics_fn: Callable[[int], Dict[str, float]], seeds: Sequence[int]
) -> Dict[str, SeedSweep]:
    """Like :func:`replicate` for functions returning several metrics."""
    if not seeds:
        raise ValueError("need at least one seed")
    collected: Dict[str, List[float]] = {}
    for seed in seeds:
        for name, value in metrics_fn(seed).items():
            collected.setdefault(name, []).append(float(value))
    return {
        name: SeedSweep(values=tuple(values), seeds=tuple(seeds))
        for name, values in collected.items()
    }
