"""Determinism lint: an AST checker for nondeterminism hazards.

The simulator's reproducibility contract (and the byte-identical digest
guarantee the chaos tests enforce) dies by a thousand cuts: one unseeded
``random`` call, one wall-clock read in a simulated path, one iteration
over a hash-ordered ``set`` that reaches event scheduling, one exact float
comparison between computed timestamps.  None of these crash; they just
make two runs of the "same" experiment disagree.  This lint finds them
statically.

Rules
-----
``unseeded-random``
    Calls into the stdlib ``random`` module (global, unseeded RNG) or
    numpy's legacy global RNG (``np.random.rand`` etc.).  Simulation code
    must thread an explicit ``np.random.Generator``.
``wall-clock``
    ``time.time()`` / ``time.monotonic()`` / ``time.perf_counter()`` /
    ``datetime.now()`` and friends: real time leaking into simulated time.
``wallclock-seam``
    The same wall-clock reads, in any file under ``repro/`` outside
    :mod:`repro.obs.perf` — even ones a ``wall-clock`` pragma justifies.
    Legitimate wall-clock access (interval measurement, artifact
    timestamps) must route through :func:`repro.obs.perf.wallclock`, the
    repo's single audited seam to the host clock, so "who can see real
    time" stays greppable in one place.
``unordered-iteration``
    Iterating a ``set`` expression (literal, ``set(...)``/``frozenset``
    call, set comprehension, or a set-algebra expression) in an
    order-sensitive position — a ``for`` loop, a non-set comprehension, or
    ``list``/``tuple``/``enumerate``/``iter``/``sum`` — where hash order
    can reach event scheduling.  Order-insensitive sinks (``sorted``,
    ``min``, ``max``, ``len``, ``any``, ``all``, set-to-set operations)
    are allowed.  Two flow-insensitive inferences extend the reach beyond
    literal set expressions: a local *name* whose latest assignment was a
    set expression (or whose annotation is ``set``/``Set[...]``) is
    treated as a set, and a *subscript* of a name annotated
    ``Dict[..., Set[...]]`` (the ``flows_on_link`` shape that once made
    ``max_min_fair_rates``'s float accumulation hash-ordered) is treated
    as a set.  The same rule also covers environment/filesystem
    iteration order: ``os.environ`` (and its ``.keys()``/``.values()``/
    ``.items()`` views), ``os.listdir()``, ``os.scandir()``, and
    ``Path.iterdir()`` all follow OS-dependent order, which two machines
    (or two runs) need not agree on.

Autofix
-------
:func:`apply_fixes` / :func:`fix_paths` (CLI: ``python -m repro.analysis
lint --fix``) rewrite *provably safe* unordered-iteration findings by
wrapping the iterable in ``sorted(...)``.  Safe means the elements are
known to be totally ordered: ``os.environ`` and its views (strings or
string pairs), ``os.listdir()`` (strings), and ``Path.iterdir()``
(``Path`` objects).  ``os.scandir()`` yields unorderable ``DirEntry``
objects and set expressions have unknown element types, so those findings
are reported but never rewritten.
``float-eq``
    ``==`` / ``!=`` between values that look like event timestamps
    (``now``, ``deadline``, ``*_time``, ``*_until``, ...).  Computed floats
    must be compared with tolerances or orderings.
``tracer-wall-clock``
    A wall-clock read (``time.time()`` and friends) passed to a tracer or
    span method (``start_span`` / ``event`` / ``sample`` / ``finish`` /
    ``annotate``).  Trace timestamps must come from *sim* time, or two
    runs of the same scenario produce different traces and the
    golden-trace determinism guarantee breaks.
``adhoc-event-loop``
    A private event loop outside :mod:`repro.engine`: importing or
    calling ``heapq`` (the kernel's
    :class:`~repro.engine.EventScheduler` owns the priority queue — a
    second heap means a second, unsynchronized notion of "next event"),
    or assigning a mutable simulated-time attribute (``now`` / ``_now`` /
    ``busy_until`` / ``_busy_until``) — virtual time must derive from the
    kernel :class:`~repro.engine.Clock` /
    :class:`~repro.engine.SerialResource` so every layer shares one
    timeline.  Files under ``repro/engine/`` are exempt: they *are* the
    kernel.
``bare-pragma``
    A suppression pragma with no justification (see below).

Pragmas
-------
A finding is suppressed by a pragma on the same line, or on a standalone
comment line directly above, naming the rule *and justifying itself*::

    elapsed = time.perf_counter() - start  # det: allow(wall-clock) -- measures real CPU cost

    # det: allow(unordered-iteration) -- feeds a set union, order-free
    merged = list(ids_a & ids_b)

``det: allow(rule-a, rule-b)`` suppresses several rules at once.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .pragmas import DET, PragmaIndex

UNSEEDED_RANDOM = "unseeded-random"
WALL_CLOCK = "wall-clock"
WALLCLOCK_SEAM = "wallclock-seam"
UNORDERED_ITERATION = "unordered-iteration"
FLOAT_EQ = "float-eq"
TRACER_WALL_CLOCK = "tracer-wall-clock"
ADHOC_EVENT_LOOP = "adhoc-event-loop"
BARE_PRAGMA = "bare-pragma"

ALL_RULES = (
    UNSEEDED_RANDOM,
    WALL_CLOCK,
    WALLCLOCK_SEAM,
    UNORDERED_ITERATION,
    FLOAT_EQ,
    TRACER_WALL_CLOCK,
    ADHOC_EVENT_LOOP,
    BARE_PRAGMA,
)

_WALL_CLOCK_TIME_FUNCS = {
    "time",
    "monotonic",
    "perf_counter",
    "process_time",
    "clock",
    "time_ns",
    "monotonic_ns",
    "perf_counter_ns",
}
_WALL_CLOCK_DATETIME_FUNCS = {"now", "utcnow", "today"}

_NUMPY_LEGACY_RANDOM = {
    "rand",
    "randn",
    "randint",
    "random",
    "random_sample",
    "ranf",
    "sample",
    "choice",
    "shuffle",
    "permutation",
    "seed",
    "normal",
    "uniform",
    "poisson",
    "exponential",
    "binomial",
}

# Builtins that consume an iterable without depending on its order.
_ORDER_INSENSITIVE_SINKS = {
    "sorted",
    "min",
    "max",
    "len",
    "any",
    "all",
    "set",
    "frozenset",
}
# Builtins whose output order follows input order (hash order escapes here).
_ORDER_SENSITIVE_SINKS = {"list", "tuple", "enumerate", "iter", "sum", "zip"}

_TIMEY_EXACT = {"now", "time", "deadline", "timestamp"}
_TIMEY_SUFFIXES = ("_time", "_until", "_deadline", "_timestamp", "_at")

# Methods of repro.obs tracers/spans that take (sim-time) timestamps.
_TRACER_METHODS = {"start_span", "event", "sample"}
_SPAN_METHODS = {"finish", "annotate"}

# Attributes that smell like a privately-mutated simulated-time cursor.
_SIM_TIME_ATTRS = {"now", "_now", "busy_until", "_busy_until"}


@dataclass(frozen=True)
class LintFinding:
    """One determinism hazard.

    Attributes:
        rule: the lint rule that fired (one of :data:`ALL_RULES`).
        path: file the finding is in.
        line: 1-based line number.
        col: 0-based column offset.
        message: what was found and why it is a hazard.
        text: the source line, stripped.
        fixable: True when the autofix can provably-safely rewrite it.
        span: ``(line, col, end_line, end_col)`` of the expression the
            autofix would wrap in ``sorted(...)`` (fixable findings only).
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    text: str = ""
    fixable: bool = False
    span: Optional[Tuple[int, int, int, int]] = None

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"


def _identifier_of(node: ast.AST) -> str:
    """The trailing identifier of a name/attribute chain, or ''."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _root_name(node: ast.AST) -> str:
    """The leftmost name of an attribute chain (``np`` for ``np.random.x``)."""
    while isinstance(node, ast.Attribute):
        node = node.value
    return node.id if isinstance(node, ast.Name) else ""


def _looks_timey(node: ast.AST) -> bool:
    identifier = _identifier_of(node)
    if not identifier:
        return False
    bare = identifier.lstrip("_")
    return bare in _TIMEY_EXACT or any(
        bare.endswith(suffix) for suffix in _TIMEY_SUFFIXES
    )


def _wall_clock_name(node: ast.AST) -> str:
    """'time.time' / 'datetime.now' for a wall-clock read call, else ''."""
    if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
        return ""
    func = node.func
    if _root_name(func) == "time" and func.attr in _WALL_CLOCK_TIME_FUNCS:
        return f"time.{func.attr}"
    if (
        func.attr in _WALL_CLOCK_DATETIME_FUNCS
        and _identifier_of(func.value) in {"datetime", "date"}
    ):
        return f"{_identifier_of(func.value)}.{func.attr}"
    return ""


def _is_set_expr(node: ast.AST) -> bool:
    """True for expressions that statically evaluate to a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"set", "frozenset"}
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)
    ):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


#: Annotation heads that declare a set-valued name.
_SET_ANNOTATIONS = {
    "set",
    "frozenset",
    "Set",
    "FrozenSet",
    "AbstractSet",
    "MutableSet",
}
#: Annotation heads that declare a mapping (checked for set-typed values).
_DICT_ANNOTATIONS = {
    "dict",
    "Dict",
    "defaultdict",
    "DefaultDict",
    "Mapping",
    "MutableMapping",
}


def _annotation_is_set(node: ast.AST) -> bool:
    """True for annotations declaring a set: ``set``, ``Set[int]``, ..."""
    if isinstance(node, ast.Subscript):
        return _annotation_is_set(node.value)
    return _identifier_of(node) in _SET_ANNOTATIONS


def _annotation_is_dict_of_sets(node: ast.AST) -> bool:
    """True for ``Dict[K, Set[...]]``-shaped annotations, whose subscripts
    are sets (the ``flows_on_link`` shape)."""
    if not isinstance(node, ast.Subscript):
        return False
    if _identifier_of(node.value) not in _DICT_ANNOTATIONS:
        return False
    value_slice = node.slice
    if isinstance(value_slice, ast.Tuple) and len(value_slice.elts) == 2:
        return _annotation_is_set(value_slice.elts[1])
    return False


#: OS-iteration sources: name -> (description, autofix is provably safe).
_UNORDERED_FS_FUNCS = {"listdir": True, "scandir": False}
_ENVIRON_VIEWS = {"keys", "values", "items"}


class _DeterminismVisitor(ast.NodeVisitor):
    def __init__(self, path: str, lines: Sequence[str]) -> None:
        self.path = path
        self.lines = lines
        self.findings: List[LintFinding] = []
        self._random_imports: Set[str] = set()
        self._os_imports: Dict[str, str] = {}  # local alias -> os.* name
        self._heapq_imports: Set[str] = set()
        self._exempt_nodes: Set[int] = set()
        # Flow-insensitive type inference feeding unordered-iteration:
        # names whose latest binding (or annotation) is a set, and names
        # annotated Dict[..., Set[...]] whose subscripts are sets.
        self._set_vars: Set[str] = set()
        self._dict_of_set_vars: Set[str] = set()
        # The kernel is the one place allowed to own a heap and mutate
        # simulated time; everything else must go through it.
        normalized = path.replace(os.sep, "/")
        self._in_engine = "repro/engine/" in normalized
        # repro.obs.perf owns the audited wall-clock seam; everything else
        # under repro/ must call repro.obs.perf.wallclock() instead of
        # reading the host clock directly.  Paths outside repro/ (tests,
        # scripts, fixtures) are out of the seam's jurisdiction.
        self._seam_applies = (
            "repro/" in normalized and "repro/obs/perf/" not in normalized
        )

    # -- helpers ------------------------------------------------------
    def _flag(
        self, node: ast.AST, rule: str, message: str, fixable: bool = False
    ) -> None:
        line = getattr(node, "lineno", 0)
        text = self.lines[line - 1].strip() if 0 < line <= len(self.lines) else ""
        span = None
        end_line = getattr(node, "end_lineno", None)
        end_col = getattr(node, "end_col_offset", None)
        if fixable and end_line == line and end_col is not None:
            span = (line, node.col_offset, end_line, end_col)
        self.findings.append(
            LintFinding(
                rule=rule,
                path=self.path,
                line=line,
                col=getattr(node, "col_offset", 0),
                message=message,
                text=text,
                fixable=span is not None,
                span=span,
            )
        )

    def _is_set_like(self, node: ast.AST) -> bool:
        """Set expressions plus the two inferred shapes: set-typed local
        names and subscripts of ``Dict[..., Set[...]]``-annotated names."""
        if _is_set_expr(node):
            return True
        if isinstance(node, ast.Name):
            return node.id in self._set_vars
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id in self._dict_of_set_vars
        ):
            return True
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)
        ):
            return self._is_set_like(node.left) or self._is_set_like(node.right)
        return False

    def _bind_name(self, name: str, value: Optional[ast.AST]) -> None:
        """Record whether ``name``'s new binding is a set (latest wins)."""
        if value is not None and self._is_set_like(value):
            self._set_vars.add(name)
        else:
            self._set_vars.discard(name)
            self._dict_of_set_vars.discard(name)

    def _bind_annotated(self, name: str, annotation: ast.AST) -> None:
        """Record a name's declared type from an annotation."""
        if _annotation_is_set(annotation):
            self._set_vars.add(name)
        elif _annotation_is_dict_of_sets(annotation):
            self._dict_of_set_vars.add(name)
        else:
            self._set_vars.discard(name)
            self._dict_of_set_vars.discard(name)

    def _visit_function(self, node) -> None:
        """Scope the set-inference to the function body: argument
        annotations seed it, and local bindings don't leak out."""
        saved_sets = set(self._set_vars)
        saved_dicts = set(self._dict_of_set_vars)
        args = node.args
        for arg in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
            + [args.vararg, args.kwarg]
        ):
            if arg is not None and arg.annotation is not None:
                self._bind_annotated(arg.arg, arg.annotation)
        self.generic_visit(node)
        self._set_vars = saved_sets
        self._dict_of_set_vars = saved_dicts

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def _is_environ(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Attribute):
            return node.attr == "environ" and _root_name(node) == "os"
        if isinstance(node, ast.Name):
            return self._os_imports.get(node.id) == "environ"
        return False

    def _unordered_source(self, node: ast.AST) -> Optional[Tuple[str, bool]]:
        """``(description, fix_is_safe)`` for OS-order iterables, else None."""
        if self._is_environ(node):
            return "os.environ", True
        if not isinstance(node, ast.Call):
            return None
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr in _ENVIRON_VIEWS and self._is_environ(func.value):
                # environ maps str -> str, so every view sorts safely.
                return f"os.environ.{func.attr}()", True
            if func.attr in _UNORDERED_FS_FUNCS and _root_name(func) == "os":
                return f"os.{func.attr}()", _UNORDERED_FS_FUNCS[func.attr]
            if func.attr == "iterdir":
                return "Path.iterdir()", True
        elif isinstance(func, ast.Name):
            original = self._os_imports.get(func.id)
            if original in _UNORDERED_FS_FUNCS:
                return f"os.{original}()", _UNORDERED_FS_FUNCS[original]
        return None

    # -- imports ------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "heapq" and not self._in_engine:
                self._flag(
                    node,
                    ADHOC_EVENT_LOOP,
                    "'import heapq' outside repro.engine builds a private "
                    "event queue; schedule through "
                    "repro.engine.EventScheduler",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            for alias in node.names:
                self._random_imports.add(alias.asname or alias.name)
        if node.module == "os":
            for alias in node.names:
                if alias.name in {"environ", "listdir", "scandir"}:
                    self._os_imports[alias.asname or alias.name] = alias.name
        if node.module == "heapq":
            for alias in node.names:
                self._heapq_imports.add(alias.asname or alias.name)
            if not self._in_engine:
                self._flag(
                    node,
                    ADHOC_EVENT_LOOP,
                    "'from heapq import ...' outside repro.engine builds a "
                    "private event queue; schedule through "
                    "repro.engine.EventScheduler",
                )
        self.generic_visit(node)

    # -- calls --------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id in _ORDER_INSENSITIVE_SINKS:
            for arg in node.args:
                self._exempt_nodes.add(id(arg))
        self._check_random_call(node)
        self._check_wall_clock_call(node)
        self._check_tracer_args(node)
        self._check_set_sink(node)
        self._check_heapq_call(node)
        self.generic_visit(node)

    def _check_heapq_call(self, node: ast.Call) -> None:
        if self._in_engine:
            return
        func = node.func
        if isinstance(func, ast.Attribute) and _root_name(func) == "heapq":
            self._flag(
                node,
                ADHOC_EVENT_LOOP,
                f"'heapq.{func.attr}()' outside repro.engine runs a private "
                "event queue; schedule through repro.engine.EventScheduler",
            )
        elif isinstance(func, ast.Name) and func.id in self._heapq_imports:
            self._flag(
                node,
                ADHOC_EVENT_LOOP,
                f"'{func.id}()' (imported from heapq) outside repro.engine "
                "runs a private event queue; schedule through "
                "repro.engine.EventScheduler",
            )

    def _check_random_call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            if (
                isinstance(func.value, ast.Name)
                and func.value.id == "random"
                and not (func.attr == "Random" and node.args)
            ):
                self._flag(
                    node,
                    UNSEEDED_RANDOM,
                    f"call to the global 'random.{func.attr}' RNG; thread a "
                    "seeded np.random.Generator instead",
                )
            elif (
                func.attr in _NUMPY_LEGACY_RANDOM
                and isinstance(func.value, ast.Attribute)
                and func.value.attr == "random"
                and _root_name(func.value) in {"np", "numpy"}
            ):
                self._flag(
                    node,
                    UNSEEDED_RANDOM,
                    f"call to numpy's legacy global RNG "
                    f"'np.random.{func.attr}'; use np.random.default_rng(seed)",
                )
        elif isinstance(func, ast.Name) and func.id in self._random_imports:
            self._flag(
                node,
                UNSEEDED_RANDOM,
                f"call to '{func.id}' imported from the global random "
                "module; thread a seeded np.random.Generator instead",
            )

    def _check_wall_clock_call(self, node: ast.Call) -> None:
        name = _wall_clock_name(node)
        if not name:
            return
        self._flag(
            node,
            WALL_CLOCK,
            f"wall-clock read '{name}()' — real time must not "
            "reach simulated time",
        )
        if self._seam_applies:
            self._flag(
                node,
                WALLCLOCK_SEAM,
                f"direct '{name}()' under repro/ bypasses the audited "
                "seam; call repro.obs.perf.wallclock() (or unix_time() / "
                "timestamp() for artifact stamps) instead",
            )

    def _check_tracer_args(self, node: ast.Call) -> None:
        """Wall-clock reads feeding a tracer/span call break golden traces."""
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        receiver = _identifier_of(func.value).lower()
        is_tracer = func.attr in _TRACER_METHODS and (
            "tracer" in receiver
            or (
                isinstance(func.value, ast.Call)
                and _identifier_of(func.value.func) == "get_tracer"
            )
        )
        is_span = func.attr in _SPAN_METHODS and "span" in receiver
        if not (is_tracer or is_span):
            return
        values = list(node.args) + [kw.value for kw in node.keywords]
        for value in values:
            for sub in ast.walk(value):
                name = _wall_clock_name(sub)
                if name:
                    self._flag(
                        sub,
                        TRACER_WALL_CLOCK,
                        f"'{name}()' feeding '{func.attr}()' on a "
                        "tracer/span — trace timestamps must come from "
                        "sim time",
                    )

    def _check_set_sink(self, node: ast.Call) -> None:
        func = node.func
        if (
            not isinstance(func, ast.Name)
            or func.id not in _ORDER_SENSITIVE_SINKS
            or not node.args
            or id(node.args[0]) in self._exempt_nodes
        ):
            return
        if self._is_set_like(node.args[0]):
            self._flag(
                node,
                UNORDERED_ITERATION,
                f"'{func.id}()' over a set materializes hash order; sort "
                "first (sorted(...)) or use an ordered container",
            )
            return
        source = self._unordered_source(node.args[0])
        if source is not None:
            description, fix_safe = source
            self._flag(
                node.args[0],
                UNORDERED_ITERATION,
                f"'{func.id}()' over {description} materializes "
                "OS-dependent order; wrap it in sorted(...)",
                fixable=fix_safe,
            )

    # -- iteration ----------------------------------------------------
    def visit_For(self, node: ast.For) -> None:
        if self._is_set_like(node.iter) and id(node.iter) not in self._exempt_nodes:
            self._flag(
                node,
                UNORDERED_ITERATION,
                "for-loop over a set iterates in hash order; sort first "
                "(sorted(...)) or use an ordered container",
            )
        elif id(node.iter) not in self._exempt_nodes:
            source = self._unordered_source(node.iter)
            if source is not None:
                description, fix_safe = source
                self._flag(
                    node.iter,
                    UNORDERED_ITERATION,
                    f"for-loop over {description} iterates in OS-dependent "
                    "order; wrap it in sorted(...)",
                    fixable=fix_safe,
                )
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        produces_set = isinstance(node, ast.SetComp)
        for generator in node.generators:
            if produces_set or id(generator.iter) in self._exempt_nodes:
                continue
            if id(node) in self._exempt_nodes:
                continue
            if self._is_set_like(generator.iter):
                self._flag(
                    generator.iter,
                    UNORDERED_ITERATION,
                    "comprehension over a set inherits hash order; sort "
                    "first (sorted(...)) or produce a set",
                )
                continue
            source = self._unordered_source(generator.iter)
            if source is not None:
                description, fix_safe = source
                self._flag(
                    generator.iter,
                    UNORDERED_ITERATION,
                    f"comprehension over {description} inherits "
                    "OS-dependent order; wrap it in sorted(...)",
                    fixable=fix_safe,
                )
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension
    visit_SetComp = _visit_comprehension

    # -- simulated-time mutation --------------------------------------
    def _check_time_attr_target(self, target: ast.AST) -> None:
        if isinstance(target, ast.Attribute) and target.attr in _SIM_TIME_ATTRS:
            self._flag(
                target,
                ADHOC_EVENT_LOOP,
                f"assignment to mutable simulated-time attribute "
                f"'{target.attr}' outside repro.engine; derive virtual time "
                "from the kernel Clock / SerialResource",
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        if not self._in_engine:
            for target in node.targets:
                # ast.walk reaches attributes inside tuple/list targets.
                for sub in ast.walk(target):
                    self._check_time_attr_target(sub)
        for target in node.targets:
            if isinstance(target, ast.Name):
                self._bind_name(target.id, node.value)
            else:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name):
                        self._bind_name(sub.id, None)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if not self._in_engine:
            self._check_time_attr_target(node.target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if not self._in_engine and node.value is not None:
            self._check_time_attr_target(node.target)
        if isinstance(node.target, ast.Name):
            self._bind_annotated(node.target.id, node.annotation)
        self.generic_visit(node)

    # -- comparisons --------------------------------------------------
    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for this, other in ((left, right), (right, left)):
                if not _looks_timey(this):
                    continue
                if isinstance(other, ast.Constant) and (
                    other.value is None or isinstance(other.value, str)
                ):
                    continue
                self._flag(
                    node,
                    FLOAT_EQ,
                    f"exact equality on timestamp-like value "
                    f"'{_identifier_of(this)}'; computed floats need a "
                    "tolerance or an ordering comparison",
                )
                break
        self.generic_visit(node)


def pragma_findings(pragmas: PragmaIndex, path: str) -> List[LintFinding]:
    """``bare-pragma`` findings for every unjustified pragma in the index."""
    return [
        LintFinding(
            rule=BARE_PRAGMA,
            path=path,
            line=line,
            col=col,
            message=(
                "suppression pragma without a justification; write "
                f"'# {pragmas.namespace}: allow(rule) -- why this is safe'"
            ),
            text=text,
        )
        for line, col, text in pragmas.unjustified
    ]


def lint_source(source: str, path: str = "<string>") -> List[LintFinding]:
    """Lint one Python source string; returns findings in line order."""
    lines = source.splitlines()
    pragmas = PragmaIndex(DET, lines)
    findings = pragma_findings(pragmas, path)
    tree = ast.parse(source, filename=path)
    visitor = _DeterminismVisitor(path, lines)
    visitor.visit(tree)
    findings.extend(
        finding
        for finding in visitor.findings
        if not pragmas.allows(finding.line, finding.rule)
    )
    return sorted(findings, key=lambda f: (f.line, f.col, f.rule))


def lint_file(path: str) -> List[LintFinding]:
    """Lint one file."""
    with open(path, "r", encoding="utf-8") as handle:
        return lint_source(handle.read(), path)


def iter_python_files(paths: Iterable[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    collected: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, _dirs, files in os.walk(path):
                collected.extend(
                    os.path.join(root, name)
                    for name in files
                    if name.endswith(".py")
                )
        else:
            collected.append(path)
    return sorted(collected)


def lint_paths(paths: Iterable[str]) -> List[LintFinding]:
    """Lint every ``.py`` file under the given files/directories."""
    findings: List[LintFinding] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path))
    return findings


def apply_fixes(source: str, findings: Sequence[LintFinding]) -> Tuple[str, int]:
    """Rewrite fixable findings by wrapping their spans in ``sorted(...)``.

    Only single-line spans from findings marked ``fixable`` are touched
    (the visitor marks a finding fixable only when the iterable's elements
    are provably sortable).  Returns the rewritten source and the number
    of fixes applied; re-lint the result to see what remains.
    """
    lines = source.splitlines()
    trailing_newline = source.endswith("\n")
    spans = sorted(
        {finding.span for finding in findings if finding.fixable and finding.span},
        reverse=True,
    )
    applied = 0
    for line, col, end_line, end_col in spans:
        if line != end_line or not 0 < line <= len(lines):
            continue
        text = lines[line - 1]
        lines[line - 1] = (
            text[:col] + "sorted(" + text[col:end_col] + ")" + text[end_col:]
        )
        applied += 1
    rebuilt = "\n".join(lines) + ("\n" if trailing_newline else "")
    return rebuilt, applied


def fix_paths(paths: Iterable[str]) -> List[Tuple[str, int]]:
    """Autofix every ``.py`` file under the given files/directories.

    Returns ``(path, fixes_applied)`` for each file examined; files with
    zero applicable fixes are left untouched on disk.
    """
    results: List[Tuple[str, int]] = []
    for path in iter_python_files(paths):
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        fixed, applied = apply_fixes(source, lint_source(source, path))
        if applied:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(fixed)
        results.append((path, applied))
    return results


def format_findings(findings: Sequence[LintFinding]) -> str:
    """Render findings one per line, with the offending source quoted."""
    parts = []
    for finding in findings:
        parts.append(str(finding))
        if finding.text:
            parts.append(f"    {finding.text}")
    return "\n".join(parts)
