"""Plain-text rendering of experiment outputs.

Every experiment produces an :class:`ExperimentResult` whose ``render()``
prints the same rows/series the paper's table or figure reports, so a
benchmark run regenerates the artifact as text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple


def format_cell(value) -> str:
    """Human formatting: floats get 4 significant digits, rest str()."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


def render_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render an aligned ASCII table."""
    formatted = [[format_cell(cell) for cell in row] for row in rows]
    widths = [
        max(len(header), *(len(row[index]) for row in formatted)) if formatted else len(header)
        for index, header in enumerate(headers)
    ]
    def line(cells):
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    separator = "  ".join("-" * width for width in widths)
    body = "\n".join(line(row) for row in formatted)
    return "\n".join([line(list(headers)), separator, body]) if formatted else line(list(headers))


@dataclass
class ExperimentResult:
    """One regenerated table or figure.

    Attributes:
        experiment_id: the paper artifact this reproduces (e.g. "Table 1").
        title: what the artifact shows.
        headers: column names.
        rows: data rows (the figure's series, flattened to rows).
        notes: shape expectations and scale caveats, printed below the table.
        extras: structured side-channel data that does not fit the table —
            e.g. the chaos experiment records the ruleset verifier's
            :class:`~repro.analysis.violations.Violation` records here.
    """

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[Tuple] = field(default_factory=list)
    notes: str = ""
    extras: Dict = field(default_factory=dict)

    def render(self) -> str:
        """Render the artifact as text."""
        parts = [f"== {self.experiment_id}: {self.title} =="]
        parts.append(render_table(self.headers, self.rows))
        if self.notes:
            parts.append(f"\n{self.notes}")
        return "\n".join(parts)

    def column(self, header: str) -> List:
        """Extract one column by header name (for assertions in benches)."""
        index = self.headers.index(header)
        return [row[index] for row in self.rows]
