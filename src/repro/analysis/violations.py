"""The violation taxonomy of the ruleset verifier.

Every checker in :mod:`repro.analysis.verifier` reports its findings as
:class:`Violation` records — structured, sortable, and serializable — so
that experiments can count them, tests can assert on exact kinds, and the
CLI can render them uniformly.  A violation's ``kind`` is one of the
constants below; ``severity`` separates semantics-breaking findings
(*errors*: the shadow+main pair no longer behaves like one monolithic
table) from harmless-but-suspicious ones (*warnings*: dead entries that
waste TCAM space without changing forwarding).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

# ---------------------------------------------------------------------------
# Kinds
# ---------------------------------------------------------------------------

#: A main-table rule overlaps a shadow resident at strictly higher priority:
#: the hardware's shadow-first lookup masks the main rule over the overlap,
#: inverting priority order (the Algorithm 1 invariant, Figure 4(b)).
PRIORITY_INVERSION = "priority-inversion"

#: The same rule_id is physically present more than once across the pair —
#: what a retried write without dedup (or a buggy migration) leaves behind.
DUPLICATE_ENTRY = "duplicate-entry"

#: A rule is wholly covered by higher-precedence rules in its own table and
#: can never match a packet.  Harmless to forwarding (warning), but it wastes
#: an entry and usually signals a partitioner or migration bug upstream.
UNREACHABLE_RULE = "unreachable-rule"

#: A rule is partially occluded by a higher-precedence overlapping rule with
#: a *different* action.  Expected in priority-ordered tables (that is what
#: priorities are for), so this is informational and off by default.
SHADOWED_RULE = "shadowed-rule"

#: Some concrete key forwards differently through the shadow+main pair than
#: through the reference monolithic table.
EQUIVALENCE_MISMATCH = "equivalence-mismatch"

#: An intermediate state of a move plan puts a lower-priority rule
#: physically above an overlapping higher-priority one — first-match lookup
#: would return the wrong rule while the batch is being written.
MOVEPLAN_INVERSION = "moveplan-inversion"

#: A move plan writes two rules into the same slot, or into a slot already
#: occupied by a resident entry.
MOVEPLAN_SLOT_CONFLICT = "moveplan-slot-conflict"

#: A move plan writes past the end of the table.
MOVEPLAN_OVERFLOW = "moveplan-overflow"

ERROR_KINDS = frozenset(
    {
        PRIORITY_INVERSION,
        DUPLICATE_ENTRY,
        EQUIVALENCE_MISMATCH,
        MOVEPLAN_INVERSION,
        MOVEPLAN_SLOT_CONFLICT,
        MOVEPLAN_OVERFLOW,
    }
)

WARNING_KINDS = frozenset({UNREACHABLE_RULE, SHADOWED_RULE})

ALL_KINDS = ERROR_KINDS | WARNING_KINDS


@dataclass(frozen=True)
class Violation:
    """One finding of the ruleset verifier.

    Attributes:
        kind: one of the module-level kind constants.
        message: human-readable description naming the rules involved.
        rule_ids: ids of the implicated rules, most-guilty first.
        table: the table (or table pair) the finding is about.
        witness: a concrete key demonstrating the violation, when the
            checker can produce one (equivalence and inversion findings).
        severity: ``"error"`` or ``"warning"``, derived from ``kind``.
    """

    kind: str
    message: str
    rule_ids: Tuple[int, ...] = ()
    table: str = ""
    witness: Optional[int] = None
    severity: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.kind not in ALL_KINDS:
            raise ValueError(f"unknown violation kind {self.kind!r}")
        derived = "error" if self.kind in ERROR_KINDS else "warning"
        if self.severity and self.severity != derived:
            raise ValueError(
                f"severity {self.severity!r} contradicts kind {self.kind!r}"
            )
        object.__setattr__(self, "severity", derived)

    @property
    def is_error(self) -> bool:
        """True for semantics-breaking findings."""
        return self.severity == "error"

    def to_dict(self) -> dict:
        """JSON-friendly rendering (used by the CLI and experiment extras)."""
        return {
            "kind": self.kind,
            "severity": self.severity,
            "message": self.message,
            "rule_ids": list(self.rule_ids),
            "table": self.table,
            "witness": self.witness,
        }

    def __str__(self) -> str:
        location = f" [{self.table}]" if self.table else ""
        witness = f" (witness key {self.witness:#x})" if self.witness is not None else ""
        return f"{self.severity}: {self.kind}{location}: {self.message}{witness}"
