"""SimRace: the schedule-order race detector for the discrete-event kernel.

Every guarantee the reproduction makes — parity digests, golden traces,
verifier witness keys — rests on event order being fully determined.  The
kernel dispatches in ``(time, tier, seq)`` order, and ``seq`` is nothing
but insertion order: two events at the same ``(time, tier)`` fire in the
order they happened to be scheduled.  That tie-break is deterministic, but
it is *arbitrary* — nothing about the model says which order is right.  A
**schedule-order race** is a pair of same-``(time, tier)`` events whose
accesses to shared simulation state conflict: their combined outcome can
depend on the ``seq`` tie-break, which means it silently depends on the
order of unrelated ``schedule()`` calls, and a refactor that reorders
those calls changes results without failing any invariant.

This module is the *dynamic* half of the detector (the sanitizer); the
static half lives in :mod:`repro.analysis.project`.  The sanitizer is
opt-in instrumentation over a live run:

* :meth:`RaceSanitizer.watch_scheduler` attaches to an
  :class:`~repro.engine.scheduler.EventScheduler`.  Every ``schedule()``
  records the scheduling call site (the witness, and the anchor for
  ``# race: allow(...)`` pragma suppressions); every ``pop()`` starts a
  new *footprint* — all shared-state accesses until the next pop belong
  to the popped event.
* Taps record the accesses: :class:`~repro.tcam.table.TcamTable`
  mutations arrive through the existing ``add_listener`` seam, RNG draws
  through a delegating generator proxy, and agent / channel / installer
  state through lightweight method wrappers
  (:meth:`~RaceSanitizer.watch_agent`, :meth:`~RaceSanitizer.watch_channel`,
  :meth:`~RaceSanitizer.watch_installer`).  Clock advances are derived
  from dispatch times: the event that first moves the run to a new
  instant records the ``clock`` write, so same-instant peers never
  conflict on time itself.
* Happens-before is ``(time, tier)`` order.  Accesses by events at
  different times or tiers are ordered by the model; accesses by events
  at the *same* ``(time, tier)`` are ordered only by ``seq``, so a
  write/write or write/read pair on one state key there is reported as a
  race, with both events' kinds, the key, and both scheduling call sites.

A run with no sanitizer attached executes byte-identically to one without
the seam (the scheduler's hooks are a single ``is None`` test); a run
*with* the sanitizer must produce identical metrics — the taps are pure
observers — which ``tests/analysis/test_races.py`` pins cross-process.

Work driven outside the scheduler (arrival admission, scan-mode
completion handling) is attributed to an *external* footprint via
:meth:`RaceSanitizer.external`: its ordering against kernel events is
fixed by the driving loop, not by ``seq``, so it never participates in
race pairs.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..engine.scheduler import Event
from ..obs.tracer import get_tracer
from .pragmas import RACE, file_pragmas

#: The rule name ``# race: allow(...)`` pragmas suppress.
SCHEDULE_ORDER_RACE = "schedule-order-race"

#: Frames whose files live under these path fragments are kernel/detector
#: plumbing, not scheduling call sites.
_PLUMBING_FRAGMENTS = ("repro/engine/", "repro/analysis/races")


@dataclass(frozen=True)
class RaceWitness:
    """One side of a race: an event plus where it was scheduled from.

    Attributes:
        kind: the event's :attr:`~repro.engine.scheduler.Event.kind`.
        seq: the scheduler's insertion-order tie-break value.
        access: ``"write"`` or ``"read"`` — this event's access to the key.
        site: ``path:line`` of the ``schedule()`` call that created the
            event, or ``""`` when the frame could not be resolved.
        detail: what the access was (e.g. ``install #42``), best effort.
    """

    kind: str
    seq: int
    access: str
    site: str = ""
    detail: str = ""

    def __str__(self) -> str:
        suffix = f" ({self.detail})" if self.detail else ""
        site = self.site or "<unknown site>"
        return f"'{self.kind}' seq={self.seq} [{self.access}]{suffix} scheduled at {site}"


@dataclass(frozen=True)
class RaceReport:
    """One schedule-order race: two same-``(time, tier)`` events whose
    accesses to ``key`` conflict, so their combined outcome is decided
    only by the scheduler's insertion-order tie-break."""

    time: float
    tier: int
    key: str
    first: RaceWitness
    second: RaceWitness

    def __str__(self) -> str:
        return (
            f"schedule-order race at t={self.time:.6f} tier={self.tier} "
            f"on {self.key!r}:\n"
            f"    {self.first}\n"
            f"    {self.second}\n"
            f"    order between them is decided only by scheduling order (seq)"
        )


@dataclass
class _Footprint:
    """The shared-state accesses attributed to one dispatched event."""

    event: Optional[Event]  # None: external (loop-ordered) work
    label: str = ""
    site: str = ""
    allowed: frozenset = frozenset()
    reads: Dict[str, str] = field(default_factory=dict)
    writes: Dict[str, str] = field(default_factory=dict)


class _TableTap:
    """A :meth:`TcamTable.add_listener` observer recording mutations."""

    def __init__(self, sanitizer: "RaceSanitizer", key: str) -> None:
        self._sanitizer = sanitizer
        self._key = key

    def rule_installed(self, rule) -> None:
        self._sanitizer.record_write(self._key, f"install #{rule.rule_id}")

    def rule_removed(self, rule) -> None:
        self._sanitizer.record_write(self._key, f"remove #{rule.rule_id}")

    def rule_modified(self, old, new) -> None:
        self._sanitizer.record_write(self._key, f"modify #{new.rule_id}")


class _RngTap:
    """A delegating proxy over an ``np.random.Generator``.

    Every method call records a write on the stream's key (a draw mutates
    the generator state) and then delegates, so the values produced are
    identical to the unwrapped generator's.
    """

    def __init__(self, sanitizer: "RaceSanitizer", key: str, generator) -> None:
        self._sanitizer = sanitizer
        self._key = key
        self._generator = generator

    def __getattr__(self, name: str):
        attribute = getattr(self._generator, name)
        if not callable(attribute):
            return attribute
        sanitizer, key = self._sanitizer, self._key

        def recording(*args, **kwargs):
            sanitizer.record_write(key, f"draw:{name}")
            return attribute(*args, **kwargs)

        return recording

    def __repr__(self) -> str:
        return f"_RngTap({self._key!r}, {self._generator!r})"


class RaceSanitizer:
    """Records per-event shared-state footprints and reports races.

    One sanitizer watches one timeline (one scheduler plus the components
    co-simulating on it).  Attach it before the run starts, run, then read
    :meth:`finish` (or :attr:`races` after it):

        sanitizer = RaceSanitizer()
        sanitizer.watch_simulation(simulation)
        simulation.run()
        for race in sanitizer.finish():
            print(race)

    Races whose scheduling call site carries a justified
    ``# race: allow(schedule-order-race) -- why`` pragma (or names the
    state key) land in :attr:`suppressed` instead of :attr:`races`.
    """

    def __init__(self, tracer=None) -> None:
        """Create an idle sanitizer (nothing watched yet).

        Args:
            tracer: optional explicit :class:`~repro.obs.tracer.Tracer`
                race events are emitted to; None follows the process
                global (a no-op unless one is installed).
        """
        self.races: List[RaceReport] = []
        self.suppressed: List[RaceReport] = []
        self.events_seen = 0
        self._tracer = tracer
        self._sites: Dict[Event, Tuple[str, frozenset]] = {}
        self._current: Optional[_Footprint] = None
        self._instant: List[_Footprint] = []
        self._instant_time: Optional[float] = None

    @property
    def tracer(self):
        """The injected tracer, or the process-global one."""
        return self._tracer if self._tracer is not None else get_tracer()

    # ------------------------------------------------------------------
    # Scheduler hooks (called by EventScheduler when attached)
    # ------------------------------------------------------------------
    def on_schedule(self, event: Event) -> None:
        """Record the scheduling call site (and its pragmas) for ``event``."""
        site, allowed = self._calling_site()
        self._sites[event] = (site, allowed)

    def on_dispatch(self, event: Event) -> None:
        """Start attributing accesses to ``event`` (closes the previous
        footprint; flushes and analyzes the instant when time moves)."""
        self._close_current()
        opened_instant = False
        if self._instant_time is None or event.time > self._instant_time:
            self._flush_instant()
            self._instant_time = event.time
            opened_instant = True
        self.events_seen += 1
        site, allowed = self._sites.pop(event, ("", frozenset()))
        self._current = _Footprint(event=event, site=site, allowed=allowed)
        if opened_instant:
            # The clock advance belongs to the event that moved the run to
            # this instant; same-instant peers never conflict on time.
            self.record_write("clock", f"advance to {event.time:.6f}")

    def external(self, label: str) -> None:
        """Attribute subsequent accesses to loop-ordered (non-racing) work.

        The driving loop calls this before handling arrivals or scan-mode
        completions: their order against kernel events is fixed by the
        loop's explicit dispatch rules, not by the ``seq`` tie-break, so
        their accesses must not be charged to the last popped event.
        """
        self._close_current()
        self._current = _Footprint(event=None, label=label)

    # ------------------------------------------------------------------
    # Access recording (called by the taps)
    # ------------------------------------------------------------------
    def record_read(self, key: str, detail: str = "") -> None:
        """Record a read of shared state ``key`` by the current footprint."""
        if self._current is not None and key not in self._current.reads:
            self._current.reads[key] = detail

    def record_write(self, key: str, detail: str = "") -> None:
        """Record a write of shared state ``key`` by the current footprint."""
        if self._current is not None and key not in self._current.writes:
            self._current.writes[key] = detail

    # ------------------------------------------------------------------
    # Instrumentation installers
    # ------------------------------------------------------------------
    def watch_scheduler(self, scheduler) -> None:
        """Attach to ``scheduler``'s schedule/pop hooks."""
        scheduler.attach_sanitizer(self)

    def watch_table(self, table, key: str) -> None:
        """Record ``table`` mutations (listener seam) and lookups as ``key``.

        Works on a :class:`~repro.tcam.table.TcamTable` or a
        :class:`~repro.faults.table.FaultyTable` wrapper — a silently
        failed write emits no listener event, matching what is physically
        resident.  A latency-noise generator on the table is wrapped too,
        so occupancy-dependent draws count as accesses to the table's RNG.
        """
        table.add_listener(_TableTap(self, key))
        original_lookup = table.lookup
        sanitizer = self

        def recording_lookup(lookup_key):
            sanitizer.record_read(key)
            return original_lookup(lookup_key)

        table.lookup = recording_lookup
        rng = getattr(table, "rng", None)
        if rng is not None and not isinstance(rng, _RngTap):
            table.rng = _RngTap(self, f"{key}:rng", rng)

    def watch_agent(self, agent) -> None:
        """Record FlowMod submissions to ``agent`` as writes (CPU horizon,
        history, and dedup cache all mutate) under ``agent:<name>``."""
        key = f"agent:{agent.name}"
        self._wrap_writes(agent, key, ("submit", "submit_batch"))

    def watch_channel(self, channel, key: str) -> None:
        """Record sends through ``channel`` as writes under ``key``."""
        self._wrap_writes(channel, key, ("send", "send_batch"))

    def watch_installer(self, installer, key: str) -> None:
        """Record installer activity under ``key``.

        ``apply`` / ``apply_batch`` / ``advance_time`` are writes,
        ``lookup`` a read; any physical tables the installer exposes as
        ``shadow`` / ``main`` / ``table`` attributes are watched through
        the listener seam as ``<key>:<table>``.
        """
        self._wrap_writes(
            installer, key, ("apply", "apply_batch", "advance_time")
        )
        original_lookup = installer.lookup
        sanitizer = self

        def recording_lookup(lookup_key):
            sanitizer.record_read(key)
            return original_lookup(lookup_key)

        installer.lookup = recording_lookup
        for attribute in ("shadow", "main", "table"):
            table = getattr(installer, attribute, None)
            if table is not None and hasattr(table, "add_listener"):
                self.watch_table(table, f"{key}:{attribute}")

    def watch_rng(self, streams) -> None:
        """Wrap a :class:`~repro.engine.rng.RngStreams` registry so every
        draw from a named stream records a write on ``rng:<name>``."""
        original_stream = streams.stream
        sanitizer = self

        def recording_stream(name):
            generator = original_stream(name)
            return _RngTap(sanitizer, f"rng:{name}", generator)

        streams.stream = recording_stream

    def watch_simulation(self, simulation) -> None:
        """Instrument a :class:`~repro.simulator.Simulation` end to end:
        its scheduler, and every agent, channel, and installer (with
        physical tables) of its controller."""
        self.watch_scheduler(simulation._scheduler)
        controller = simulation.controller
        for name in sorted(controller.agents):
            agent = controller.agents[name]
            self.watch_agent(agent)
            self.watch_installer(agent.installer, f"installer:{name}")
        for name in sorted(controller.channels):
            self.watch_channel(controller.channels[name], f"channel:{name}")

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def finish(self) -> List[RaceReport]:
        """Close the open footprint, analyze the last instant, and return
        every (unsuppressed) race found during the run."""
        self._close_current()
        self._flush_instant()
        return self.races

    def _close_current(self) -> None:
        footprint = self._current
        self._current = None
        if (
            footprint is not None
            and footprint.event is not None
            and (footprint.reads or footprint.writes)
        ):
            self._instant.append(footprint)

    def _flush_instant(self) -> None:
        """Analyze the buffered instant: conflicts within one ``(time,
        tier)`` bucket are races; buckets at different tiers are ordered
        by the tier field and never conflict."""
        instant, self._instant = self._instant, []
        if len(instant) < 2:
            return
        buckets: Dict[int, List[_Footprint]] = {}
        for footprint in instant:
            buckets.setdefault(footprint.event.tier, []).append(footprint)
        for tier in sorted(buckets):
            group = buckets[tier]
            if len(group) >= 2:
                self._analyze_bucket(tier, group)

    def _analyze_bucket(self, tier: int, group: List[_Footprint]) -> None:
        accesses: Dict[str, List[Tuple[_Footprint, str]]] = {}
        for footprint in group:
            for key, detail in footprint.writes.items():
                accesses.setdefault(key, []).append((footprint, "write"))
            for key, detail in footprint.reads.items():
                if key not in footprint.writes:
                    accesses.setdefault(key, []).append((footprint, "read"))
        time = group[0].event.time
        for key in sorted(accesses):
            entries = accesses[key]
            writers = [entry for entry in entries if entry[1] == "write"]
            if not writers or len(entries) < 2:
                continue
            first_fp, first_mode = writers[0]
            second = next(
                (entry for entry in entries if entry[0] is not first_fp), None
            )
            if second is None:
                continue
            second_fp, second_mode = second
            report = RaceReport(
                time=time,
                tier=tier,
                key=key,
                first=self._witness(first_fp, first_mode, key),
                second=self._witness(second_fp, second_mode, key),
            )
            if self._is_suppressed(first_fp, key) or self._is_suppressed(
                second_fp, key
            ):
                self.suppressed.append(report)
                continue
            self.races.append(report)
            tracer = self.tracer
            if tracer.enabled:
                tracer.event(
                    "race.schedule-order",
                    time=time,
                    category="race",
                    key=key,
                    tier=tier,
                    first=f"{report.first.kind}@{report.first.site}",
                    second=f"{report.second.kind}@{report.second.site}",
                )

    @staticmethod
    def _witness(footprint: _Footprint, mode: str, key: str) -> RaceWitness:
        detail = (
            footprint.writes.get(key, "")
            if mode == "write"
            else footprint.reads.get(key, "")
        )
        return RaceWitness(
            kind=footprint.event.kind,
            seq=footprint.event.seq,
            access=mode,
            site=footprint.site,
            detail=detail,
        )

    @staticmethod
    def _is_suppressed(footprint: _Footprint, key: str) -> bool:
        return SCHEDULE_ORDER_RACE in footprint.allowed or key in footprint.allowed

    def _wrap_writes(self, target, key: str, method_names) -> None:
        """Shadow instance methods with write-recording delegates."""
        sanitizer = self
        for name in method_names:
            original = getattr(target, name, None)
            if original is None:
                continue

            def recording(*args, _original=original, _name=name, **kwargs):
                sanitizer.record_write(key, _name)
                return _original(*args, **kwargs)

            setattr(target, name, recording)

    @staticmethod
    def _calling_site() -> Tuple[str, frozenset]:
        """``(path:line, allowed-rules)`` of the nearest non-plumbing frame."""
        frame = sys._getframe(2)  # skip _calling_site and on_schedule
        while frame is not None:
            path = frame.f_code.co_filename
            normalized = path.replace(os.sep, "/")
            if not any(
                fragment in normalized for fragment in _PLUMBING_FRAGMENTS
            ):
                pragmas = file_pragmas(path, RACE)
                line = frame.f_lineno
                return (
                    f"{path}:{line}",
                    frozenset(pragmas.allowed.get(line, ())),
                )
            frame = frame.f_back
        return "", frozenset()

    def __repr__(self) -> str:
        return (
            f"RaceSanitizer(events={self.events_seen}, "
            f"races={len(self.races)}, suppressed={len(self.suppressed)})"
        )


# ----------------------------------------------------------------------
# Scenario drivers (shared by the CLI and CI)
# ----------------------------------------------------------------------
def run_fixture(path: str, sanitizer: Optional[RaceSanitizer] = None):
    """Run a race-scenario fixture file under the sanitizer.

    The fixture module must expose ``run(sanitizer)``, which builds a
    scheduler (attaching the sanitizer) and drives it to completion; this
    helper imports it by path, runs it, and returns the finished
    sanitizer.  Used by the planted-race fixture in CI's must-fail loop.
    """
    import importlib.util

    spec = importlib.util.spec_from_file_location("race_fixture", path)
    if spec is None or spec.loader is None:
        raise ValueError(f"cannot import fixture {path!r}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    if sanitizer is None:
        sanitizer = RaceSanitizer()
    module.run(sanitizer)
    sanitizer.finish()
    return sanitizer


def run_scenario(name: str, sanitizer: Optional[RaceSanitizer] = None):
    """Run one canned scenario end to end under the sanitizer.

    ``name`` is ``demo`` (the traced obs demo workload), ``fig01``,
    ``fig08``, or ``chaos`` (the parity scenarios, quick scale).  Returns
    ``(sanitizer, metrics)`` with the sanitizer finished.  These are the
    runs CI requires to be race-free.
    """
    if sanitizer is None:
        sanitizer = RaceSanitizer()
    from ..experiments.common import canned_scenario

    simulation, _meta = canned_scenario(name)
    sanitizer.watch_simulation(simulation)
    metrics = simulation.run()
    sanitizer.finish()
    return sanitizer, metrics
