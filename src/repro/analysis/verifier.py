"""Ruleset verifier: static analysis over TCAM table snapshots.

Hermes's correctness story rests on one invariant: the shadow+main pair,
probed shadow-first, must behave exactly like a single priority-ordered
monolithic table (Section 4 of the paper).  The code that *maintains* that
invariant — Algorithm 1 partitioning, reverse re-partitioning, Figure 6
un-partitioning, Rule Manager migrations — is spread across
:mod:`repro.core`; this module *checks* it from the outside, using nothing
but the physical table contents.  Every checker is a pure function over
rule sequences, so it can run against live tables, serialized snapshots
(:mod:`repro.analysis.snapshot`), or hand-built fixtures, and none of them
consult :class:`~repro.core.partition.PartitionMap` — a corrupted
bookkeeping structure must not be able to vouch for itself.

Checkers report structured :class:`~repro.analysis.violations.Violation`
records; :func:`verify_partition` and :func:`verify_moveplan` are the
aggregate entry points.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..tcam.rule import Rule
from ..tcam.ternary import TernaryMatch
from .violations import (
    DUPLICATE_ENTRY,
    EQUIVALENCE_MISMATCH,
    MOVEPLAN_INVERSION,
    MOVEPLAN_OVERFLOW,
    MOVEPLAN_SLOT_CONFLICT,
    PRIORITY_INVERSION,
    SHADOWED_RULE,
    UNREACHABLE_RULE,
    Violation,
)

RuleSource = Sequence[Rule]

#: Verification engines: ``"ap"`` (atomic predicates, the default — near
#: linear on prefix tables) and ``"symbolic"`` (region decomposition via the
#: ternary algebra — the original oracle, kept for cross-checks).
ENGINES = ("ap", "symbolic")


def _rules_of(table) -> List[Rule]:
    """Accept a TcamTable, an installer slice, or a plain rule sequence."""
    getter = getattr(table, "rules", None)
    if callable(getter):
        return list(getter())
    return list(table)


def _subtract_all(
    fragments: List[TernaryMatch], cut: TernaryMatch
) -> List[TernaryMatch]:
    """Subtract ``cut`` from every fragment, dropping emptied ones."""
    survivors: List[TernaryMatch] = []
    for fragment in fragments:
        survivors.extend(fragment.subtract(cut))
    return survivors


def _effective_region(
    match: TernaryMatch, predecessors: Sequence[TernaryMatch]
) -> List[TernaryMatch]:
    """The part of ``match`` not covered by any predecessor (may be empty)."""
    regions = [match]
    for predecessor in predecessors:
        regions = _subtract_all(regions, predecessor)
        if not regions:
            break
    return regions


# ---------------------------------------------------------------------------
# Cross-table checks
# ---------------------------------------------------------------------------
def find_priority_inversions(shadow: RuleSource, main: RuleSource) -> List[Violation]:
    """The Algorithm 1 invariant, checked wholesale.

    A main-table rule that overlaps a shadow resident at strictly higher
    priority is masked by the hardware's shadow-first lookup over the
    overlap region — the pair stops behaving like one table (Figure 4(b)).
    Checked pairwise and independently of any partitioner bookkeeping.
    """
    violations: List[Violation] = []
    shadow_rules = _rules_of(shadow)
    for main_rule in _rules_of(main):
        for shadow_rule in shadow_rules:
            if main_rule.priority > shadow_rule.priority and main_rule.overlaps(
                shadow_rule
            ):
                overlap = main_rule.match.intersect(shadow_rule.match)
                violations.append(
                    Violation(
                        kind=PRIORITY_INVERSION,
                        message=(
                            f"main rule #{main_rule.rule_id} "
                            f"(prio {main_rule.priority}) is masked by shadow "
                            f"rule #{shadow_rule.rule_id} "
                            f"(prio {shadow_rule.priority}) over {overlap}"
                        ),
                        rule_ids=(main_rule.rule_id, shadow_rule.rule_id),
                        table="shadow+main",
                        witness=overlap.value if overlap is not None else None,
                    )
                )
    return violations


def find_duplicate_entries(shadow: RuleSource, main: RuleSource) -> List[Violation]:
    """Rule ids physically present more than once across the pair.

    A retried FlowMod without xid dedup, or a migration that wrote a rule
    into the main table without clearing its shadow copy, leaves the same
    id resident twice; logical deletes then strand the survivor.
    """
    violations: List[Violation] = []
    seen: Dict[int, str] = {}
    for table_name, rules in (("shadow", _rules_of(shadow)), ("main", _rules_of(main))):
        for rule in rules:
            if rule.rule_id in seen:
                violations.append(
                    Violation(
                        kind=DUPLICATE_ENTRY,
                        message=(
                            f"rule #{rule.rule_id} is installed in "
                            f"{seen[rule.rule_id]} and again in {table_name}"
                        ),
                        rule_ids=(rule.rule_id,),
                        table=f"{seen[rule.rule_id]}+{table_name}",
                    )
                )
            else:
                seen[rule.rule_id] = table_name
    return violations


# ---------------------------------------------------------------------------
# Single-table occlusion analysis
# ---------------------------------------------------------------------------
def find_unreachable_rules(table: RuleSource, name: str = "table") -> List[Violation]:
    """Rules wholly covered by the entries physically above them.

    An unreachable rule can never win a lookup: it wastes an entry and
    usually marks an upstream bug (a partitioner that failed to subsume, a
    migration that re-wrote a rule below its own blocker).  Forwarding is
    unaffected, so this is a warning, not an error.
    """
    violations: List[Violation] = []
    rules = _rules_of(table)
    for index, rule in enumerate(rules):
        predecessors = [prior.match for prior in rules[:index]]
        if not _effective_region(rule.match, predecessors):
            violations.append(
                Violation(
                    kind=UNREACHABLE_RULE,
                    message=(
                        f"rule #{rule.rule_id} ({rule.match}, prio "
                        f"{rule.priority}) is wholly covered by the "
                        f"{index} entries above it and can never match"
                    ),
                    rule_ids=(rule.rule_id,),
                    table=name,
                )
            )
    return violations


def find_shadowed_rules(table: RuleSource, name: str = "table") -> List[Violation]:
    """Rules partially occluded by an earlier overlapping rule whose action
    differs.

    Partial occlusion is what priorities are *for*, so this is purely
    informational — useful when auditing an operator-supplied ruleset for
    surprising interactions, too noisy to enforce on partitioned tables.
    """
    violations: List[Violation] = []
    rules = _rules_of(table)
    for index, rule in enumerate(rules):
        for prior in rules[:index]:
            if (
                prior.action != rule.action
                and prior.overlaps(rule)
                and not prior.match.contains(rule.match)
            ):
                violations.append(
                    Violation(
                        kind=SHADOWED_RULE,
                        message=(
                            f"rule #{rule.rule_id} loses part of {rule.match} "
                            f"to rule #{prior.rule_id} ({prior.action} vs "
                            f"{rule.action})"
                        ),
                        rule_ids=(rule.rule_id, prior.rule_id),
                        table=name,
                    )
                )
                break  # one report per occluded rule is enough
    return violations


# ---------------------------------------------------------------------------
# Semantic equivalence
# ---------------------------------------------------------------------------
def lookup_order(shadow: RuleSource, main: RuleSource) -> List[Rule]:
    """The pair's first-match order: shadow physical order, then main.

    This mirrors the hardware (and :meth:`HermesInstaller.lookup`): the
    shadow slice has higher lookup priority, and within a slice the TCAM
    returns the topmost entry.
    """
    return _rules_of(shadow) + _rules_of(main)


def semantic_diff(
    system: RuleSource,
    reference: RuleSource,
    system_name: str = "shadow+main",
    reference_name: str = "reference",
) -> List[Violation]:
    """Exact semantic diff of two first-match rule lists.

    Finds every maximal region of key space on which the two tables decide
    differently — a different action, or a hit on one side and a miss on
    the other — and reports one witness key per differing rule pair.  The
    check is complete (no sampling): regions are computed symbolically with
    the ternary subtract/intersect algebra, the same primitives Algorithm 1
    itself uses, so a disagreement on even a single key is found.
    """
    violations: List[Violation] = []
    system_rules = _rules_of(system)
    reference_rules = _rules_of(reference)
    reported: set = set()

    def report(piece: TernaryMatch, winner: Rule, other: Optional[Rule]) -> None:
        pair = (winner.rule_id, None if other is None else other.rule_id)
        if pair in reported:
            return
        reported.add(pair)
        if other is None:
            detail = f"{reference_name} matches nothing there"
        else:
            detail = (
                f"{reference_name} answers with rule #{other.rule_id} "
                f"({other.action})"
            )
        violations.append(
            Violation(
                kind=EQUIVALENCE_MISMATCH,
                message=(
                    f"key {piece.value:#x}: {system_name} answers with rule "
                    f"#{winner.rule_id} ({winner.action}) but {detail}"
                ),
                rule_ids=(winner.rule_id,)
                + (() if other is None else (other.rule_id,)),
                table=f"{system_name} vs {reference_name}",
                witness=piece.value,
            )
        )

    # Forward direction: walk every region the system decides and check the
    # reference decides it identically.
    for index, rule in enumerate(system_rules):
        fragments = _effective_region(
            rule.match, [prior.match for prior in system_rules[:index]]
        )
        for other in reference_rules:
            if not fragments:
                break
            pieces = [
                piece
                for fragment in fragments
                for piece in (fragment.intersect(other.match),)
                if piece is not None
            ]
            if pieces and other.action != rule.action:
                report(pieces[0], rule, other)
            if pieces:
                fragments = _subtract_all(fragments, other.match)
        for fragment in fragments:
            # The system hits here but the reference falls through.
            report(fragment, rule, None)
            break

    # Reverse direction: regions the reference decides but the system never
    # covers (action mismatches on jointly covered keys were caught above).
    system_matches = [rule.match for rule in system_rules]
    for index, other in enumerate(reference_rules):
        fragments = _effective_region(
            other.match, [prior.match for prior in reference_rules[:index]]
        )
        uncovered = fragments
        for match in system_matches:
            if not uncovered:
                break
            uncovered = _subtract_all(uncovered, match)
        for fragment in uncovered:
            pair = (None, other.rule_id)
            if pair in reported:
                break
            reported.add(pair)
            violations.append(
                Violation(
                    kind=EQUIVALENCE_MISMATCH,
                    message=(
                        f"key {fragment.value:#x}: {reference_name} answers "
                        f"with rule #{other.rule_id} ({other.action}) but "
                        f"{system_name} matches nothing there"
                    ),
                    rule_ids=(other.rule_id,),
                    table=f"{system_name} vs {reference_name}",
                    witness=fragment.value,
                )
            )
            break
    return violations


# ---------------------------------------------------------------------------
# Aggregate entry points
# ---------------------------------------------------------------------------
def verify_partition(
    shadow: RuleSource,
    main: RuleSource,
    reference: Optional[RuleSource] = None,
    include_warnings: bool = False,
    engine: str = "ap",
) -> List[Violation]:
    """Verify a shadow+main pair against the paper's correctness invariant.

    Runs the cross-table priority-inversion check and the duplicate-entry
    check; with a ``reference`` monolithic table, additionally diffs the
    pair's lookup semantics against it.  ``include_warnings`` adds the
    per-table occlusion analyses (unreachable and shadowed rules).

    ``engine`` selects the decision procedure: ``"ap"`` (default) runs the
    atomic-predicate engine (:mod:`repro.analysis.ap`), ``"symbolic"`` the
    original region-decomposition checkers.  Both are exact and report the
    same violations; the AP engine is the one that scales to full-FIB
    tables.

    Returns the violations found, errors first; an empty list means the
    pair provably behaves like one priority-ordered table (relative to the
    checks requested).
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}: expected one of {ENGINES}")
    if engine == "ap":
        # Imported lazily: ap imports this module's primitives.
        from .ap import ap_verify_partition

        return ap_verify_partition(
            shadow, main, reference=reference, include_warnings=include_warnings
        )
    violations = find_priority_inversions(shadow, main)
    violations += find_duplicate_entries(shadow, main)
    if reference is not None:
        violations += semantic_diff(lookup_order(shadow, main), reference)
    if include_warnings:
        violations += find_unreachable_rules(shadow, "shadow")
        violations += find_unreachable_rules(main, "main")
        violations += find_shadowed_rules(main, "main")
    return sorted(violations, key=lambda v: (v.severity != "error", v.kind))


def verify_moveplan(
    plan,
    table: RuleSource,
    capacity: Optional[int] = None,
) -> List[Violation]:
    """Check that a placement plan is safe at *every* intermediate state.

    The paper's shift-safety argument (Section 6) requires more than a
    correct final layout: a batch written one entry at a time exposes every
    prefix of the plan to live lookups, so each intermediate table state
    must already preserve first-match semantics.  This checker replays the
    plan write-by-write over the resident table and reports:

    * ``moveplan-overflow`` — a slot past the table's capacity;
    * ``moveplan-slot-conflict`` — a slot colliding with a resident entry
      or with an earlier write of the same plan;
    * ``moveplan-inversion`` — an intermediate state in which a rule sits
      physically above an overlapping rule of strictly higher priority
      (first-match would answer with the wrong rule).

    Args:
        plan: a :class:`~repro.tcam.moveplan.PlacementPlan` (anything with
            aligned ``order``/``slots`` sequences works).
        table: the resident rules, in physical order (slots ``0..n-1``).
        capacity: table capacity; taken from ``table.capacity`` when the
            argument is a real table, unbounded otherwise.
    """
    order: Tuple[Rule, ...] = tuple(plan.order)
    slots: Tuple[int, ...] = tuple(plan.slots)
    if len(order) != len(slots):
        raise ValueError(
            f"plan order ({len(order)} rules) and slots ({len(slots)}) disagree"
        )
    if capacity is None:
        capacity = getattr(table, "capacity", None)
    resident = _rules_of(table)
    violations: List[Violation] = []
    occupied: Dict[int, Rule] = {index: rule for index, rule in enumerate(resident)}
    for rule, slot in zip(order, slots):
        if capacity is not None and slot >= capacity:
            violations.append(
                Violation(
                    kind=MOVEPLAN_OVERFLOW,
                    message=(
                        f"rule #{rule.rule_id} is planned into slot {slot} "
                        f"but the table holds only {capacity} entries"
                    ),
                    rule_ids=(rule.rule_id,),
                    table="moveplan",
                )
            )
            continue
        if slot in occupied:
            violations.append(
                Violation(
                    kind=MOVEPLAN_SLOT_CONFLICT,
                    message=(
                        f"rule #{rule.rule_id} is planned into slot {slot}, "
                        f"already holding rule #{occupied[slot].rule_id}"
                    ),
                    rule_ids=(rule.rule_id, occupied[slot].rule_id),
                    table="moveplan",
                )
            )
            continue
        # The write lands; check the intermediate state it creates.  Only
        # pairs involving the new rule can introduce fresh inversions.
        for other_slot, other in occupied.items():
            upper, lower = (rule, other) if slot < other_slot else (other, rule)
            if lower.priority > upper.priority and upper.overlaps(lower):
                overlap = upper.match.intersect(lower.match)
                violations.append(
                    Violation(
                        kind=MOVEPLAN_INVERSION,
                        message=(
                            f"after writing rule #{rule.rule_id} into slot "
                            f"{slot}, rule #{upper.rule_id} (prio "
                            f"{upper.priority}) sits above overlapping rule "
                            f"#{lower.rule_id} (prio {lower.priority})"
                        ),
                        rule_ids=(upper.rule_id, lower.rule_id),
                        table="moveplan",
                        witness=overlap.value if overlap is not None else None,
                    )
                )
        occupied[slot] = rule
    return violations


def verify_installer(
    installer, include_warnings: bool = False, engine: str = "ap"
) -> List[Violation]:
    """Verify any :class:`~repro.switchsim.installer.RuleInstaller`.

    Uses the installer's ``tables()`` introspection seam: two-slice schemes
    (Hermes) get the full pair verification, monolithic schemes get the
    duplicate check only (a single table cannot invert against itself).
    ``engine`` selects the decision procedure, as in
    :func:`verify_partition`.
    """
    tables = installer.tables()
    shadow = tables.get("shadow", ())
    main = tables.get("main", tables.get("monolithic", ()))
    return verify_partition(
        shadow, main, include_warnings=include_warnings, engine=engine
    )
