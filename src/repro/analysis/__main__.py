"""Command-line front end of the static-analysis layer.

Four subcommands::

    python -m repro.analysis verify SNAPSHOT.json     # check a table snapshot
    python -m repro.analysis verify OLD.json NEW.json # localize a corruption
    python -m repro.analysis lint [--fix] [PATH ...]  # determinism lint
    python -m repro.analysis scenario [--out F]       # canned churn + verify
    python -m repro.analysis races SCENARIO           # schedule-order races

``lint`` runs both the per-file determinism lint and the project-wide
schedule-order pass (``shared-state-mutation`` / ``ambiguous-tier``) over
the same paths.  ``races`` runs a canned scenario (``demo``, ``fig01``,
``fig08``, ``chaos``) — or, given a ``.py`` path, a fixture module
exposing ``run(sanitizer)`` — under the dynamic race sanitizer and
reports every schedule-order race with its witness pair; exit 1 when any
race is found.

``verify`` and ``scenario`` accept ``--engine {ap,symbolic}`` (default
``ap``, the atomic-predicate engine) and ``--cross-check``, which runs
*both* engines and fails with exit 2 if their findings disagree — the
differential harness for the engines themselves.  With two snapshot
arguments, ``verify`` treats them as captures of the *same* switch at two
instants: it verifies both, diffs them by rule id, and when the later one
is corrupt but the earlier clean, names the changed rules implicated in
the corruption.

``scenario`` drives a deterministic insert/delete churn through a real
:class:`HermesInstaller` (with live migrations) and a monolithic reference
table, snapshots both, and verifies the snapshot — the zero-setup way to
see the verifier pass, and, with ``--corrupt``, to see each checker catch a
seeded corruption.  Exit status: 0 clean, 1 violations/findings, 2 usage
or engine disagreement.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

import numpy as np

from .ap import violation_fingerprint
from .lint import fix_paths, format_findings, lint_paths
from .project import lint_project
from .snapshot import (
    diff_snapshots,
    dump_snapshot,
    load_snapshot,
    read_snapshot,
    snapshot_tables,
)
from .verifier import ENGINES, verify_partition

CORRUPTIONS = ("swap-priority", "drop-rule", "duplicate")


def build_scenario(seed: int = 7, steps: int = 80):
    """Run the canned churn scenario; returns (hermes, direct) installers."""
    from ..core.hermes import HermesConfig, HermesInstaller
    from ..switchsim.installer import DirectInstaller
    from ..switchsim.messages import FlowMod
    from ..tcam.prefix import Prefix
    from ..tcam.rule import Action, Rule
    from ..tcam.switch_models import dell_8132f, pica8_p3290

    rng = np.random.default_rng(seed)
    hermes = HermesInstaller(
        dell_8132f(),
        config=HermesConfig(
            shadow_capacity=24, admission_control=False, epoch=0.01
        ),
    )
    direct = DirectInstaller(pica8_p3290())
    installed: List[Rule] = []
    priorities = list(rng.permutation(10 * steps))
    now = 0.0
    for step in range(steps):
        now += 0.005
        hermes.advance_time(now)
        if installed and rng.random() < 0.25:
            victim = installed.pop(int(rng.integers(0, len(installed))))
            hermes.apply(FlowMod.delete(victim.rule_id))
            direct.apply(FlowMod.delete(victim.rule_id))
            continue
        length = int(rng.integers(8, 25))
        mask = ((1 << length) - 1) << (32 - length)
        network = ((10 << 24) | int(rng.integers(0, 1 << 24))) & mask
        rule = Rule.from_prefix(
            Prefix(network, length),
            int(priorities[step]) + 1,
            Action.output(int(rng.integers(1, 9))),
        )
        hermes.apply(FlowMod.add(rule))
        direct.apply(FlowMod.add(rule))
        installed.append(rule)
    # End with a burst the Rule Manager has not migrated yet, so the
    # snapshot captures the interesting state: live rules in *both*
    # slices, with Algorithm 1 partitioning in effect.
    for burst in range(6):
        length = int(rng.integers(10, 22))
        mask = ((1 << length) - 1) << (32 - length)
        network = ((10 << 24) | int(rng.integers(0, 1 << 24))) & mask
        rule = Rule.from_prefix(
            Prefix(network, length),
            int(priorities[steps + burst]) + 1,
            Action.output(int(rng.integers(1, 9))),
        )
        hermes.apply(FlowMod.add(rule))
        direct.apply(FlowMod.add(rule))
    return hermes, direct


def corrupt_snapshot(payload: dict, kind: str) -> dict:
    """Seed one deliberate corruption into a snapshot payload."""
    tables = payload["tables"]
    shadow = tables.setdefault("shadow", [])
    main = tables.setdefault("main", [])
    if kind == "swap-priority":
        # Plant a high-priority twin of a shadow rule in the main table
        # (or, with an empty shadow, a low-priority twin of a main rule in
        # the shadow): the cross-table inversion Algorithm 1 prevents.
        if shadow:
            twin = dict(shadow[0])
            twin["priority"] = shadow[0]["priority"] + 1000
            twin["rule_id"] = 10_000_000
            main.insert(0, twin)
        else:
            twin = dict(main[0])
            twin["priority"] = max(0, main[0]["priority"] - 1000)
            twin["rule_id"] = 10_000_000
            shadow.append(twin)
    elif kind == "drop-rule":
        # Lose one installed rule (the reference keeps it): a silent
        # write failure's end state.
        (shadow if shadow else main).pop(0)
    elif kind == "duplicate":
        # The same physical entry resident in both tables: a replayed
        # FlowMod without dedup.
        source = main[0] if main else shadow[0]
        shadow.append(dict(source))
    else:
        raise ValueError(f"unknown corruption {kind!r}; known: {CORRUPTIONS}")
    return payload


def _report(violations, stream=sys.stdout) -> int:
    errors = [violation for violation in violations if violation.is_error]
    for violation in violations:
        print(violation, file=stream)
    print(
        f"{len(errors)} error(s), {len(violations) - len(errors)} warning(s)",
        file=stream,
    )
    return 1 if errors else 0


def _verify_tables(snapshot, include_warnings: bool, engine: str, cross_check: bool):
    """Verify one snapshot; returns ``(violations, engines_disagree)``."""
    violations = verify_partition(
        snapshot.shadow,
        snapshot.main,
        reference=snapshot.reference,
        include_warnings=include_warnings,
        engine=engine,
    )
    if not cross_check:
        return violations, False
    other_engine = "symbolic" if engine == "ap" else "ap"
    other = verify_partition(
        snapshot.shadow,
        snapshot.main,
        reference=snapshot.reference,
        include_warnings=include_warnings,
        engine=other_engine,
    )
    mine, theirs = violation_fingerprint(violations), violation_fingerprint(other)
    if mine != theirs:
        print(
            f"engine disagreement: {engine} found {mine} "
            f"but {other_engine} found {theirs}",
            file=sys.stderr,
        )
        return violations, True
    print(
        f"cross-check: {engine} and {other_engine} agree "
        f"on {len(violations)} finding(s)"
    )
    return violations, False


def _verify_over_time(
    paths, snapshots, include_warnings: bool, engine: str, cross_check: bool
) -> int:
    """Two captures of the same switch: verify both, localize the break."""
    results = []
    for path, snapshot in zip(paths, snapshots):
        violations, disagree = _verify_tables(
            snapshot, include_warnings, engine, cross_check
        )
        if disagree:
            return 2
        errors = [violation for violation in violations if violation.is_error]
        results.append((path, violations, errors))
    delta = diff_snapshots(snapshots[0], snapshots[1])
    print(
        f"delta {paths[0]} -> {paths[1]}: "
        f"{len(delta.added)} added, {len(delta.removed)} removed, "
        f"{len(delta.moved)} moved, {len(delta.modified)} modified"
    )
    (older_path, older_violations, older_errors) = results[0]
    (newer_path, newer_violations, newer_errors) = results[1]
    if older_errors:
        print(f"corruption already present in {older_path}:")
        _report(older_violations)
        return 1
    print(f"{older_path}: clean")
    if not newer_errors:
        _report(newer_violations)
        print("no corruption in either capture; the delta is legitimate churn")
        return 0
    implicated = sorted(
        delta.changed_ids
        & {rule_id for violation in newer_errors for rule_id in violation.rule_ids}
    )
    print(f"corruption introduced between {older_path} and {newer_path}:")
    _report(newer_violations)
    if implicated:
        print(
            "implicated by the delta: "
            + ", ".join(f"rule #{rule_id}" for rule_id in implicated)
        )
    else:
        print(
            "no changed rule is directly implicated; the delta likely "
            "removed or moved an entry the survivors depended on"
        )
    return 1


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static analysis for TCAM correctness and determinism.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    verify_cmd = commands.add_parser(
        "verify", help="verify one snapshot, or localize a break between two"
    )
    verify_cmd.add_argument(
        "snapshots",
        nargs="+",
        metavar="SNAPSHOT",
        help=(
            "one snapshot JSON file to verify, or two captures of the "
            "same switch (EARLIER LATER) to diff and localize"
        ),
    )
    verify_cmd.add_argument(
        "--include-warnings",
        action="store_true",
        help="also run the unreachable/shadowed-rule analyses",
    )
    verify_cmd.add_argument(
        "--engine",
        choices=ENGINES,
        default="ap",
        help="decision procedure (default: ap, the atomic-predicate engine)",
    )
    verify_cmd.add_argument(
        "--cross-check",
        action="store_true",
        help="run both engines and exit 2 if their findings disagree",
    )

    lint_cmd = commands.add_parser(
        "lint", help="run the determinism lint over source trees"
    )
    lint_cmd.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    lint_cmd.add_argument(
        "--fix",
        action="store_true",
        help="rewrite provably-safe findings by inserting sorted(...)",
    )
    lint_cmd.add_argument(
        "--no-project",
        action="store_true",
        help="skip the project-wide pass (shared-state-mutation, ambiguous-tier)",
    )

    races_cmd = commands.add_parser(
        "races",
        help="run a scenario under the schedule-order race sanitizer",
    )
    races_cmd.add_argument(
        "scenario",
        help=(
            "demo, fig01, fig08, or chaos — or a path to a .py fixture "
            "module exposing run(sanitizer)"
        ),
    )

    scenario_cmd = commands.add_parser(
        "scenario",
        help="run a canned Hermes churn scenario, snapshot it, verify it",
    )
    scenario_cmd.add_argument("--seed", type=int, default=7)
    scenario_cmd.add_argument("--steps", type=int, default=80)
    scenario_cmd.add_argument(
        "--out", default=None, help="also write the snapshot JSON here"
    )
    scenario_cmd.add_argument(
        "--corrupt",
        choices=CORRUPTIONS,
        default=None,
        help="seed a deliberate corruption before verifying (must fail)",
    )
    scenario_cmd.add_argument(
        "--engine",
        choices=ENGINES,
        default="ap",
        help="decision procedure (default: ap, the atomic-predicate engine)",
    )
    scenario_cmd.add_argument(
        "--cross-check",
        action="store_true",
        help="run both engines and exit 2 if their findings disagree",
    )

    args = parser.parse_args(argv)

    if args.command == "lint":
        if args.fix:
            fixed = [(path, count) for path, count in fix_paths(args.paths) if count]
            for path, count in fixed:
                print(f"{path}: {count} fix(es) applied")
            print(f"{sum(count for _, count in fixed)} fix(es) in total")
        findings = lint_paths(args.paths)
        if not args.no_project:
            findings = findings + lint_project(args.paths)
        if findings:
            print(format_findings(findings))
        print(f"{len(findings)} finding(s) in {', '.join(args.paths)}")
        return 1 if findings else 0

    if args.command == "races":
        from .races import RaceSanitizer, run_fixture, run_scenario

        sanitizer = RaceSanitizer()
        if args.scenario.endswith(".py"):
            run_fixture(args.scenario, sanitizer)
        else:
            try:
                sanitizer, _metrics = run_scenario(args.scenario, sanitizer)
            except ValueError as error:
                print(error, file=sys.stderr)
                return 2
        for race in sanitizer.races:
            print(race)
        for race in sanitizer.suppressed:
            print(
                f"suppressed: {race.key!r} at t={race.time:.6f} "
                f"({race.first.kind} vs {race.second.kind})"
            )
        summary = (
            f"{len(sanitizer.races)} race(s) over "
            f"{sanitizer.events_seen} dispatched event(s)"
        )
        if sanitizer.suppressed:
            summary += f", {len(sanitizer.suppressed)} suppressed"
        print(summary)
        return 1 if sanitizer.races else 0

    if args.command == "verify":
        if len(args.snapshots) > 2:
            print(
                f"verify takes one or two snapshots, got {len(args.snapshots)}",
                file=sys.stderr,
            )
            return 2
        snapshots = []
        for path in args.snapshots:
            try:
                snapshots.append(read_snapshot(path))
            except (OSError, ValueError, json.JSONDecodeError) as error:
                print(f"cannot load {path}: {error}", file=sys.stderr)
                return 2
        if len(snapshots) == 2:
            return _verify_over_time(
                args.snapshots,
                snapshots,
                args.include_warnings,
                args.engine,
                args.cross_check,
            )
        violations, disagree = _verify_tables(
            snapshots[0], args.include_warnings, args.engine, args.cross_check
        )
        if disagree:
            return 2
        return _report(violations)

    # scenario
    hermes, direct = build_scenario(seed=args.seed, steps=args.steps)
    payload = snapshot_tables(hermes.tables(), reference=direct.table)
    if args.corrupt is not None:
        payload = corrupt_snapshot(payload, args.corrupt)
    if args.out is not None:
        dump_snapshot(payload, args.out)
        print(f"snapshot written to {args.out}")
    snapshot = load_snapshot(payload)
    print(
        f"scenario: shadow={len(snapshot.shadow)} main={len(snapshot.main)} "
        f"reference={len(snapshot.reference or [])} rules"
        + (f" (corrupted: {args.corrupt})" if args.corrupt else "")
    )
    violations, disagree = _verify_tables(
        snapshot, include_warnings=False, engine=args.engine,
        cross_check=args.cross_check,
    )
    if disagree:
        return 2
    return _report(violations)


if __name__ == "__main__":
    sys.exit(main())
