"""Command-line front end of the static-analysis layer.

Three subcommands::

    python -m repro.analysis verify SNAPSHOT.json   # check a table snapshot
    python -m repro.analysis lint [PATH ...]        # determinism lint
    python -m repro.analysis scenario [--out F]     # canned churn + verify

``scenario`` drives a deterministic insert/delete churn through a real
:class:`HermesInstaller` (with live migrations) and a monolithic reference
table, snapshots both, and verifies the snapshot — the zero-setup way to
see the verifier pass, and, with ``--corrupt``, to see each checker catch a
seeded corruption.  Exit status: 0 clean, 1 violations/findings, 2 usage.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

import numpy as np

from .lint import format_findings, lint_paths
from .snapshot import (
    dump_snapshot,
    load_snapshot,
    read_snapshot,
    snapshot_tables,
)
from .verifier import verify_partition

CORRUPTIONS = ("swap-priority", "drop-rule", "duplicate")


def build_scenario(seed: int = 7, steps: int = 80):
    """Run the canned churn scenario; returns (hermes, direct) installers."""
    from ..core.hermes import HermesConfig, HermesInstaller
    from ..switchsim.installer import DirectInstaller
    from ..switchsim.messages import FlowMod
    from ..tcam.prefix import Prefix
    from ..tcam.rule import Action, Rule
    from ..tcam.switch_models import dell_8132f, pica8_p3290

    rng = np.random.default_rng(seed)
    hermes = HermesInstaller(
        dell_8132f(),
        config=HermesConfig(
            shadow_capacity=24, admission_control=False, epoch=0.01
        ),
    )
    direct = DirectInstaller(pica8_p3290())
    installed: List[Rule] = []
    priorities = list(rng.permutation(10 * steps))
    now = 0.0
    for step in range(steps):
        now += 0.005
        hermes.advance_time(now)
        if installed and rng.random() < 0.25:
            victim = installed.pop(int(rng.integers(0, len(installed))))
            hermes.apply(FlowMod.delete(victim.rule_id))
            direct.apply(FlowMod.delete(victim.rule_id))
            continue
        length = int(rng.integers(8, 25))
        mask = ((1 << length) - 1) << (32 - length)
        network = ((10 << 24) | int(rng.integers(0, 1 << 24))) & mask
        rule = Rule.from_prefix(
            Prefix(network, length),
            int(priorities[step]) + 1,
            Action.output(int(rng.integers(1, 9))),
        )
        hermes.apply(FlowMod.add(rule))
        direct.apply(FlowMod.add(rule))
        installed.append(rule)
    # End with a burst the Rule Manager has not migrated yet, so the
    # snapshot captures the interesting state: live rules in *both*
    # slices, with Algorithm 1 partitioning in effect.
    for burst in range(6):
        length = int(rng.integers(10, 22))
        mask = ((1 << length) - 1) << (32 - length)
        network = ((10 << 24) | int(rng.integers(0, 1 << 24))) & mask
        rule = Rule.from_prefix(
            Prefix(network, length),
            int(priorities[steps + burst]) + 1,
            Action.output(int(rng.integers(1, 9))),
        )
        hermes.apply(FlowMod.add(rule))
        direct.apply(FlowMod.add(rule))
    return hermes, direct


def corrupt_snapshot(payload: dict, kind: str) -> dict:
    """Seed one deliberate corruption into a snapshot payload."""
    tables = payload["tables"]
    shadow = tables.setdefault("shadow", [])
    main = tables.setdefault("main", [])
    if kind == "swap-priority":
        # Plant a high-priority twin of a shadow rule in the main table
        # (or, with an empty shadow, a low-priority twin of a main rule in
        # the shadow): the cross-table inversion Algorithm 1 prevents.
        if shadow:
            twin = dict(shadow[0])
            twin["priority"] = shadow[0]["priority"] + 1000
            twin["rule_id"] = 10_000_000
            main.insert(0, twin)
        else:
            twin = dict(main[0])
            twin["priority"] = max(0, main[0]["priority"] - 1000)
            twin["rule_id"] = 10_000_000
            shadow.append(twin)
    elif kind == "drop-rule":
        # Lose one installed rule (the reference keeps it): a silent
        # write failure's end state.
        (shadow if shadow else main).pop(0)
    elif kind == "duplicate":
        # The same physical entry resident in both tables: a replayed
        # FlowMod without dedup.
        source = main[0] if main else shadow[0]
        shadow.append(dict(source))
    else:
        raise ValueError(f"unknown corruption {kind!r}; known: {CORRUPTIONS}")
    return payload


def _report(violations, stream=sys.stdout) -> int:
    errors = [violation for violation in violations if violation.is_error]
    for violation in violations:
        print(violation, file=stream)
    print(
        f"{len(errors)} error(s), {len(violations) - len(errors)} warning(s)",
        file=stream,
    )
    return 1 if errors else 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static analysis for TCAM correctness and determinism.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    verify_cmd = commands.add_parser(
        "verify", help="verify a serialized table snapshot"
    )
    verify_cmd.add_argument("snapshot", help="path to a snapshot JSON file")
    verify_cmd.add_argument(
        "--include-warnings",
        action="store_true",
        help="also run the unreachable/shadowed-rule analyses",
    )

    lint_cmd = commands.add_parser(
        "lint", help="run the determinism lint over source trees"
    )
    lint_cmd.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )

    scenario_cmd = commands.add_parser(
        "scenario",
        help="run a canned Hermes churn scenario, snapshot it, verify it",
    )
    scenario_cmd.add_argument("--seed", type=int, default=7)
    scenario_cmd.add_argument("--steps", type=int, default=80)
    scenario_cmd.add_argument(
        "--out", default=None, help="also write the snapshot JSON here"
    )
    scenario_cmd.add_argument(
        "--corrupt",
        choices=CORRUPTIONS,
        default=None,
        help="seed a deliberate corruption before verifying (must fail)",
    )

    args = parser.parse_args(argv)

    if args.command == "lint":
        findings = lint_paths(args.paths)
        if findings:
            print(format_findings(findings))
        print(f"{len(findings)} finding(s) in {', '.join(args.paths)}")
        return 1 if findings else 0

    if args.command == "verify":
        try:
            snapshot = read_snapshot(args.snapshot)
        except (OSError, ValueError, json.JSONDecodeError) as error:
            print(f"cannot load {args.snapshot}: {error}", file=sys.stderr)
            return 2
        violations = verify_partition(
            snapshot.shadow,
            snapshot.main,
            reference=snapshot.reference,
            include_warnings=args.include_warnings,
        )
        return _report(violations)

    # scenario
    hermes, direct = build_scenario(seed=args.seed, steps=args.steps)
    payload = snapshot_tables(hermes.tables(), reference=direct.table)
    if args.corrupt is not None:
        payload = corrupt_snapshot(payload, args.corrupt)
    if args.out is not None:
        dump_snapshot(payload, args.out)
        print(f"snapshot written to {args.out}")
    snapshot = load_snapshot(payload)
    print(
        f"scenario: shadow={len(snapshot.shadow)} main={len(snapshot.main)} "
        f"reference={len(snapshot.reference or [])} rules"
        + (f" (corrupted: {args.corrupt})" if args.corrupt else "")
    )
    violations = verify_partition(
        snapshot.shadow, snapshot.main, reference=snapshot.reference
    )
    return _report(violations)


if __name__ == "__main__":
    sys.exit(main())
