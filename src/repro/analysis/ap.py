"""Atomic-predicate verification engine over ternary matches.

The symbolic verifier (:mod:`repro.analysis.verifier`) decides equivalence
by region decomposition with the ternary subtract/intersect algebra — exact,
but quadratic-ish in rule count, so `semantic_diff` is intractable on
full-FIB snapshots.  This module re-expresses the same checks in the
atomic-predicate style of AP-Verifier / NetPlumber: partition the key space
once into *atoms* (the coarsest partition in which every rule's match is an
exact union of cells), label each rule with the set of atom ids it covers,
and decide overlap / containment / equivalence with integer-set operations.
Every finding still carries a concrete witness key — one representative per
atom — so the zero-false-positive contract of the symbolic engine holds.

Two universe backends:

* :class:`_IntervalUniverse` — when every match's care bits form a
  contiguous high-order run (IPv4 prefixes, any width), a match is the key
  interval ``[value, value + size)``.  Atom boundaries are the sorted
  distinct interval endpoints; a rule's atom set is a contiguous ``range``
  of atom ids found by bisection.  Construction is O(n log n) and a rule's
  label is O(log n), which is what makes 200k-rule semantic diffs cheap.
* :class:`_CubeUniverse` — arbitrary ternary matches.  Atoms are kept as
  lists of disjoint ternary cubes and refined match-by-match with the same
  intersect/subtract primitives the symbolic engine uses.  Exponential in
  the worst case (capped), but exact, and cheap at the small widths where
  general ternary rules actually appear in this repo.

The incremental half (:class:`AtomIndex`, :class:`IncrementalPairChecker`)
maintains the atom boundary multiset and the cross-table inversion /
duplicate findings under single-rule insert/delete/modify, so an online
check costs O(log n + candidates) per table event instead of re-verifying
the whole pair.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

try:  # numpy is a baked-in dependency, but keep the engine importable without it
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on stripped installs
    np = None

from ..tcam.prefix import MAX_PREFIX_LEN
from ..tcam.rule import Rule
from ..tcam.ternary import TernaryMatch
from ..tcam.trie import PrefixRuleIndex
from .verifier import _rules_of, find_duplicate_entries, lookup_order
from .violations import (
    DUPLICATE_ENTRY,
    EQUIVALENCE_MISMATCH,
    PRIORITY_INVERSION,
    SHADOWED_RULE,
    UNREACHABLE_RULE,
    Violation,
)

#: A rule's atom label: a contiguous ``range`` (interval backend) or a
#: sorted tuple of atom ids (cube backend).
AtomSet = Union[range, Tuple[int, ...]]

#: Refinement guard for the cube backend: a pathological general-ternary
#: table at a large width could split the space into exponentially many
#: atoms; fail loudly instead of hanging.
CUBE_ATOM_LIMIT = 1 << 16

#: Below this many candidate pairs the plain Python inversion scan beats
#: building numpy arrays.
_VECTORIZE_THRESHOLD = 4096


def _contiguous_interval(match: TernaryMatch) -> Optional[Tuple[int, int]]:
    """``[lo, hi)`` key interval when care bits are a high-order run, else None."""
    care = match.care_bits
    high_mask = (((1 << care) - 1) << (match.width - care)) if care else 0
    if match.mask != high_mask:
        return None
    return match.value, match.value + match.size


# ---------------------------------------------------------------------------
# Atom universes
# ---------------------------------------------------------------------------
class _IntervalUniverse:
    """Atoms as half-open key intervals between sorted boundary points.

    Only valid for matches whose endpoints were registered at construction
    (``atoms_of`` bisects on exact boundaries); :func:`build_universe`
    guarantees that.
    """

    backend = "interval"

    def __init__(self, bounds: List[int], width: int) -> None:
        self._bounds = bounds
        self.width = width

    @property
    def atom_count(self) -> int:
        return len(self._bounds) - 1

    def atoms_of(self, match: TernaryMatch) -> range:
        lo, hi = _contiguous_interval(match)
        return range(bisect_left(self._bounds, lo), bisect_left(self._bounds, hi))

    def witness(self, atom_id: int) -> int:
        """A concrete key inside the atom (its lowest key)."""
        return self._bounds[atom_id]

    def atom_of_key(self, key: int) -> int:
        return bisect_right(self._bounds, key) - 1


class _CubeUniverse:
    """Atoms as lists of disjoint ternary cubes, refined match-by-match."""

    backend = "cube"

    def __init__(self, matches: Sequence[TernaryMatch], width: int) -> None:
        self.width = width
        atoms: List[List[TernaryMatch]] = [[TernaryMatch.wildcard(width)]]
        for match in matches:
            refined: List[List[TernaryMatch]] = []
            for cubes in atoms:
                inside: List[TernaryMatch] = []
                outside: List[TernaryMatch] = []
                for cube in cubes:
                    piece = cube.intersect(match)
                    if piece is not None:
                        inside.append(piece)
                    outside.extend(cube.subtract(match))
                if inside and outside:
                    refined.append(inside)
                    refined.append(outside)
                else:
                    refined.append(cubes)
            atoms = refined
            if len(atoms) > CUBE_ATOM_LIMIT:
                raise ValueError(
                    f"atom refinement exceeded {CUBE_ATOM_LIMIT} cells; "
                    f"general ternary tables this adversarial need a BDD backend"
                )
        self._atoms = atoms
        # Each atom is wholly inside or wholly outside every constructor
        # match, so one key per atom decides membership for all of them.
        self._witnesses = [cubes[0].value for cubes in atoms]

    @property
    def atom_count(self) -> int:
        return len(self._atoms)

    def atoms_of(self, match: TernaryMatch) -> Tuple[int, ...]:
        return tuple(
            atom_id
            for atom_id, key in enumerate(self._witnesses)
            if match.matches(key)
        )

    def witness(self, atom_id: int) -> int:
        return self._witnesses[atom_id]

    def atom_of_key(self, key: int) -> int:
        for atom_id, cubes in enumerate(self._atoms):
            if any(cube.matches(key) for cube in cubes):
                return atom_id
        raise ValueError(f"key {key:#x} outside the {self.width}-bit universe")


def build_universe(
    matches: Iterable[TernaryMatch], width: Optional[int] = None
):
    """Build the atom universe for a set of matches.

    Picks the interval backend when every match is prefix-shaped (at any
    key width), the cube backend otherwise.  Raises ``ValueError`` on mixed
    widths — a pair of tables over different key widths is already invalid.
    """
    distinct: List[TernaryMatch] = []
    seen = set()
    for match in matches:
        if width is None:
            width = match.width
        elif match.width != width:
            raise ValueError(f"width mismatch: {width} vs {match.width}")
        key = (match.value, match.mask)
        if key not in seen:
            seen.add(key)
            distinct.append(match)
    if width is None:
        width = MAX_PREFIX_LEN

    intervals = [_contiguous_interval(match) for match in distinct]
    if all(interval is not None for interval in intervals):
        bounds = {0, 1 << width}
        for lo, hi in intervals:
            bounds.add(lo)
            bounds.add(hi)
        return _IntervalUniverse(sorted(bounds), width)
    return _CubeUniverse(distinct, width)


# ---------------------------------------------------------------------------
# Atom-set algebra
# ---------------------------------------------------------------------------
def atoms_intersect(a: AtomSet, b: AtomSet) -> bool:
    """True when the two labels share an atom (i.e. the matches overlap)."""
    if isinstance(a, range) and isinstance(b, range):
        return max(a.start, b.start) < min(a.stop, b.stop)
    return first_common_atom(a, b) is not None


def first_common_atom(a: AtomSet, b: AtomSet) -> Optional[int]:
    """The smallest shared atom id, or None when disjoint."""
    if isinstance(a, range) and isinstance(b, range):
        lo = max(a.start, b.start)
        return lo if lo < min(a.stop, b.stop) else None
    i = j = 0
    while i < len(a) and j < len(b):
        if a[i] == b[j]:
            return a[i]
        if a[i] < b[j]:
            i += 1
        else:
            j += 1
    return None


def atoms_subset(inner: AtomSet, outer: AtomSet) -> bool:
    """True when every atom of ``inner`` is in ``outer`` (containment)."""
    if isinstance(inner, range) and isinstance(outer, range):
        return len(inner) == 0 or (
            inner.start >= outer.start and inner.stop <= outer.stop
        )
    return set(outer).issuperset(inner)


def first_match_winners(rules: Sequence[Rule], universe):
    """Paint the universe in first-match order.

    Returns ``(winner, claimed)`` where ``winner[atom_id]`` is the index of
    the first rule covering that atom (None for uncovered atoms) and
    ``claimed[index]`` is True when the rule won at least one atom — i.e.
    the rule is reachable.  The interval path uses skip pointers with path
    compression, so painting is near-linear in atoms regardless of how many
    rules pile onto the same region.
    """
    winner: List[Optional[int]] = [None] * universe.atom_count
    claimed = [False] * len(rules)
    if universe.backend == "interval":
        nxt = list(range(universe.atom_count + 1))

        def find(atom: int) -> int:
            path = []
            while nxt[atom] != atom:
                path.append(atom)
                atom = nxt[atom]
            for passed in path:
                nxt[passed] = atom
            return atom

        for index, rule in enumerate(rules):
            atoms = universe.atoms_of(rule.match)
            atom = find(atoms.start)
            while atom < atoms.stop:
                winner[atom] = index
                claimed[index] = True
                nxt[atom] = atom + 1
                atom = find(atom + 1)
    else:
        for index, rule in enumerate(rules):
            for atom in universe.atoms_of(rule.match):
                if winner[atom] is None:
                    winner[atom] = index
                    claimed[index] = True
    return winner, claimed


# ---------------------------------------------------------------------------
# AP re-expressions of the symbolic checkers
# ---------------------------------------------------------------------------
def _inversion_violation(main_rule: Rule, shadow_rule: Rule) -> Violation:
    # Byte-identical to the symbolic engine's report for the same pair.
    overlap = main_rule.match.intersect(shadow_rule.match)
    return Violation(
        kind=PRIORITY_INVERSION,
        message=(
            f"main rule #{main_rule.rule_id} "
            f"(prio {main_rule.priority}) is masked by shadow "
            f"rule #{shadow_rule.rule_id} "
            f"(prio {shadow_rule.priority}) over {overlap}"
        ),
        rule_ids=(main_rule.rule_id, shadow_rule.rule_id),
        table="shadow+main",
        witness=overlap.value if overlap is not None else None,
    )


def _inversion_pairs(
    shadow_rules: Sequence[Rule], main_rules: Sequence[Rule], universe
) -> List[Tuple[int, int]]:
    """(main_index, shadow_index) pairs violating the Algorithm 1 invariant."""
    if not shadow_rules or not main_rules:
        return []
    if (
        universe.backend == "interval"
        and np is not None
        and len(shadow_rules) * len(main_rules) >= _VECTORIZE_THRESHOLD
    ):
        count = len(main_rules)
        main_lo = np.fromiter(
            (rule.match.value for rule in main_rules), dtype=np.int64, count=count
        )
        main_hi = np.fromiter(
            (rule.match.value + rule.match.size for rule in main_rules),
            dtype=np.int64,
            count=count,
        )
        main_prio = np.fromiter(
            (rule.priority for rule in main_rules), dtype=np.int64, count=count
        )
        pairs: List[Tuple[int, int]] = []
        for shadow_index, shadow_rule in enumerate(shadow_rules):
            lo, hi = _contiguous_interval(shadow_rule.match)
            hits = (main_prio > shadow_rule.priority) & (main_lo < hi) & (lo < main_hi)
            pairs.extend(
                (int(main_index), shadow_index) for main_index in np.nonzero(hits)[0]
            )
        pairs.sort()
        return pairs
    shadow_labels = [universe.atoms_of(rule.match) for rule in shadow_rules]
    main_labels = [universe.atoms_of(rule.match) for rule in main_rules]
    return [
        (main_index, shadow_index)
        for main_index, main_rule in enumerate(main_rules)
        for shadow_index, shadow_rule in enumerate(shadow_rules)
        if main_rule.priority > shadow_rule.priority
        and atoms_intersect(main_labels[main_index], shadow_labels[shadow_index])
    ]


def ap_priority_inversions(shadow, main, universe) -> List[Violation]:
    """AP equivalent of :func:`~repro.analysis.verifier.find_priority_inversions`.

    Overlap between two prefix-shaped rules is exactly atom-range
    intersection, so the check vectorizes over the main table; reports are
    emitted in the symbolic engine's (main order, shadow order) so the two
    engines produce identical violation lists on identical inputs.
    """
    shadow_rules = _rules_of(shadow)
    main_rules = _rules_of(main)
    return [
        _inversion_violation(main_rules[main_index], shadow_rules[shadow_index])
        for main_index, shadow_index in _inversion_pairs(
            shadow_rules, main_rules, universe
        )
    ]


def ap_semantic_diff(
    system,
    reference,
    universe,
    system_name: str = "shadow+main",
    reference_name: str = "reference",
) -> List[Violation]:
    """AP equivalent of :func:`~repro.analysis.verifier.semantic_diff`.

    Paints both rule lists over one shared universe and compares the
    winners atom by atom: a differing action, or a hit on one side with a
    miss on the other, is a mismatch witnessed by the atom's lowest key.
    One report per (system rule, reference rule) pair, like the symbolic
    walk, so large disagreement regions don't flood the output.
    """
    system_rules = _rules_of(system)
    reference_rules = _rules_of(reference)
    system_winner, _ = first_match_winners(system_rules, universe)
    reference_winner, _ = first_match_winners(reference_rules, universe)
    violations: List[Violation] = []
    reported: set = set()
    for atom in range(universe.atom_count):
        system_index = system_winner[atom]
        reference_index = reference_winner[atom]
        if system_index is None and reference_index is None:
            continue
        witness = universe.witness(atom)
        if system_index is not None:
            rule = system_rules[system_index]
            other = (
                None if reference_index is None else reference_rules[reference_index]
            )
            if other is not None and other.action == rule.action:
                continue
            pair = (rule.rule_id, None if other is None else other.rule_id)
            if pair in reported:
                continue
            reported.add(pair)
            if other is None:
                detail = f"{reference_name} matches nothing there"
            else:
                detail = (
                    f"{reference_name} answers with rule #{other.rule_id} "
                    f"({other.action})"
                )
            violations.append(
                Violation(
                    kind=EQUIVALENCE_MISMATCH,
                    message=(
                        f"key {witness:#x}: {system_name} answers with rule "
                        f"#{rule.rule_id} ({rule.action}) but {detail}"
                    ),
                    rule_ids=(rule.rule_id,)
                    + (() if other is None else (other.rule_id,)),
                    table=f"{system_name} vs {reference_name}",
                    witness=witness,
                )
            )
        else:
            other = reference_rules[reference_index]
            pair = (None, other.rule_id)
            if pair in reported:
                continue
            reported.add(pair)
            violations.append(
                Violation(
                    kind=EQUIVALENCE_MISMATCH,
                    message=(
                        f"key {witness:#x}: {reference_name} answers "
                        f"with rule #{other.rule_id} ({other.action}) but "
                        f"{system_name} matches nothing there"
                    ),
                    rule_ids=(other.rule_id,),
                    table=f"{system_name} vs {reference_name}",
                    witness=witness,
                )
            )
    return violations


def ap_unreachable_rules(table, universe, name: str = "table") -> List[Violation]:
    """AP equivalent of :func:`~repro.analysis.verifier.find_unreachable_rules`.

    A rule is unreachable exactly when the first-match painting leaves it
    with zero atoms — one linear paint replaces the symbolic engine's
    quadratic subtract cascade.
    """
    rules = _rules_of(table)
    _, claimed = first_match_winners(rules, universe)
    return [
        Violation(
            kind=UNREACHABLE_RULE,
            message=(
                f"rule #{rule.rule_id} ({rule.match}, prio "
                f"{rule.priority}) is wholly covered by the "
                f"{index} entries above it and can never match"
            ),
            rule_ids=(rule.rule_id,),
            table=name,
        )
        for index, rule in enumerate(rules)
        if not claimed[index]
    ]


def ap_shadowed_rules(table, universe, name: str = "table") -> List[Violation]:
    """AP equivalent of :func:`~repro.analysis.verifier.find_shadowed_rules`.

    Uses a prefix-trie overlap index over the already-seen rules, so only
    genuine overlap candidates are examined; partial occlusion is
    "labels intersect but mine is not a subset of the prior's".
    """
    rules = _rules_of(table)
    labels = [universe.atoms_of(rule.match) for rule in rules]
    violations: List[Violation] = []
    position_of: Dict[int, int] = {}
    earlier = PrefixRuleIndex()
    for position, rule in enumerate(rules):
        best: Optional[int] = None
        for candidate in earlier.overlapping(rule):
            candidate_position = position_of[candidate.rule_id]
            if candidate.action != rule.action and not atoms_subset(
                labels[position], labels[candidate_position]
            ):
                if best is None or candidate_position < best:
                    best = candidate_position
        if best is not None:
            prior = rules[best]
            violations.append(
                Violation(
                    kind=SHADOWED_RULE,
                    message=(
                        f"rule #{rule.rule_id} loses part of {rule.match} "
                        f"to rule #{prior.rule_id} ({prior.action} vs "
                        f"{rule.action})"
                    ),
                    rule_ids=(rule.rule_id, prior.rule_id),
                    table=name,
                )
            )
        try:
            earlier.add(rule)
            position_of.setdefault(rule.rule_id, position)
        except ValueError:
            pass  # duplicate id in the same table: reported elsewhere
    return violations


def ap_verify_partition(
    shadow,
    main,
    reference=None,
    include_warnings: bool = False,
) -> List[Violation]:
    """Atomic-predicate drop-in for :func:`~repro.analysis.verifier.verify_partition`.

    Builds one universe over shadow + main (+ reference) and runs every
    requested check as atom-set operations.  Same violation kinds, rule
    ids, and sort order as the symbolic engine; only witness keys may name
    a different (equally valid) point of the same disagreement region.
    """
    shadow_rules = _rules_of(shadow)
    main_rules = _rules_of(main)
    reference_rules = _rules_of(reference) if reference is not None else []
    universe = build_universe(
        rule.match for rule in shadow_rules + main_rules + reference_rules
    )
    violations = ap_priority_inversions(shadow_rules, main_rules, universe)
    violations += find_duplicate_entries(shadow_rules, main_rules)
    if reference is not None:
        violations += ap_semantic_diff(
            lookup_order(shadow_rules, main_rules), reference_rules, universe
        )
    if include_warnings:
        violations += ap_unreachable_rules(shadow_rules, universe, "shadow")
        violations += ap_unreachable_rules(main_rules, universe, "main")
        violations += ap_shadowed_rules(main_rules, universe, "main")
    return sorted(violations, key=lambda v: (v.severity != "error", v.kind))


# ---------------------------------------------------------------------------
# Incremental atom-set maintenance
# ---------------------------------------------------------------------------
class AtomIndex:
    """The atom boundary multiset, maintained under match insert/delete.

    Boundaries are reference-counted so deleting one of two rules with the
    same prefix does not tear the atom wall the survivor still needs.  Only
    interval-representable matches contribute boundaries; general ternary
    matches are counted but force :meth:`universe` to decline (callers fall
    back to a full rebuild, which is the honest cost in that regime).
    """

    def __init__(self, width: int = MAX_PREFIX_LEN) -> None:
        self.width = width
        self._limit = 1 << width
        self._counts: Dict[int, int] = {}
        self._bounds: List[int] = [0, self._limit]
        self.non_interval = 0

    @property
    def atom_count(self) -> int:
        return len(self._bounds) - 1

    def add_match(self, match: TernaryMatch) -> None:
        interval = _contiguous_interval(match)
        if interval is None:
            self.non_interval += 1
            return
        for boundary in interval:
            count = self._counts.get(boundary, 0)
            if count == 0 and 0 < boundary < self._limit:
                insort(self._bounds, boundary)
            self._counts[boundary] = count + 1

    def remove_match(self, match: TernaryMatch) -> None:
        interval = _contiguous_interval(match)
        if interval is None:
            self.non_interval -= 1
            return
        for boundary in interval:
            count = self._counts.get(boundary, 0)
            if count <= 1:
                self._counts.pop(boundary, None)
                if 0 < boundary < self._limit:
                    del self._bounds[bisect_left(self._bounds, boundary)]
            else:
                self._counts[boundary] = count - 1

    def atom_range(self, match: TernaryMatch) -> Optional[range]:
        """The current atom-id range of a registered match (None if not
        interval-representable)."""
        interval = _contiguous_interval(match)
        if interval is None:
            return None
        lo, hi = interval
        return range(bisect_left(self._bounds, lo), bisect_left(self._bounds, hi))

    def universe(self) -> Optional[_IntervalUniverse]:
        """An interval universe snapshot of the current boundaries, or None
        when non-interval matches are resident."""
        if self.non_interval:
            return None
        return _IntervalUniverse(list(self._bounds), self.width)


class IncrementalPairChecker:
    """Algorithm 1 invariant checking at O(delta) per table event.

    Mirrors a shadow/main pair rule-by-rule: each insert updates the atom
    boundary multiset, the per-table prefix overlap index, and the live
    inversion/duplicate findings by querying only the *opposite* table's
    overlap candidates.  :meth:`violations` then costs O(current findings),
    not O(table size) — the delta-proportional path the online verifier
    rides.  Findings match :func:`~repro.analysis.verifier.verify_partition`
    (errors only; occlusion warnings need global order and stay offline).
    """

    TABLES = ("shadow", "main")

    def __init__(self, width: int = MAX_PREFIX_LEN) -> None:
        self.atoms = AtomIndex(width)
        self.events = 0
        self._rules: Dict[str, Dict[int, List[Rule]]] = {
            name: {} for name in self.TABLES
        }
        self._indexes: Dict[str, PrefixRuleIndex] = {
            name: PrefixRuleIndex() for name in self.TABLES
        }
        # Live inversion findings keyed (main rule id, shadow rule id).
        self._inversions: Dict[Tuple[int, int], Violation] = {}

    # -- mutation ------------------------------------------------------
    def insert(self, table: str, rule: Rule) -> None:
        self.events += 1
        copies = self._rules[table].setdefault(rule.rule_id, [])
        copies.append(rule)
        self.atoms.add_match(rule.match)
        if len(copies) == 1:
            self._indexes[table].add(rule)
        self._scan_against_other(table, rule)

    def remove(self, table: str, rule: Rule) -> None:
        self.events += 1
        copies = self._rules[table].get(rule.rule_id)
        if not copies:
            return  # removal of a rule we never saw: nothing to retract
        for position, copy in enumerate(copies):
            if copy == rule:
                removed = copies.pop(position)
                break
        else:
            removed = copies.pop()
        self.atoms.remove_match(removed.match)
        side = 0 if table == "main" else 1
        for key in [k for k in self._inversions if k[side] == rule.rule_id]:
            del self._inversions[key]
        self._indexes[table].discard(rule.rule_id)
        if copies:
            # A duplicate with the same id survives: re-index one copy and
            # re-derive the pairs the id still participates in.
            self._indexes[table].add(copies[0])
            self._scan_against_other(table, copies[0])
        else:
            del self._rules[table][rule.rule_id]

    def modify(self, table: str, old: Rule, new: Rule) -> None:
        self.remove(table, old)
        self.insert(table, new)

    def _scan_against_other(self, table: str, rule: Rule) -> None:
        other = "shadow" if table == "main" else "main"
        for candidate in self._indexes[other].overlapping(rule):
            main_rule, shadow_rule = (
                (rule, candidate) if table == "main" else (candidate, rule)
            )
            if main_rule.priority > shadow_rule.priority:
                key = (main_rule.rule_id, shadow_rule.rule_id)
                if key not in self._inversions:
                    self._inversions[key] = _inversion_violation(
                        main_rule, shadow_rule
                    )

    # -- results -------------------------------------------------------
    def _duplicate_violations(self) -> List[Violation]:
        violations: List[Violation] = []
        seen: Dict[int, str] = {}
        for table_name in self.TABLES:
            for rule_id in sorted(self._rules[table_name]):
                occurrences = len(self._rules[table_name][rule_id])
                if rule_id not in seen:
                    seen[rule_id] = table_name
                    occurrences -= 1
                for _ in range(occurrences):
                    violations.append(
                        Violation(
                            kind=DUPLICATE_ENTRY,
                            message=(
                                f"rule #{rule_id} is installed in "
                                f"{seen[rule_id]} and again in {table_name}"
                            ),
                            rule_ids=(rule_id,),
                            table=f"{seen[rule_id]}+{table_name}",
                        )
                    )
        return violations

    def violations(self) -> List[Violation]:
        """Current findings, same order contract as ``verify_partition``."""
        found = list(self._inversions.values()) + self._duplicate_violations()
        return sorted(
            found, key=lambda v: (v.severity != "error", v.kind, v.rule_ids)
        )

    @property
    def rule_count(self) -> int:
        return sum(
            len(copies)
            for table in self._rules.values()
            for copies in table.values()
        )


class _TableSync:
    """TcamTable listener feeding one table's events into a checker."""

    def __init__(self, checker: IncrementalPairChecker, table: str) -> None:
        self._checker = checker
        self._table = table

    def rule_installed(self, rule: Rule) -> None:
        self._checker.insert(self._table, rule)

    def rule_removed(self, rule: Rule) -> None:
        self._checker.remove(self._table, rule)

    def rule_modified(self, old: Rule, new: Rule) -> None:
        self._checker.modify(self._table, old, new)


def attach_incremental_checker(installer) -> Optional[IncrementalPairChecker]:
    """Wire an :class:`IncrementalPairChecker` onto a live installer.

    Needs ``installer.shadow`` / ``installer.main`` objects exposing
    ``rules()`` and ``add_listener`` (HermesInstaller does, through its
    FaultyTable wrappers too — a *silently* failed write emits no listener
    event, so the mirror tracks what is physically resident).  Returns None
    for installers without that seam (monolithic schemes, bare snapshot
    objects); callers fall back to full verification.
    """
    tables = []
    for name in IncrementalPairChecker.TABLES:
        table = getattr(installer, name, None)
        if (
            table is None
            or not callable(getattr(table, "rules", None))
            or not callable(getattr(table, "add_listener", None))
        ):
            return None
        tables.append((name, table))
    checker = IncrementalPairChecker()
    for name, table in tables:
        for rule in table.rules():
            checker.insert(name, rule)
        table.add_listener(_TableSync(checker, name))
    return checker


# ---------------------------------------------------------------------------
# Engine agreement
# ---------------------------------------------------------------------------
def violation_fingerprint(violations: Iterable[Violation]) -> List[Tuple]:
    """Engine-independent shape of a violation list.

    The two engines agree on kinds, implicated rule ids, and witness
    *presence*; the concrete witness key may legitimately differ (any point
    of the disagreement region is a valid witness).
    """
    return sorted(
        (v.kind, tuple(sorted(v.rule_ids)), v.witness is not None)
        for v in violations
    )


def engines_agree(
    ap_violations: Iterable[Violation], symbolic_violations: Iterable[Violation]
) -> bool:
    """True when two engines' findings match by fingerprint — same kinds,
    same implicated rule ids, same witness presence (witness *keys* may
    differ: any key in the disagreeing atom is a valid witness)."""
    return violation_fingerprint(ap_violations) == violation_fingerprint(
        symbolic_violations
    )
