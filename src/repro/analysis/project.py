"""Project-wide schedule-order analysis: the static side of SimRace.

The dynamic sanitizer (:mod:`repro.analysis.races`) finds schedule-order
races that a particular run *exercises*; this pass finds the hazards that
make such races possible, without running anything.  It is a whole-project
analysis — single-file linting cannot see that two ``schedule()`` calls in
different modules land events at the same computed instant, or that a
handler reached from a dispatched event mutates state another handler
also touches.

Rules
-----
``shared-state-mutation``
    A function reachable from a scheduled-event entry point mutates
    cross-agent or module-level state directly — a ``global`` rebind, a
    store into module-level state, or an attribute/subscript store rooted
    at an object *passed in* (not ``self``) — without going through the
    kernel seam.  Two handlers doing this at one instant is exactly the
    schedule-order race the sanitizer reports; mutations belong on the
    owning object (a method call) or behind a scheduled event.

``ambiguous-tier``
    Two or more ``schedule()`` call sites compute the *same* timestamp
    expression with no explicit ``tier=``: events from those sites can
    collide at one instant, and their order then falls to the ``seq``
    tie-break — i.e. to the incidental order of the calls.  If the
    collision is intended, say so with ``tier=``; if the ordering is
    pinned by tests, suppress with a justified pragma.

How entry points are found
--------------------------
The pass collects every event kind string passed to a ``schedule()`` /
``_schedule()`` call, finds *dispatchers* — functions that compare a
variable against those kind strings — and treats every function a
dispatcher calls as a scheduled-event entry point.  Reachability then
follows a name-based call graph (a call to ``foo`` reaches every
``foo`` definition in the project — deliberately over-approximate).

Both rules suppress with the ordinary ``# det: allow(rule) -- why``
pragma on (or above) the flagged line.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .lint import LintFinding, iter_python_files
from .pragmas import DET, PragmaIndex

SHARED_STATE_MUTATION = "shared-state-mutation"
AMBIGUOUS_TIER = "ambiguous-tier"

PROJECT_RULES = (SHARED_STATE_MUTATION, AMBIGUOUS_TIER)

_SCHEDULE_NAMES = {"schedule", "_schedule"}


@dataclass
class _ScheduleSite:
    """One ``schedule()`` / ``_schedule()`` call site."""

    path: str
    line: int
    col: int
    text: str
    time_shape: str  # normalized ast.dump of the time argument
    computed: bool  # the time arg is an expression, not a bare name/const
    has_tier: bool
    kind: Optional[str]  # literal event-kind string when present


@dataclass
class _FunctionInfo:
    """One function/method definition and what it does."""

    qualname: str
    name: str
    path: str
    line: int
    params: Set[str] = field(default_factory=set)
    calls: Set[str] = field(default_factory=set)  # bare callee names
    compared_strings: Set[str] = field(default_factory=set)
    mutations: List[Tuple[int, int, str, str]] = field(default_factory=list)
    # (line, col, description, source text)


def _root_name(node: ast.AST) -> str:
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else ""


def _callee_name(func: ast.AST) -> str:
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _is_trivial_time(node: ast.AST) -> bool:
    """Bare names, constants, and plain attribute reads are not 'computed'."""
    return isinstance(node, (ast.Name, ast.Constant, ast.Attribute))


class _ModuleScanner(ast.NodeVisitor):
    """Single pass over one module: functions, schedule sites, globals."""

    def __init__(self, path: str, lines: Sequence[str]) -> None:
        self.path = path
        self.lines = lines
        self.functions: List[_FunctionInfo] = []
        self.schedule_sites: List[_ScheduleSite] = []
        self.module_names: Set[str] = set()
        self._stack: List[_FunctionInfo] = []
        self._class_stack: List[str] = []

    def _source(self, line: int) -> str:
        return self.lines[line - 1].strip() if 0 < line <= len(self.lines) else ""

    # -- definitions --------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def _visit_function(self, node) -> None:
        prefix = ".".join(self._class_stack)
        qualname = f"{prefix}.{node.name}" if prefix else node.name
        info = _FunctionInfo(
            qualname=f"{self.path}::{qualname}",
            name=node.name,
            path=self.path,
            line=node.lineno,
        )
        args = node.args
        for arg in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ):
            info.params.add(arg.arg)
        if args.vararg is not None:
            info.params.add(args.vararg.arg)
        if args.kwarg is not None:
            info.params.add(args.kwarg.arg)
        self.functions.append(info)
        self._stack.append(info)
        self.generic_visit(node)
        self._stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    # -- module-level state -------------------------------------------
    def _record_module_name(self, target: ast.AST) -> None:
        if self._class_stack:
            return  # class attributes are per-instance state, not module state
        if isinstance(target, ast.Name):
            self.module_names.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._record_module_name(element)

    # -- statements ----------------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        if not self._stack:
            for target in node.targets:
                self._record_module_name(target)
        else:
            for target in node.targets:
                self._check_mutation(target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if not self._stack:
            self._record_module_name(node.target)
        elif node.value is not None:
            self._check_mutation(node.target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if not self._stack:
            self._record_module_name(node.target)
        else:
            self._check_mutation(node.target)
        self.generic_visit(node)

    def visit_Global(self, node: ast.Global) -> None:
        if self._stack:
            current = self._stack[-1]
            for name in node.names:
                current.mutations.append(
                    (
                        node.lineno,
                        node.col_offset,
                        f"rebinds module-level '{name}' via 'global'",
                        self._source(node.lineno),
                    )
                )
        self.generic_visit(node)

    def _check_mutation(self, target: ast.AST) -> None:
        """Record stores into non-local roots from inside a function.

        Only the outermost store target is examined — names read inside a
        subscript index (``self._flows[spec.flow_id] = ...`` reads
        ``spec``) are not mutated.
        """
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_mutation(element)
            return
        if isinstance(target, ast.Starred):
            self._check_mutation(target.value)
            return
        if not isinstance(target, (ast.Attribute, ast.Subscript)):
            return
        current = self._stack[-1]
        root = _root_name(target)
        if not root or root in ("self", "cls"):
            return
        store = "attribute" if isinstance(target, ast.Attribute) else "entry"
        if root in current.params:
            current.mutations.append(
                (
                    target.lineno,
                    target.col_offset,
                    f"writes an {store} of parameter '{root}' — state "
                    "owned by another object",
                    self._source(target.lineno),
                )
            )
        elif root in self.module_names:
            current.mutations.append(
                (
                    target.lineno,
                    target.col_offset,
                    f"writes an {store} of module-level '{root}'",
                    self._source(target.lineno),
                )
            )

    # -- expressions ---------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        name = _callee_name(node.func)
        if self._stack and name:
            self._stack[-1].calls.add(name)
        if name in _SCHEDULE_NAMES:
            self._record_schedule(node)
        self.generic_visit(node)

    def _record_schedule(self, node: ast.Call) -> None:
        time_arg: Optional[ast.AST] = node.args[0] if node.args else None
        kind_arg: Optional[ast.AST] = node.args[1] if len(node.args) > 1 else None
        has_tier = False
        for keyword in node.keywords:
            if keyword.arg == "time":
                time_arg = keyword.value
            elif keyword.arg == "kind":
                kind_arg = keyword.value
            elif keyword.arg == "tier":
                has_tier = True
        if time_arg is None:
            return
        kind = (
            kind_arg.value
            if isinstance(kind_arg, ast.Constant)
            and isinstance(kind_arg.value, str)
            else None
        )
        self.schedule_sites.append(
            _ScheduleSite(
                path=self.path,
                line=node.lineno,
                col=node.col_offset,
                text=self._source(node.lineno),
                time_shape=ast.dump(time_arg),
                computed=not _is_trivial_time(time_arg),
                has_tier=has_tier,
                kind=kind,
            )
        )

    def visit_Compare(self, node: ast.Compare) -> None:
        if self._stack:
            current = self._stack[-1]
            for operand in [node.left] + list(node.comparators):
                if isinstance(operand, ast.Constant) and isinstance(
                    operand.value, str
                ):
                    current.compared_strings.add(operand.value)
        self.generic_visit(node)


def _scan_modules(paths: Iterable[str]) -> List[_ModuleScanner]:
    scanners: List[_ModuleScanner] = []
    for path in iter_python_files(paths):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            tree = ast.parse(source, filename=path)
        except (OSError, SyntaxError):
            continue
        scanner = _ModuleScanner(path, source.splitlines())
        scanner.visit(tree)
        scanners.append(scanner)
    return scanners


def _reachable_handlers(
    scanners: Sequence[_ModuleScanner],
) -> Dict[str, _FunctionInfo]:
    """Functions reachable from scheduled-event dispatch, by qualname."""
    kinds: Set[str] = set()
    for scanner in scanners:
        for site in scanner.schedule_sites:
            if site.kind is not None:
                kinds.add(site.kind)
    if not kinds:
        return {}
    by_name: Dict[str, List[_FunctionInfo]] = {}
    for scanner in scanners:
        for info in scanner.functions:
            by_name.setdefault(info.name, []).append(info)
    dispatchers = [
        info
        for scanner in scanners
        for info in scanner.functions
        if info.compared_strings & kinds
    ]
    # Entry points: everything a dispatcher calls (the handlers), plus the
    # dispatcher itself (its own body runs under the dispatched event too).
    frontier: List[_FunctionInfo] = list(dispatchers)
    reachable: Dict[str, _FunctionInfo] = {}
    while frontier:
        info = frontier.pop()
        if info.qualname in reachable:
            continue
        reachable[info.qualname] = info
        for callee in info.calls:
            frontier.extend(by_name.get(callee, ()))
    return reachable


def _mutation_findings(
    scanners: Sequence[_ModuleScanner],
) -> List[LintFinding]:
    reachable = _reachable_handlers(scanners)
    findings: List[LintFinding] = []
    for info in reachable.values():
        for line, col, description, text in info.mutations:
            findings.append(
                LintFinding(
                    rule=SHARED_STATE_MUTATION,
                    path=info.path,
                    line=line,
                    col=col,
                    message=(
                        f"'{info.name}' is reachable from scheduled-event "
                        f"dispatch and {description}; same-instant handlers "
                        "race on it — mutate through the owning object or "
                        "the kernel seam"
                    ),
                    text=text,
                )
            )
    return findings


def _tier_findings(scanners: Sequence[_ModuleScanner]) -> List[LintFinding]:
    by_shape: Dict[str, List[_ScheduleSite]] = {}
    for scanner in scanners:
        for site in scanner.schedule_sites:
            if site.computed:
                by_shape.setdefault(site.time_shape, []).append(site)
    findings: List[LintFinding] = []
    for shape in sorted(by_shape):
        sites = by_shape[shape]
        distinct = {(site.path, site.line) for site in sites}
        if len(distinct) < 2:
            continue
        peers = sorted(distinct)
        for site in sites:
            if site.has_tier:
                continue
            others = ", ".join(
                f"{path}:{line}"
                for path, line in peers
                if (path, line) != (site.path, site.line)
            )
            findings.append(
                LintFinding(
                    rule=AMBIGUOUS_TIER,
                    path=site.path,
                    line=site.line,
                    col=site.col,
                    message=(
                        "schedule() computes the same timestamp expression "
                        f"as {others} with no explicit tier=; same-instant "
                        "order falls to the seq tie-break — pass tier= or "
                        "justify with a pragma"
                    ),
                    text=site.text,
                )
            )
    return findings


def lint_project(paths: Iterable[str]) -> List[LintFinding]:
    """Run the project-wide pass over files/directories.

    Unlike :func:`repro.analysis.lint.lint_paths`, the unit of analysis is
    the whole path set at once: call graphs and timestamp-shape groups
    span files.  Findings honor per-line ``# det: allow(...)`` pragmas.
    """
    scanners = _scan_modules(paths)
    findings = _mutation_findings(scanners) + _tier_findings(scanners)
    pragma_index: Dict[str, PragmaIndex] = {
        scanner.path: PragmaIndex(DET, scanner.lines) for scanner in scanners
    }
    kept = [
        finding
        for finding in findings
        if not pragma_index[finding.path].allows(finding.line, finding.rule)
    ]
    return sorted(kept, key=lambda f: (f.path, f.line, f.col, f.rule))
