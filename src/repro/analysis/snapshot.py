"""Table snapshots: JSON-serializable captures for offline verification.

A snapshot freezes the physical contents of a shadow+main pair (plus an
optional reference monolithic table) at one instant, in physical order, so
the :mod:`repro.analysis.verifier` checks can run out-of-process — in CI,
against a file attached to a bug report, or long after the simulation that
produced it ended.  The format is deliberately dumb: a versioned dict of
rule lists, with matches rendered through the same strings
:meth:`TernaryMatch.from_string` parses, so snapshots stay greppable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..tcam.rule import Action, Rule
from ..tcam.ternary import TernaryMatch

FORMAT = "hermes-table-snapshot/1"


def rule_to_dict(rule: Rule) -> dict:
    """Serialize one rule (match as its canonical string form)."""
    return {
        "match": str(rule.match),
        "width": rule.match.width,
        "priority": rule.priority,
        "action": str(rule.action),
        "rule_id": rule.rule_id,
        "origin_id": rule.origin_id,
    }


def rule_from_dict(data: dict) -> Rule:
    """Rebuild a rule from :func:`rule_to_dict` output."""
    match = TernaryMatch.from_string(data["match"])
    if match.width != data.get("width", match.width):
        raise ValueError(
            f"match {data['match']!r} parsed to width {match.width}, "
            f"snapshot says {data['width']}"
        )
    action_text = data["action"]
    if action_text.startswith("output:"):
        action = Action.output(int(action_text.split(":", 1)[1]))
    elif action_text == "drop":
        action = Action.drop()
    elif action_text == "controller":
        action = Action.to_controller()
    else:
        raise ValueError(f"unknown action {action_text!r}")
    return Rule(
        match=match,
        priority=data["priority"],
        action=action,
        rule_id=data["rule_id"],
        origin_id=data.get("origin_id"),
    )


@dataclass
class TableSnapshot:
    """A deserialized snapshot: rule lists in physical (lookup) order."""

    tables: Dict[str, List[Rule]] = field(default_factory=dict)
    reference: Optional[List[Rule]] = None

    @property
    def shadow(self) -> List[Rule]:
        """The shadow slice (empty for monolithic snapshots)."""
        return self.tables.get("shadow", [])

    @property
    def main(self) -> List[Rule]:
        """The main slice, falling back to a monolithic table."""
        return self.tables.get("main", self.tables.get("monolithic", []))


def snapshot_tables(
    tables: Dict[str, Sequence[Rule]],
    reference: Optional[Sequence[Rule]] = None,
) -> dict:
    """Serialize named tables (and an optional reference) to a JSON dict."""

    def rules_of(source) -> List[dict]:
        getter = getattr(source, "rules", None)
        rules = getter() if callable(getter) else source
        return [rule_to_dict(rule) for rule in rules]

    payload: dict = {
        "format": FORMAT,
        "tables": {name: rules_of(source) for name, source in tables.items()},
    }
    if reference is not None:
        payload["reference"] = rules_of(reference)
    return payload


def snapshot_installer(installer, reference=None) -> dict:
    """Snapshot a :class:`RuleInstaller` via its ``tables()`` seam."""
    return snapshot_tables(installer.tables(), reference=reference)


def load_snapshot(data: dict) -> TableSnapshot:
    """Parse a snapshot dict back into rule lists.

    Raises:
        ValueError: on a missing/unknown format tag or malformed rules.
    """
    if data.get("format") != FORMAT:
        raise ValueError(
            f"not a table snapshot (format={data.get('format')!r}, "
            f"expected {FORMAT!r})"
        )
    tables = {
        name: [rule_from_dict(entry) for entry in rules]
        for name, rules in data.get("tables", {}).items()
    }
    reference = data.get("reference")
    if reference is not None:
        reference = [rule_from_dict(entry) for entry in reference]
    return TableSnapshot(tables=tables, reference=reference)


@dataclass(frozen=True)
class SnapshotDelta:
    """What changed between two captures of the *same* switch.

    Rule ids are the join key (they are stable across tables and over
    time); each id lands in exactly one bucket.  ``moved`` means the rule
    is byte-identical but lives in a different slice (a migration);
    ``modified`` means its match, priority, or action changed.
    """

    added: tuple = ()
    removed: tuple = ()
    moved: tuple = ()
    modified: tuple = ()

    @property
    def is_empty(self) -> bool:
        return not (self.added or self.removed or self.moved or self.modified)

    @property
    def changed_ids(self) -> frozenset:
        """Every rule id that differs between the captures."""
        return frozenset(self.added + self.removed + self.moved + self.modified)

    def to_dict(self) -> dict:
        return {
            "added": list(self.added),
            "removed": list(self.removed),
            "moved": list(self.moved),
            "modified": list(self.modified),
        }


def _index_by_id(snapshot: TableSnapshot) -> Dict[int, tuple]:
    index: Dict[int, tuple] = {}
    for name in ("shadow", "main"):
        for rule in getattr(snapshot, name):
            # First physical occurrence wins; duplicates are a verifier
            # finding, not a diffing concern.
            index.setdefault(rule.rule_id, (name, rule))
    return index


def diff_snapshots(older: TableSnapshot, newer: TableSnapshot) -> SnapshotDelta:
    """Diff two captures of the same switch taken at different instants."""
    before = _index_by_id(older)
    after = _index_by_id(newer)
    added = sorted(rule_id for rule_id in after if rule_id not in before)
    removed = sorted(rule_id for rule_id in before if rule_id not in after)
    moved: List[int] = []
    modified: List[int] = []
    for rule_id in sorted(before.keys() & after.keys()):
        old_table, old_rule = before[rule_id]
        new_table, new_rule = after[rule_id]
        if old_rule != new_rule:
            modified.append(rule_id)
        elif old_table != new_table:
            moved.append(rule_id)
    return SnapshotDelta(
        added=tuple(added),
        removed=tuple(removed),
        moved=tuple(moved),
        modified=tuple(modified),
    )


def dump_snapshot(payload: dict, path: str) -> None:
    """Write a snapshot dict to ``path`` as indented JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def read_snapshot(path: str) -> TableSnapshot:
    """Load and parse a snapshot file."""
    with open(path, "r", encoding="utf-8") as handle:
        return load_snapshot(json.load(handle))
