"""Table snapshots: JSON-serializable captures for offline verification.

A snapshot freezes the physical contents of a shadow+main pair (plus an
optional reference monolithic table) at one instant, in physical order, so
the :mod:`repro.analysis.verifier` checks can run out-of-process — in CI,
against a file attached to a bug report, or long after the simulation that
produced it ended.  The format is deliberately dumb: a versioned dict of
rule lists, with matches rendered through the same strings
:meth:`TernaryMatch.from_string` parses, so snapshots stay greppable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..tcam.rule import Action, Rule
from ..tcam.ternary import TernaryMatch

FORMAT = "hermes-table-snapshot/1"


def rule_to_dict(rule: Rule) -> dict:
    """Serialize one rule (match as its canonical string form)."""
    return {
        "match": str(rule.match),
        "width": rule.match.width,
        "priority": rule.priority,
        "action": str(rule.action),
        "rule_id": rule.rule_id,
        "origin_id": rule.origin_id,
    }


def rule_from_dict(data: dict) -> Rule:
    """Rebuild a rule from :func:`rule_to_dict` output."""
    match = TernaryMatch.from_string(data["match"])
    if match.width != data.get("width", match.width):
        raise ValueError(
            f"match {data['match']!r} parsed to width {match.width}, "
            f"snapshot says {data['width']}"
        )
    action_text = data["action"]
    if action_text.startswith("output:"):
        action = Action.output(int(action_text.split(":", 1)[1]))
    elif action_text == "drop":
        action = Action.drop()
    elif action_text == "controller":
        action = Action.to_controller()
    else:
        raise ValueError(f"unknown action {action_text!r}")
    return Rule(
        match=match,
        priority=data["priority"],
        action=action,
        rule_id=data["rule_id"],
        origin_id=data.get("origin_id"),
    )


@dataclass
class TableSnapshot:
    """A deserialized snapshot: rule lists in physical (lookup) order."""

    tables: Dict[str, List[Rule]] = field(default_factory=dict)
    reference: Optional[List[Rule]] = None

    @property
    def shadow(self) -> List[Rule]:
        """The shadow slice (empty for monolithic snapshots)."""
        return self.tables.get("shadow", [])

    @property
    def main(self) -> List[Rule]:
        """The main slice, falling back to a monolithic table."""
        return self.tables.get("main", self.tables.get("monolithic", []))


def snapshot_tables(
    tables: Dict[str, Sequence[Rule]],
    reference: Optional[Sequence[Rule]] = None,
) -> dict:
    """Serialize named tables (and an optional reference) to a JSON dict."""

    def rules_of(source) -> List[dict]:
        getter = getattr(source, "rules", None)
        rules = getter() if callable(getter) else source
        return [rule_to_dict(rule) for rule in rules]

    payload: dict = {
        "format": FORMAT,
        "tables": {name: rules_of(source) for name, source in tables.items()},
    }
    if reference is not None:
        payload["reference"] = rules_of(reference)
    return payload


def snapshot_installer(installer, reference=None) -> dict:
    """Snapshot a :class:`RuleInstaller` via its ``tables()`` seam."""
    return snapshot_tables(installer.tables(), reference=reference)


def load_snapshot(data: dict) -> TableSnapshot:
    """Parse a snapshot dict back into rule lists.

    Raises:
        ValueError: on a missing/unknown format tag or malformed rules.
    """
    if data.get("format") != FORMAT:
        raise ValueError(
            f"not a table snapshot (format={data.get('format')!r}, "
            f"expected {FORMAT!r})"
        )
    tables = {
        name: [rule_from_dict(entry) for entry in rules]
        for name, rules in data.get("tables", {}).items()
    }
    reference = data.get("reference")
    if reference is not None:
        reference = [rule_from_dict(entry) for entry in reference]
    return TableSnapshot(tables=tables, reference=reference)


def dump_snapshot(payload: dict, path: str) -> None:
    """Write a snapshot dict to ``path`` as indented JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def read_snapshot(path: str) -> TableSnapshot:
    """Load and parse a snapshot file."""
    with open(path, "r", encoding="utf-8") as handle:
        return load_snapshot(json.load(handle))
