"""Analysis: result statistics, plus static analysis for TCAM correctness.

Two halves live here.  The *measurement* half (stats, replication, result
tables) post-processes experiment output.  The *static-analysis* half
([docs/analysis.md](../../../docs/analysis.md)) checks the system itself:
the ruleset verifier proves or refutes the shadow+main ≡ monolithic
invariant over table snapshots, the determinism lint keeps
nondeterminism hazards out of the simulation paths, and SimRace — the
dynamic :class:`RaceSanitizer` plus the project-wide pass in
:mod:`repro.analysis.project` — finds schedule-order races: outcomes
that depend on the kernel's insertion-order ``seq`` tie-break.
"""

from .ap import (
    AtomIndex,
    IncrementalPairChecker,
    attach_incremental_checker,
    build_universe,
    engines_agree,
    violation_fingerprint,
)
from .lint import (
    LintFinding,
    apply_fixes,
    fix_paths,
    format_findings,
    lint_file,
    lint_paths,
    lint_source,
)
from .pragmas import PragmaIndex, clear_pragma_cache, file_pragmas
from .project import AMBIGUOUS_TIER, SHARED_STATE_MUTATION, lint_project
from .races import (
    SCHEDULE_ORDER_RACE,
    RaceReport,
    RaceSanitizer,
    RaceWitness,
    run_fixture,
    run_scenario,
)
from .replication import SeedSweep, replicate, replicate_many
from .snapshot import (
    SnapshotDelta,
    TableSnapshot,
    diff_snapshots,
    dump_snapshot,
    load_snapshot,
    read_snapshot,
    snapshot_installer,
    snapshot_tables,
)
from .stats import (
    cdf_at,
    empirical_cdf,
    increase_ratios,
    median_improvement,
    percentile_summary,
)
from .tables import ExperimentResult, format_cell, render_table
from .verifier import (
    ENGINES,
    find_duplicate_entries,
    find_priority_inversions,
    find_shadowed_rules,
    find_unreachable_rules,
    lookup_order,
    semantic_diff,
    verify_installer,
    verify_moveplan,
    verify_partition,
)
from .violations import Violation

__all__ = [
    "AMBIGUOUS_TIER",
    "ENGINES",
    "SCHEDULE_ORDER_RACE",
    "SHARED_STATE_MUTATION",
    "AtomIndex",
    "ExperimentResult",
    "IncrementalPairChecker",
    "LintFinding",
    "PragmaIndex",
    "RaceReport",
    "RaceSanitizer",
    "RaceWitness",
    "SeedSweep",
    "SnapshotDelta",
    "TableSnapshot",
    "Violation",
    "apply_fixes",
    "clear_pragma_cache",
    "file_pragmas",
    "attach_incremental_checker",
    "build_universe",
    "cdf_at",
    "diff_snapshots",
    "dump_snapshot",
    "empirical_cdf",
    "engines_agree",
    "find_duplicate_entries",
    "find_priority_inversions",
    "find_shadowed_rules",
    "find_unreachable_rules",
    "fix_paths",
    "format_cell",
    "format_findings",
    "increase_ratios",
    "lint_file",
    "lint_paths",
    "lint_project",
    "lint_source",
    "load_snapshot",
    "lookup_order",
    "median_improvement",
    "percentile_summary",
    "read_snapshot",
    "render_table",
    "replicate",
    "replicate_many",
    "run_fixture",
    "run_scenario",
    "semantic_diff",
    "snapshot_installer",
    "snapshot_tables",
    "verify_installer",
    "verify_moveplan",
    "verify_partition",
    "violation_fingerprint",
]
