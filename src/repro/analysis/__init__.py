"""Analysis helpers: CDFs, percentile summaries, result rendering."""

from .replication import SeedSweep, replicate, replicate_many
from .stats import (
    cdf_at,
    empirical_cdf,
    increase_ratios,
    median_improvement,
    percentile_summary,
)
from .tables import ExperimentResult, format_cell, render_table

__all__ = [
    "ExperimentResult",
    "SeedSweep",
    "cdf_at",
    "empirical_cdf",
    "format_cell",
    "increase_ratios",
    "median_improvement",
    "percentile_summary",
    "render_table",
    "replicate",
    "replicate_many",
]
