"""Analysis: result statistics, plus static analysis for TCAM correctness.

Two halves live here.  The *measurement* half (stats, replication, result
tables) post-processes experiment output.  The *static-analysis* half
([docs/analysis.md](../../../docs/analysis.md)) checks the system itself:
the ruleset verifier proves or refutes the shadow+main ≡ monolithic
invariant over table snapshots, and the determinism lint keeps
nondeterminism hazards out of the simulation paths.
"""

from .ap import (
    AtomIndex,
    IncrementalPairChecker,
    attach_incremental_checker,
    build_universe,
    engines_agree,
    violation_fingerprint,
)
from .lint import (
    LintFinding,
    apply_fixes,
    fix_paths,
    format_findings,
    lint_file,
    lint_paths,
    lint_source,
)
from .replication import SeedSweep, replicate, replicate_many
from .snapshot import (
    SnapshotDelta,
    TableSnapshot,
    diff_snapshots,
    dump_snapshot,
    load_snapshot,
    read_snapshot,
    snapshot_installer,
    snapshot_tables,
)
from .stats import (
    cdf_at,
    empirical_cdf,
    increase_ratios,
    median_improvement,
    percentile_summary,
)
from .tables import ExperimentResult, format_cell, render_table
from .verifier import (
    ENGINES,
    find_duplicate_entries,
    find_priority_inversions,
    find_shadowed_rules,
    find_unreachable_rules,
    lookup_order,
    semantic_diff,
    verify_installer,
    verify_moveplan,
    verify_partition,
)
from .violations import Violation

__all__ = [
    "ENGINES",
    "AtomIndex",
    "ExperimentResult",
    "IncrementalPairChecker",
    "LintFinding",
    "SeedSweep",
    "SnapshotDelta",
    "TableSnapshot",
    "Violation",
    "apply_fixes",
    "attach_incremental_checker",
    "build_universe",
    "cdf_at",
    "diff_snapshots",
    "dump_snapshot",
    "empirical_cdf",
    "engines_agree",
    "find_duplicate_entries",
    "find_priority_inversions",
    "find_shadowed_rules",
    "find_unreachable_rules",
    "fix_paths",
    "format_cell",
    "format_findings",
    "increase_ratios",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_snapshot",
    "lookup_order",
    "median_improvement",
    "percentile_summary",
    "read_snapshot",
    "render_table",
    "replicate",
    "replicate_many",
    "semantic_diff",
    "snapshot_installer",
    "snapshot_tables",
    "verify_installer",
    "verify_moveplan",
    "verify_partition",
    "violation_fingerprint",
]
