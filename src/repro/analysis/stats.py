"""Statistical helpers: empirical CDFs and percentile summaries.

The paper reports almost everything as CDFs (Figures 1, 8, 9, 10) or
percentile statements ("improves the median by 86%").  These helpers turn
raw sample lists into those forms.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np


def empirical_cdf(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Return (sorted values, cumulative probabilities) for plotting.

    Raises:
        ValueError: on an empty sample.
    """
    if len(values) == 0:
        raise ValueError("cannot build a CDF from an empty sample")
    xs = np.sort(np.asarray(values, dtype=float))
    ys = np.arange(1, len(xs) + 1) / len(xs)
    return xs, ys


def cdf_at(values: Sequence[float], probes: Sequence[float]) -> List[float]:
    """Fraction of samples <= each probe value."""
    xs = np.sort(np.asarray(values, dtype=float))
    return [float(np.searchsorted(xs, probe, side="right")) / len(xs) for probe in probes]


def percentile_summary(
    values: Sequence[float], percentiles: Sequence[float] = (50, 90, 95, 99)
) -> Dict[float, float]:
    """Named percentiles of a sample."""
    if len(values) == 0:
        raise ValueError("cannot summarize an empty sample")
    array = np.asarray(values, dtype=float)
    return {p: float(np.percentile(array, p)) for p in percentiles}


def median_improvement(baseline: Sequence[float], improved: Sequence[float]) -> float:
    """Relative median improvement: 0.8 means "80% lower at the median".

    This is the statistic behind the paper's "improves the median rule
    installation time by 86%, 94% and 80%".
    """
    base = float(np.median(np.asarray(baseline, dtype=float)))
    new = float(np.median(np.asarray(improved, dtype=float)))
    if base <= 0:
        raise ValueError("baseline median must be positive")
    return (base - new) / base


def increase_ratios(
    baseline: Dict[int, float], subject: Dict[int, float]
) -> List[float]:
    """Per-key ratios subject/baseline over the shared keys (Figure 1's
    'increased ratio of JCT')."""
    shared = sorted(set(baseline) & set(subject))
    ratios = []
    for key in shared:
        if baseline[key] > 0:
            ratios.append(subject[key] / baseline[key])
    return ratios
