"""Control-plane messages.

The paper defines *control plane actions* as the SDN messages a controller
uses to configure a switch's TCAM — OpenFlow's FlowMod with ADD / MODIFY /
DELETE commands.  This module provides a minimal, typed model of those
messages sufficient to drive the TCAM substrate and Hermes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from ..tcam.rule import Action, Rule
from ..tcam.ternary import TernaryMatch


class FlowModCommand(enum.Enum):
    """The FlowMod sub-commands the paper's analysis covers (§2.1.1)."""

    ADD = "add"
    MODIFY = "modify"
    DELETE = "delete"


@dataclass(frozen=True)
class FlowMod:
    """One flow-table modification request.

    ADD carries a full :class:`Rule`.  MODIFY and DELETE address an installed
    rule by ``rule_id``; MODIFY may change the action, match, or priority —
    priority changes are the expensive case the paper calls out (they become
    a delete + insert).
    """

    command: FlowModCommand
    rule: Optional[Rule] = None
    rule_id: Optional[int] = None
    new_action: Optional[Action] = None
    new_match: Optional[TernaryMatch] = None
    new_priority: Optional[int] = None
    # OpenFlow transaction id, stamped by the control channel.  Agents use
    # it to deduplicate redeliveries (a retransmitted FlowMod whose first
    # copy was applied but whose ack was lost must not install twice).
    xid: Optional[int] = None

    def __post_init__(self) -> None:
        if self.command is FlowModCommand.ADD:
            if self.rule is None:
                raise ValueError("ADD FlowMods require a rule")
        else:
            if self.rule_id is None:
                raise ValueError(f"{self.command.value} FlowMods require a rule_id")
        if self.command is FlowModCommand.MODIFY:
            if (
                self.new_action is None
                and self.new_match is None
                and self.new_priority is None
            ):
                raise ValueError("MODIFY FlowMods must change something")

    @classmethod
    def add(cls, rule: Rule) -> "FlowMod":
        """Insert ``rule`` into the flow table."""
        return cls(FlowModCommand.ADD, rule=rule)

    @classmethod
    def delete(cls, rule_id: int) -> "FlowMod":
        """Remove the rule with the given id."""
        return cls(FlowModCommand.DELETE, rule_id=rule_id)

    @classmethod
    def modify(
        cls,
        rule_id: int,
        action: Optional[Action] = None,
        match: Optional[TernaryMatch] = None,
        priority: Optional[int] = None,
    ) -> "FlowMod":
        """Rewrite fields of an installed rule."""
        return cls(
            FlowModCommand.MODIFY,
            rule_id=rule_id,
            new_action=action,
            new_match=match,
            new_priority=priority,
        )

    @property
    def changes_priority(self) -> bool:
        """True for the MODIFY variant the TCAM cannot do in place."""
        return self.command is FlowModCommand.MODIFY and self.new_priority is not None


@dataclass(frozen=True)
class FlowModResult:
    """Outcome of applying one FlowMod.

    Attributes:
        latency: seconds of switch control-plane time the action consumed —
            the paper's *rule installation time* (RIT) for ADDs.
        installed_rule_ids: ids physically present for this logical rule
            after the action (more than one when Hermes partitioned it).
        used_guaranteed_path: True when Hermes serviced the action through
            the shadow table (i.e. under its performance guarantee).
    """

    latency: float
    installed_rule_ids: tuple = field(default_factory=tuple)
    used_guaranteed_path: bool = False
