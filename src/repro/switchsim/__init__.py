"""Switch substrate: control messages, installers, pipeline, agent, channel."""

from .agent import AgentDownError, AgentStats, CompletedAction, SwitchAgent
from .channel import (
    BatchSendOutcome,
    Channel,
    ChannelConfig,
    ChannelStats,
    NaiveChannel,
    ResilientChannel,
    SendOutcome,
    SwitchUnreachable,
)
from .installer import DirectInstaller, RuleInstaller
from .messages import FlowMod, FlowModCommand, FlowModResult
from .pipeline import (
    LookupTable,
    MissBehavior,
    Pipeline,
    PipelineStage,
    PipelineVerdict,
)

__all__ = [
    "AgentDownError",
    "AgentStats",
    "BatchSendOutcome",
    "Channel",
    "ChannelConfig",
    "ChannelStats",
    "CompletedAction",
    "DirectInstaller",
    "FlowMod",
    "FlowModCommand",
    "FlowModResult",
    "LookupTable",
    "MissBehavior",
    "NaiveChannel",
    "Pipeline",
    "PipelineStage",
    "PipelineVerdict",
    "ResilientChannel",
    "RuleInstaller",
    "SendOutcome",
    "SwitchAgent",
    "SwitchUnreachable",
]
