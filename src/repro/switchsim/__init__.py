"""Switch substrate: control messages, installers, pipeline, agent."""

from .agent import AgentStats, CompletedAction, SwitchAgent
from .installer import DirectInstaller, RuleInstaller
from .messages import FlowMod, FlowModCommand, FlowModResult
from .pipeline import (
    LookupTable,
    MissBehavior,
    Pipeline,
    PipelineStage,
    PipelineVerdict,
)

__all__ = [
    "AgentStats",
    "CompletedAction",
    "DirectInstaller",
    "FlowMod",
    "FlowModCommand",
    "FlowModResult",
    "LookupTable",
    "MissBehavior",
    "Pipeline",
    "PipelineStage",
    "PipelineVerdict",
    "RuleInstaller",
    "SwitchAgent",
]
