"""The rule-installer abstraction and the naive monolithic installer.

Everything that can sit between the OpenFlow agent and the TCAM — the naive
direct path, Hermes, Tango, ESPRES, ShadowSwitch — implements
:class:`RuleInstaller`.  The simulator and the experiments treat installers
interchangeably, which is what lets us A/B the systems the paper compares.
"""

from __future__ import annotations

import abc
from typing import Dict, Iterable, List, Optional, Sequence

from ..faults.table import FaultyTable, TcamWriteError
from ..tcam.rule import Rule
from ..tcam.table import TcamTable
from ..tcam.timing import EmpiricalTimingModel, InsertOrder
from .messages import FlowMod, FlowModCommand, FlowModResult


class RuleInstaller(abc.ABC):
    """Interface between the switch agent and a TCAM-management scheme."""

    @abc.abstractmethod
    def apply(self, flow_mod: FlowMod) -> FlowModResult:
        """Apply one FlowMod, returning the control-plane latency it cost."""

    def apply_batch(self, flow_mods: Sequence[FlowMod]) -> List[FlowModResult]:
        """Apply a batch of FlowMods.

        The default applies them in arrival order; schemes that reorder or
        rewrite batches (ESPRES, Tango) override this.
        """
        return [self.apply(flow_mod) for flow_mod in flow_mods]

    @abc.abstractmethod
    def lookup(self, key: int) -> Optional[Rule]:
        """Data-plane lookup through this installer's table organization."""

    @abc.abstractmethod
    def occupancy(self) -> int:
        """Total rules physically installed."""

    def advance_time(self, now: float) -> float:
        """Notify the installer of simulation time; returns background work
        time consumed since the previous call (0 for passive installers).

        Hermes overrides this to run its Rule Manager (prediction +
        migration) between control-plane actions.
        """
        return 0.0

    def tables(self) -> Dict[str, List[Rule]]:
        """Physical table contents, by name, in physical (lookup) order.

        The introspection seam of the ruleset verifier
        (:mod:`repro.analysis.verifier`): two-slice schemes expose
        ``"shadow"`` and ``"main"``, monolithic schemes ``"monolithic"``.
        The default (no tables exposed) opts a scheme out of verification.
        """
        return {}

    def shift_count(self) -> int:
        """Cumulative physical entry shifts performed by this installer.

        The tracing seam: the agent reads it before and after each action
        and attributes the delta to that action's span.  Pure read — no
        side effects, so calling it never perturbs a run.  Installers that
        do not track shifts return 0.
        """
        return 0

    def gauges(self) -> Dict[str, float]:
        """Named gauge readings for tracing (pure reads, may be empty).

        The agent samples these after each action under its own switch
        name, so the tracer's on-change dedup runs per switch.  Hermes
        exposes shadow/main occupancy and its token-bucket level.
        """
        return {}

    def prefill(self, rules: Iterable[Rule]) -> None:
        """Pre-install background rules before measurement starts.

        Production switches are never empty — routing entries and ACLs
        occupy the table, and Table 1 shows occupancy is what makes inserts
        slow.  Prefill installs rules without charging simulated time.
        Schemes with multi-level storage override this to place the rules
        in their steady-state home (Hermes: the main table).
        """
        for rule in rules:
            self.apply(FlowMod.add(rule))

    def lookup_semantics_equal(self, other: "RuleInstaller", keys: Iterable[int]) -> bool:
        """True when both installers forward every probed key identically.

        Rule ids differ across installers (partitioning creates fragments),
        so equality is judged on the *action* applied to each key — the
        paper's correctness criterion ("behave in an identical manner as a
        single monolithic table").
        """
        for key in keys:
            mine = self.lookup(key)
            theirs = other.lookup(key)
            mine_action = None if mine is None else mine.action
            theirs_action = None if theirs is None else theirs.action
            if mine_action != theirs_action:
                return False
        return True


class DirectInstaller(RuleInstaller):
    """The baseline: every FlowMod goes straight at one monolithic table.

    This models an unmodified commodity switch — the "Pica8 P-3290" /
    "Dell 8132F" / "HP 5406zl" lines in the paper's figures.
    """

    def __init__(
        self,
        timing: EmpiricalTimingModel,
        capacity: Optional[int] = None,
        rng=None,
        order: InsertOrder = InsertOrder.RANDOM,
        injector=None,
    ) -> None:
        """Create a monolithic installer.

        Args:
            timing: the switch's TCAM timing model.
            capacity: flow-table size; defaults to the model's capacity.
            rng: optional generator enabling latency noise.
            order: priority ordering assumed for latency scaling.
            injector: optional :class:`~repro.faults.injector.FaultInjector`;
                when given, writes route through a
                :class:`~repro.faults.table.FaultyTable` and may fail or
                silently no-op.
        """
        self.table = TcamTable(timing, capacity=capacity, name="monolithic", rng=rng)
        self.injector = injector
        if injector is not None:
            self.table = FaultyTable(self.table, injector)
        self.order = order

    def apply(self, flow_mod: FlowMod) -> FlowModResult:
        """Apply one FlowMod directly to the monolithic table.

        A visibly failed write (fault injection) still charges its latency
        but installs nothing — the naive scheme has no recovery story, which
        is exactly the gap the chaos experiment measures.
        """
        if flow_mod.command is FlowModCommand.ADD:
            try:
                result = self.table.insert(flow_mod.rule, order=self.order)
            except TcamWriteError as error:
                return FlowModResult(latency=error.latency)
            return FlowModResult(
                latency=result.latency,
                installed_rule_ids=(flow_mod.rule.rule_id,),
            )
        if flow_mod.command is FlowModCommand.DELETE:
            result = self.table.delete(flow_mod.rule_id)
            return FlowModResult(latency=result.latency)
        # MODIFY: in-place unless the priority changes, in which case the
        # paper converts it into delete + insert (Section 4.1).
        if flow_mod.changes_priority:
            old = self.table.get(flow_mod.rule_id)
            delete_latency = self.table.delete(flow_mod.rule_id).latency
            replacement = Rule(
                match=flow_mod.new_match if flow_mod.new_match is not None else old.match,
                priority=flow_mod.new_priority,
                action=(
                    flow_mod.new_action if flow_mod.new_action is not None else old.action
                ),
                rule_id=old.rule_id,
                origin_id=old.origin_id,
            )
            insert_result = self.table.insert(replacement, order=self.order)
            return FlowModResult(
                latency=delete_latency + insert_result.latency,
                installed_rule_ids=(replacement.rule_id,),
            )
        result = self.table.modify(
            flow_mod.rule_id, action=flow_mod.new_action, match=flow_mod.new_match
        )
        return FlowModResult(
            latency=result.latency, installed_rule_ids=(flow_mod.rule_id,)
        )

    def lookup(self, key: int) -> Optional[Rule]:
        """Single-table lookup."""
        return self.table.lookup(key)

    def occupancy(self) -> int:
        """Rules installed in the monolithic table."""
        return self.table.occupancy

    def tables(self) -> Dict[str, List[Rule]]:
        """The single physical table."""
        return {"monolithic": self.table.rules()}

    def shift_count(self) -> int:
        """Cumulative entry shifts of the monolithic table."""
        return self.table.stats.total_shifts
