"""The controller→switch control channel.

The paper (and the seed reproduction) assume FlowMods always arrive.  This
module makes the channel explicit so that assumption becomes a choice:

* :class:`NaiveChannel` — the seed behaviour, verbatim: one delivery, no
  retries, no randomness.  Runs through it are byte-identical to runs that
  call :meth:`SwitchAgent.submit` directly.
* :class:`ResilientChannel` — timeout + capped exponential backoff with
  seeded jitter, xid-stamped FlowMods so agents can deduplicate
  redeliveries (exactly-once installs even when only the ack was lost),
  and a circuit breaker that declares the switch unreachable after N
  consecutive timeouts (fast-failing until a cooldown, then probing
  half-open).

All timing is virtual: retries advance the *message's* clock, not the
host's, so the resilient channel at drop-rate zero performs the same agent
calls at the same simulated times as the naive one.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..engine.clock import Clock
from ..faults.injector import FaultInjector
from ..obs.tracer import get_tracer
from .agent import AgentDownError, CompletedAction, SwitchAgent
from .messages import FlowMod


@dataclass(frozen=True)
class ChannelConfig:
    """Retry/backoff/breaker tunables of the resilient channel."""

    timeout: float = 0.05
    max_retries: int = 8
    backoff_base: float = 0.005
    backoff_cap: float = 0.25
    jitter: float = 0.2
    breaker_threshold: int = 8
    breaker_cooldown: float = 1.0

    def __post_init__(self) -> None:
        if self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries cannot be negative: {self.max_retries}")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff parameters cannot be negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.breaker_threshold < 1:
            raise ValueError(
                f"breaker_threshold must be at least 1: {self.breaker_threshold}"
            )
        if self.breaker_cooldown < 0:
            raise ValueError(
                f"breaker_cooldown cannot be negative: {self.breaker_cooldown}"
            )


@dataclass
class SendOutcome:
    """Result of sending one FlowMod through a channel.

    Attributes:
        completed: the agent-side outcome, or None when the FlowMod never
            took effect (dropped on every attempt, or breaker fast-fail).
        attempts: delivery attempts made (0 for a breaker fast-fail).
        done_time: when the controller learned the final status — the ack
            time on success, the give-up time otherwise.
        delivered: True when the controller received an ack.
    """

    completed: Optional[CompletedAction]
    attempts: int
    done_time: float
    delivered: bool

    @property
    def applied(self) -> bool:
        """True when the switch actually executed the FlowMod (it may have,
        even unacked, when only the ack was lost)."""
        return self.completed is not None

    @property
    def retries(self) -> int:
        """Attempts beyond the first."""
        return max(0, self.attempts - 1)


@dataclass
class BatchSendOutcome:
    """Result of sending one FlowMod batch through a channel.

    ``ack_time`` is None for the naive channel (the controller observes
    each action's own finish time); the resilient channel sets it to the
    instant the batch ack arrived, which retries can push past the last
    action's finish time.
    """

    completed: List[CompletedAction] = field(default_factory=list)
    attempts: int = 1
    ack_time: Optional[float] = None
    delivered: bool = True

    @property
    def applied(self) -> bool:
        return bool(self.completed)

    @property
    def retries(self) -> int:
        return max(0, self.attempts - 1)


@dataclass
class ChannelStats:
    """Cumulative channel accounting."""

    sends: int = 0
    retries: int = 0
    timeouts: int = 0
    give_ups: int = 0
    fast_fails: int = 0
    breaker_opens: int = 0


class Channel:
    """Interface: deliver FlowMods to one switch agent."""

    def send(self, flow_mod: FlowMod, at_time: float) -> SendOutcome:
        raise NotImplementedError

    def send_batch(
        self, flow_mods: Sequence[FlowMod], at_time: float
    ) -> BatchSendOutcome:
        raise NotImplementedError


class NaiveChannel(Channel):
    """The seed's implicit channel: fire-and-forget, no retries.

    Without an injector it is perfectly reliable and adds zero machinery —
    byte-identical to calling the agent directly.  With one, FlowMods can
    be dropped (lost forever — the naive scheme's defining weakness) or
    delayed; there is no redelivery, so duplicates cannot arise and a lost
    ack is indistinguishable from success.
    """

    def __init__(
        self,
        agent: SwitchAgent,
        injector: Optional[FaultInjector] = None,
        tracer=None,
        clock: Optional[Clock] = None,
    ) -> None:
        self.agent = agent
        self.injector = injector
        self._tracer = tracer
        # Channels keep virtual time on the run's shared kernel clock; a
        # standalone channel inherits its agent's timeline.
        self.clock = clock if clock is not None else agent.clock
        self.stats = ChannelStats()

    @property
    def tracer(self):
        """The injected tracer, or the process-global one."""
        return self._tracer if self._tracer is not None else get_tracer()

    def _verdict_delay(self, at_time: float) -> Optional[float]:
        """Extra delivery delay, or None when the FlowMod is dropped."""
        if self.injector is None:
            return 0.0
        verdict = self.injector.flowmod_verdict(
            now=at_time, target=self.agent.name, xid=None
        )
        # Only forward loss hurts a channel that never acks or redelivers:
        # drop-ack still applies, and a duplicate has no first copy to
        # conflict with dedup-wise (we deliver once).
        if verdict.kind == "drop":
            return None
        return verdict.delay

    def send(self, flow_mod: FlowMod, at_time: float) -> SendOutcome:
        self.stats.sends += 1
        span = self.tracer.start_span(
            "flowmod", start=at_time, category="channel",
            switch=self.agent.name, kind="single",
        )
        delay = self._verdict_delay(at_time)
        if delay is None:
            self.stats.give_ups += 1
            span.finish(end=at_time, delivered=False, attempts=1)
            return SendOutcome(
                completed=None, attempts=1, done_time=at_time, delivered=False
            )
        try:
            completed = self.agent.submit(flow_mod, at_time=at_time + delay)
        except AgentDownError:
            self.stats.give_ups += 1
            span.finish(end=at_time, delivered=False, attempts=1)
            return SendOutcome(
                completed=None, attempts=1, done_time=at_time, delivered=False
            )
        except BaseException:
            span.finish(end=at_time, error=True)
            raise
        span.finish(end=completed.finish_time, delivered=True, attempts=1)
        return SendOutcome(
            completed=completed,
            attempts=1,
            done_time=completed.finish_time,
            delivered=True,
        )

    def send_batch(
        self, flow_mods: Sequence[FlowMod], at_time: float
    ) -> BatchSendOutcome:
        self.stats.sends += 1
        span = self.tracer.start_span(
            "flowmod", start=at_time, category="channel",
            switch=self.agent.name, kind="batch", size=len(flow_mods),
        )
        delay = self._verdict_delay(at_time)
        if delay is None:
            self.stats.give_ups += 1
            span.finish(end=at_time, delivered=False, attempts=1)
            return BatchSendOutcome(
                completed=[], attempts=1, ack_time=at_time, delivered=False
            )
        try:
            completed = self.agent.submit_batch(flow_mods, at_time=at_time + delay)
        except AgentDownError:
            self.stats.give_ups += 1
            span.finish(end=at_time, delivered=False, attempts=1)
            return BatchSendOutcome(
                completed=[], attempts=1, ack_time=at_time, delivered=False
            )
        except BaseException:
            span.finish(end=at_time, error=True)
            raise
        span.finish(
            end=max((action.finish_time for action in completed), default=at_time),
            delivered=True,
            attempts=1,
        )
        return BatchSendOutcome(completed=completed, attempts=1, ack_time=None)


class SwitchUnreachable(RuntimeError):
    """Raised by strict callers when the circuit breaker is open."""


class ResilientChannel(Channel):
    """Reliable delivery over a lossy control channel.

    Every send stamps the FlowMod(s) with a fresh xid; the agent's xid
    cache turns redeliveries into acks instead of re-installs.  Losses are
    retried after a timeout plus capped exponential backoff (jittered from
    a dedicated seeded stream).  ``breaker_threshold`` consecutive
    timeouts open the circuit breaker: sends fast-fail (the switch is
    reported unreachable, and ``on_breaker_open`` fires — Hermes uses this
    to enter degraded mode) until ``breaker_cooldown`` elapses, after which
    the next send probes half-open.
    """

    def __init__(
        self,
        agent: SwitchAgent,
        injector: FaultInjector,
        config: Optional[ChannelConfig] = None,
        rng: Optional[np.random.Generator] = None,
        on_breaker_open: Optional[Callable[[float], None]] = None,
        tracer=None,
        clock: Optional[Clock] = None,
    ) -> None:
        self.agent = agent
        self.injector = injector
        self.clock = clock if clock is not None else agent.clock
        self.config = config if config is not None else ChannelConfig()
        self.rng = rng if rng is not None else injector.child_rng(f"channel:{agent.name}")
        self.on_breaker_open = on_breaker_open
        self._tracer = tracer
        self.stats = ChannelStats()
        self._xids = itertools.count(1)
        self._consecutive_timeouts = 0
        self._open_until: Optional[float] = None

    @property
    def tracer(self):
        """The injected tracer, or the process-global one."""
        return self._tracer if self._tracer is not None else get_tracer()

    # ------------------------------------------------------------------
    # Breaker
    # ------------------------------------------------------------------
    @property
    def breaker_open(self) -> bool:
        """True while the breaker is tripped (as of the last send)."""
        return self._open_until is not None

    def _fast_fail(self, now: float) -> bool:
        if self._open_until is None:
            return False
        if now < self._open_until:
            self.stats.fast_fails += 1
            self.injector.log.record(
                "breaker-fast-fail", time=now, target=self.agent.name
            )
            return True
        return False  # cooldown elapsed: half-open, try the send

    def _trip_breaker(self, now: float) -> None:
        self.stats.breaker_opens += 1
        self._open_until = now + self.config.breaker_cooldown
        self._consecutive_timeouts = 0
        self.injector.log.record("breaker-open", time=now, target=self.agent.name)
        if self.on_breaker_open is not None:
            self.on_breaker_open(now)

    def _backoff(self, attempt: int) -> float:
        """Capped exponential backoff with seeded jitter, for ``attempt``
        (1-based) having just timed out."""
        base = min(self.config.backoff_cap, self.config.backoff_base * 2 ** (attempt - 1))
        if self.config.jitter == 0:
            return base
        return base * (1.0 + self.config.jitter * (2.0 * self.rng.random() - 1.0))

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, flow_mod: FlowMod, at_time: float) -> SendOutcome:
        self.stats.sends += 1
        if self._fast_fail(at_time):
            return SendOutcome(
                completed=None, attempts=0, done_time=at_time, delivered=False
            )
        xid = next(self._xids)
        stamped = replace(flow_mod, xid=xid)
        span = self.tracer.start_span(
            "flowmod", start=at_time, category="channel",
            switch=self.agent.name, kind="single", xid=xid,
        )
        try:
            outcome = self._attempt_loop(
                at_time, xid, lambda arrival: self.agent.submit(stamped, at_time=arrival)
            )
        except BaseException:
            span.finish(end=at_time, error=True)
            raise
        applied, attempts, done_time, delivered = outcome
        span.finish(end=done_time, delivered=delivered, attempts=attempts)
        return SendOutcome(
            completed=applied,
            attempts=attempts,
            done_time=done_time,
            delivered=delivered,
        )

    def send_batch(
        self, flow_mods: Sequence[FlowMod], at_time: float
    ) -> BatchSendOutcome:
        self.stats.sends += 1
        if not flow_mods:
            return BatchSendOutcome(completed=[], attempts=0, ack_time=at_time)
        if self._fast_fail(at_time):
            return BatchSendOutcome(
                completed=[], attempts=0, ack_time=at_time, delivered=False
            )
        xid = next(self._xids)
        stamped = [replace(flow_mod, xid=xid) for flow_mod in flow_mods]
        span = self.tracer.start_span(
            "flowmod", start=at_time, category="channel",
            switch=self.agent.name, kind="batch", size=len(flow_mods), xid=xid,
        )
        try:
            outcome = self._attempt_loop(
                at_time, xid, lambda arrival: self.agent.submit_batch(stamped, at_time=arrival)
            )
        except BaseException:
            span.finish(end=at_time, error=True)
            raise
        applied, attempts, done_time, delivered = outcome
        span.finish(end=done_time, delivered=delivered, attempts=attempts)
        return BatchSendOutcome(
            completed=applied if applied is not None else [],
            attempts=attempts,
            ack_time=done_time,
            delivered=delivered,
        )

    def _attempt_loop(self, at_time: float, xid: int, apply: Callable):
        """Shared retry machinery; returns (applied, attempts, done, ok)."""
        now = at_time
        applied = None
        attempts = 0
        while attempts <= self.config.max_retries:
            attempts += 1
            if attempts > 1:
                self.stats.retries += 1
                self.injector.log.record(
                    "retry", time=now, target=self.agent.name, xid=xid, attempt=attempts
                )
            verdict = self.injector.flowmod_verdict(
                now=now, target=self.agent.name, xid=xid
            )
            lost = verdict.kind == "drop"
            arrival = now + verdict.delay
            if not lost:
                try:
                    applied = apply(arrival)
                except AgentDownError:
                    lost = True
                else:
                    if verdict.kind == "duplicate":
                        # The network delivered a second copy; the agent's
                        # xid cache absorbs it.
                        apply(arrival)
                    if verdict.kind != "drop-ack":
                        # Acked: success.
                        self._consecutive_timeouts = 0
                        self._open_until = None
                        done = max(arrival, self._finish_time(applied))
                        return applied, attempts, done, True
                    lost = True  # applied, but the controller never hears
            # Timeout path.
            self.stats.timeouts += 1
            self.tracer.event(
                "channel.timeout", time=now + self.config.timeout,
                category="channel", switch=self.agent.name, xid=xid,
                attempt=attempts,
            )
            self._consecutive_timeouts += 1
            if self._consecutive_timeouts >= self.config.breaker_threshold:
                self._trip_breaker(now + self.config.timeout)
                break
            now += self.config.timeout + self._backoff(attempts)
        self.stats.give_ups += 1
        self.injector.log.record(
            "give-up", time=now, target=self.agent.name, xid=xid, attempts=attempts
        )
        return applied, attempts, now + self.config.timeout, False

    @staticmethod
    def _finish_time(applied) -> float:
        if isinstance(applied, list):
            return max((action.finish_time for action in applied), default=0.0)
        return applied.finish_time
