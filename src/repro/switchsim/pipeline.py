"""Multi-table lookup pipeline.

Section 3 of the paper: Hermes preserves the single-logical-table abstraction
by chaining physical tables — a packet first probes the shadow table, and the
shadow's table-miss behaviour is configured to "forward to next table" (the
main table).  Section 6 generalizes this to switches with multiple logical
TCAM tables, each carved into its own shadow/main pair, with the *main*
table keeping the original pipeline's miss behaviour (goto-next / controller
/ drop).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Protocol, Sequence

from ..tcam.rule import Rule


class MissBehavior(enum.Enum):
    """What a table does with a packet that matches none of its rules."""

    GOTO_NEXT = "goto-next"
    TO_CONTROLLER = "to-controller"
    DROP = "drop"


class LookupTable(Protocol):
    """Anything probe-able by the pipeline (TcamTable, installers, Hermes)."""

    def lookup(self, key: int) -> Optional[Rule]:
        """Return the highest-priority matching rule, or None on a miss."""


@dataclass(frozen=True)
class PipelineStage:
    """One stage of the pipeline: a table plus its miss behaviour."""

    name: str
    table: LookupTable
    on_miss: MissBehavior = MissBehavior.GOTO_NEXT


@dataclass(frozen=True)
class PipelineVerdict:
    """The pipeline's decision for one packet.

    Attributes:
        rule: the matching rule, or None when no stage matched.
        stage: name of the stage that decided the packet's fate.
        punted: True when the packet goes to the controller.
        dropped: True when the packet is discarded.
    """

    rule: Optional[Rule]
    stage: Optional[str]
    punted: bool = False
    dropped: bool = False

    @property
    def matched(self) -> bool:
        """True when some rule processed the packet."""
        return self.rule is not None


class Pipeline:
    """An ordered chain of lookup tables with per-stage miss behaviour."""

    def __init__(self, stages: Sequence[PipelineStage]) -> None:
        """Build a pipeline; stage names must be unique.

        Raises:
            ValueError: on an empty pipeline or duplicate stage names.
        """
        if not stages:
            raise ValueError("a pipeline needs at least one stage")
        names = [stage.name for stage in stages]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate stage names: {names}")
        self.stages: List[PipelineStage] = list(stages)

    def stage(self, name: str) -> PipelineStage:
        """Return the stage with the given name.

        Raises:
            KeyError: when no stage has that name.
        """
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise KeyError(f"no pipeline stage named {name!r}")

    def process(self, key: int) -> PipelineVerdict:
        """Run one packet through the pipeline.

        The packet traverses stages in order.  A match terminates processing
        (Hermes's "stop matching after the packet matches a rule in the
        shadow table"); a miss follows the stage's miss behaviour.
        """
        last_stage: Optional[str] = None
        for stage in self.stages:
            last_stage = stage.name
            rule = stage.table.lookup(key)
            if rule is not None:
                return PipelineVerdict(rule=rule, stage=stage.name)
            if stage.on_miss is MissBehavior.TO_CONTROLLER:
                return PipelineVerdict(rule=None, stage=stage.name, punted=True)
            if stage.on_miss is MissBehavior.DROP:
                return PipelineVerdict(rule=None, stage=stage.name, dropped=True)
            # GOTO_NEXT falls through to the next stage.
        # Fell off the end of the pipeline: treated as a drop.
        return PipelineVerdict(rule=None, stage=last_stage, dropped=True)
