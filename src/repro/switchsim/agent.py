"""The switch-resident control agent.

Models the software path on the switch (Figure 2 of the paper): FlowMods
arrive from the controller, queue at the switch CPU, and are executed
serially against the TCAM through a :class:`RuleInstaller`.  Serial execution
is what turns per-rule TCAM latency into queueing delay under bursts — the
effect behind the paper's Figure 11 time series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..engine.clock import Clock, SerialResource
from ..obs.tracer import get_tracer
from ..tcam.rule import Rule
from .installer import RuleInstaller
from .messages import FlowMod, FlowModResult


class AgentDownError(RuntimeError):
    """The switch agent is crashed/restarting; the submission was lost.

    Raised only when a fault injector with an :class:`~repro.faults.spec.AgentCrash`
    schedule is attached.  The queued message is gone (queue loss); the
    TCAM content is intact (table survives restarts).
    """


@dataclass(frozen=True)
class CompletedAction:
    """A FlowMod's life cycle through the agent.

    Attributes:
        flow_mod: the request.
        result: the installer's outcome (latency, fragments, path).
        submit_time: when the controller's message reached the agent.
        start_time: when the switch CPU began executing it.
        finish_time: when the TCAM update completed.
        shifts: physical entry shifts this action cost (installer delta).
    """

    flow_mod: FlowMod
    result: FlowModResult
    submit_time: float
    start_time: float
    finish_time: float
    shifts: int = 0

    @property
    def response_time(self) -> float:
        """Queueing plus execution time — the paper's rule installation time."""
        return self.finish_time - self.submit_time

    @property
    def queue_delay(self) -> float:
        """Time spent waiting for the switch CPU before execution began."""
        return self.start_time - self.submit_time


@dataclass
class AgentStats:
    """Aggregate accounting across an agent's lifetime.

    ``busy_time`` (control-path execution) plus ``background_time`` (Rule
    Manager work between actions) plus ``stall_time`` (injected CPU pauses)
    decompose the agent's total wall-time spent off-idle.
    """

    actions: int = 0
    guaranteed_actions: int = 0
    busy_time: float = 0.0
    queue_time: float = 0.0
    background_time: float = 0.0
    stall_time: float = 0.0
    stalls: int = 0
    deduplicated: int = 0
    crash_losses: int = 0

    def record(self, completed: CompletedAction, background_time: float = 0.0) -> None:
        """Fold one completed action (and any background work that ran
        ahead of it) into the counters."""
        self.actions += 1
        if completed.result.used_guaranteed_path:
            self.guaranteed_actions += 1
        self.busy_time += completed.finish_time - completed.start_time
        self.queue_time += completed.queue_delay
        self.background_time += background_time


class SwitchAgent:
    """Serializes control-plane actions onto a rule installer.

    The switch CPU is a kernel :class:`~repro.engine.clock.SerialResource`
    on the run's shared timeline: an action submitted at time *t* starts at
    ``max(t, busy_until)`` and finishes after the installer-reported
    latency.  Hermes's background work (Rule Manager migration) is driven by
    :meth:`RuleInstaller.advance_time` before each action and accounted
    separately — per the paper it runs in the background and does not block
    the control path.
    """

    def __init__(
        self,
        installer: RuleInstaller,
        name: str = "switch",
        injector=None,
        tracer=None,
        clock: Optional[Clock] = None,
    ) -> None:
        """Wrap ``installer`` behind a serial control queue.

        Args:
            installer: the TCAM-management scheme behind this agent.
            name: switch name (used by the fault injector to scope faults).
            injector: optional :class:`~repro.faults.injector.FaultInjector`
                supplying CPU-stall and crash decisions; None models a
                perfectly reliable agent.
            tracer: optional explicit :class:`~repro.obs.tracer.Tracer`;
                None follows the process-global tracer (a no-op unless one
                was installed).
            clock: the shared kernel clock this agent's virtual time is
                derived from — agents of one co-simulation share one, so
                their timings live on a single timeline; None gives the
                agent a private timeline starting at zero.
        """
        self.installer = installer
        self.name = name
        self.injector = injector
        self._tracer = tracer
        self.clock = clock if clock is not None else Clock()
        self.stats = AgentStats()
        self._cpu = SerialResource(free_at=self.clock.now)
        self._history: List[CompletedAction] = []
        # xid -> prior outcome, for exactly-once redelivery semantics.
        self._xid_cache: Dict[int, object] = {}

    @property
    def tracer(self):
        """The injected tracer, or the process-global one."""
        return self._tracer if self._tracer is not None else get_tracer()

    @property
    def busy_until(self) -> float:
        """Time at which the control CPU becomes free."""
        return self._cpu.free_at

    def history(self) -> List[CompletedAction]:
        """Every completed action, in completion order."""
        return list(self._history)

    def install_latencies(self) -> List[float]:
        """Per-action response times — the series the RIT CDFs are built from."""
        return [completed.response_time for completed in self._history]

    def queue_delays(self) -> List[float]:
        """Per-action CPU queueing delays (submit to execution start)."""
        return [completed.queue_delay for completed in self._history]

    def _sample_gauges(self, tracer, at_time: float) -> None:
        """Record the installer's gauge readings under this switch's name."""
        readings = self.installer.gauges()
        for gauge_name in sorted(readings):
            tracer.sample(
                gauge_name, time=at_time, value=readings[gauge_name],
                switch=self.name,
            )

    def _check_faults(self, at_time: float) -> None:
        """Consult the injector: crash loss raises, stalls push busy_until."""
        if self.injector is None:
            return
        if self.injector.agent_down(self.name, at_time):
            self.stats.crash_losses += 1
            raise AgentDownError(f"{self.name}: agent down at t={at_time:.6f}")
        stall = self.injector.stall_duration(self.name, at_time)
        if stall > 0:
            self._cpu.stall(at_time, stall)
            self.stats.stall_time += stall
            self.stats.stalls += 1

    def submit(
        self, flow_mod: FlowMod, at_time: Optional[float] = None
    ) -> CompletedAction:
        """Submit one FlowMod at simulation time ``at_time``.

        ``at_time=None`` submits at the shared clock's current instant.
        Returns the completed action with its queueing-inclusive timing.
        A redelivered FlowMod (same xid as an already-applied one) is not
        re-executed: the cached outcome is returned, so controller-side
        retransmissions cannot double-install.
        """
        if at_time is None:
            at_time = self.clock.now
        tracer = self.tracer
        if flow_mod.xid is not None and flow_mod.xid in self._xid_cache:
            self.stats.deduplicated += 1
            tracer.event(
                "agent.dedup", time=at_time, category="agent",
                switch=self.name, xid=flow_mod.xid,
            )
            return self._xid_cache[flow_mod.xid]
        self._check_faults(at_time)
        span = tracer.start_span(
            "agent.action", start=at_time, category="agent",
            switch=self.name, command=flow_mod.command.value, xid=flow_mod.xid,
        )
        # advance_time first: migration-era shifts belong to the Rule
        # Manager's own span, not to this action's delta.
        background = self.installer.advance_time(at_time)
        shifts_before = self.installer.shift_count()
        start = self._cpu.start_time(at_time)
        try:
            result = self.installer.apply(flow_mod)
        except BaseException:
            span.finish(end=at_time, error=True)
            raise
        shifts = self.installer.shift_count() - shifts_before
        finish = start + result.latency
        self._cpu.occupy_until(finish)
        completed = CompletedAction(
            flow_mod=flow_mod,
            result=result,
            submit_time=at_time,
            start_time=start,
            finish_time=finish,
            shifts=shifts,
        )
        self._history.append(completed)
        self.stats.record(completed, background_time=background)
        if flow_mod.xid is not None:
            self._xid_cache[flow_mod.xid] = completed
        span.finish(
            end=finish,
            queue_delay=completed.queue_delay,
            exec_latency=result.latency,
            shifts=shifts,
            guaranteed=result.used_guaranteed_path,
            background=background,
        )
        if tracer.enabled:
            self._sample_gauges(tracer, finish)
        return completed

    def submit_batch(
        self, flow_mods: Sequence[FlowMod], at_time: Optional[float] = None
    ) -> List[CompletedAction]:
        """Submit a batch arriving together at ``at_time``.

        ``at_time=None`` submits at the shared clock's current instant.
        The installer may reorder or rewrite the batch (ESPRES / Tango);
        results are timed serially in the installer's execution order.
        Batches are deduplicated as a unit by the xid of their first mod.
        """
        if at_time is None:
            at_time = self.clock.now
        tracer = self.tracer
        batch_xid = flow_mods[0].xid if flow_mods else None
        if batch_xid is not None and batch_xid in self._xid_cache:
            self.stats.deduplicated += 1
            tracer.event(
                "agent.dedup", time=at_time, category="agent",
                switch=self.name, xid=batch_xid, batch=True,
            )
            return self._xid_cache[batch_xid]
        self._check_faults(at_time)
        batch_span = tracer.start_span(
            "agent.batch", start=at_time, category="agent",
            switch=self.name, size=len(flow_mods), xid=batch_xid,
        )
        background = self.installer.advance_time(at_time)
        shifts_before = self.installer.shift_count()
        start = self._cpu.start_time(at_time)
        completed_actions: List[CompletedAction] = []
        try:
            results = self.installer.apply_batch(flow_mods)
        except BaseException:
            batch_span.finish(end=at_time, error=True)
            raise
        batch_shifts = self.installer.shift_count() - shifts_before
        cursor = start
        for index, (flow_mod, result) in enumerate(zip(flow_mods, results)):
            finish = cursor + result.latency
            completed = CompletedAction(
                flow_mod=flow_mod,
                result=result,
                submit_time=at_time,
                start_time=cursor,
                finish_time=finish,
            )
            completed_actions.append(completed)
            # The batch's background work is charged once, with its first
            # action, so the decomposition stays additive.
            self.stats.record(
                completed, background_time=background if index == 0 else 0.0
            )
            if tracer.enabled:
                # Per-action child spans (parented on the open batch span);
                # shifts are known only batch-wide, so they live on the
                # batch span instead.
                tracer.start_span(
                    "agent.action", start=at_time, category="agent",
                    switch=self.name, command=flow_mod.command.value,
                    xid=flow_mod.xid,
                ).finish(
                    end=finish,
                    queue_delay=completed.queue_delay,
                    exec_latency=result.latency,
                    guaranteed=result.used_guaranteed_path,
                )
            cursor = finish
        self._cpu.occupy_until(cursor)
        self._history.extend(completed_actions)
        if batch_xid is not None:
            self._xid_cache[batch_xid] = completed_actions
        batch_span.finish(
            end=cursor, shifts=batch_shifts, background=background
        )
        if tracer.enabled:
            self._sample_gauges(tracer, cursor)
        return completed_actions

    def lookup(self, key: int) -> Optional[Rule]:
        """Data-plane lookup delegated to the installer."""
        return self.installer.lookup(key)

    def __repr__(self) -> str:
        return (
            f"SwitchAgent({self.name!r}, actions={self.stats.actions}, "
            f"busy_until={self._cpu.free_at:.6f})"
        )
