"""The switch-resident control agent.

Models the software path on the switch (Figure 2 of the paper): FlowMods
arrive from the controller, queue at the switch CPU, and are executed
serially against the TCAM through a :class:`RuleInstaller`.  Serial execution
is what turns per-rule TCAM latency into queueing delay under bursts — the
effect behind the paper's Figure 11 time series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..tcam.rule import Rule
from .installer import RuleInstaller
from .messages import FlowMod, FlowModResult


@dataclass(frozen=True)
class CompletedAction:
    """A FlowMod's life cycle through the agent.

    Attributes:
        flow_mod: the request.
        result: the installer's outcome (latency, fragments, path).
        submit_time: when the controller's message reached the agent.
        start_time: when the switch CPU began executing it.
        finish_time: when the TCAM update completed.
    """

    flow_mod: FlowMod
    result: FlowModResult
    submit_time: float
    start_time: float
    finish_time: float

    @property
    def response_time(self) -> float:
        """Queueing plus execution time — the paper's rule installation time."""
        return self.finish_time - self.submit_time


@dataclass
class AgentStats:
    """Aggregate accounting across an agent's lifetime."""

    actions: int = 0
    guaranteed_actions: int = 0
    busy_time: float = 0.0
    background_time: float = 0.0

    def record(self, completed: CompletedAction) -> None:
        """Fold one completed action into the counters."""
        self.actions += 1
        if completed.result.used_guaranteed_path:
            self.guaranteed_actions += 1
        self.busy_time += completed.finish_time - completed.start_time


class SwitchAgent:
    """Serializes control-plane actions onto a rule installer.

    The agent keeps a virtual clock: an action submitted at time *t* starts
    at ``max(t, busy_until)`` and finishes after the installer-reported
    latency.  Hermes's background work (Rule Manager migration) is driven by
    :meth:`RuleInstaller.advance_time` before each action and accounted
    separately — per the paper it runs in the background and does not block
    the control path.
    """

    def __init__(self, installer: RuleInstaller, name: str = "switch") -> None:
        """Wrap ``installer`` behind a serial control queue."""
        self.installer = installer
        self.name = name
        self.stats = AgentStats()
        self._busy_until = 0.0
        self._history: List[CompletedAction] = []

    @property
    def busy_until(self) -> float:
        """Time at which the control CPU becomes free."""
        return self._busy_until

    def history(self) -> List[CompletedAction]:
        """Every completed action, in completion order."""
        return list(self._history)

    def install_latencies(self) -> List[float]:
        """Per-action response times — the series the RIT CDFs are built from."""
        return [completed.response_time for completed in self._history]

    def submit(self, flow_mod: FlowMod, at_time: float = 0.0) -> CompletedAction:
        """Submit one FlowMod at simulation time ``at_time``.

        Returns the completed action with its queueing-inclusive timing.
        """
        self.stats.background_time += self.installer.advance_time(at_time)
        start = max(at_time, self._busy_until)
        result = self.installer.apply(flow_mod)
        finish = start + result.latency
        self._busy_until = finish
        completed = CompletedAction(
            flow_mod=flow_mod,
            result=result,
            submit_time=at_time,
            start_time=start,
            finish_time=finish,
        )
        self._history.append(completed)
        self.stats.record(completed)
        return completed

    def submit_batch(
        self, flow_mods: Sequence[FlowMod], at_time: float = 0.0
    ) -> List[CompletedAction]:
        """Submit a batch arriving together at ``at_time``.

        The installer may reorder or rewrite the batch (ESPRES / Tango);
        results are timed serially in the installer's execution order.
        """
        self.stats.background_time += self.installer.advance_time(at_time)
        start = max(at_time, self._busy_until)
        completed_actions: List[CompletedAction] = []
        results = self.installer.apply_batch(flow_mods)
        cursor = start
        for flow_mod, result in zip(flow_mods, results):
            finish = cursor + result.latency
            completed = CompletedAction(
                flow_mod=flow_mod,
                result=result,
                submit_time=at_time,
                start_time=cursor,
                finish_time=finish,
            )
            completed_actions.append(completed)
            self.stats.record(completed)
            cursor = finish
        self._busy_until = cursor
        self._history.extend(completed_actions)
        return completed_actions

    def lookup(self, key: int) -> Optional[Rule]:
        """Data-plane lookup delegated to the installer."""
        return self.installer.lookup(key)

    def __repr__(self) -> str:
        return (
            f"SwitchAgent({self.name!r}, actions={self.stats.actions}, "
            f"busy_until={self._busy_until:.6f})"
        )
