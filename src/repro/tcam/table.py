"""Physical TCAM table model.

A TCAM stores rules as an ordered list; lookups return the first (topmost)
matching entry, so priority order must be preserved physically.  An insertion
in the middle of the list therefore *shifts* every entry below the insertion
point, which is exactly why insertion latency grows with occupancy (Section
2.1 of the paper).  This module models that behaviour: it tracks entry order,
computes the shift count of every insertion, and charges latencies from an
:class:`~repro.tcam.timing.EmpiricalTimingModel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from .rule import Action, Rule
from .ternary import TernaryMatch
from .timing import EmpiricalTimingModel, InsertOrder


class TcamError(Exception):
    """Base class for TCAM table errors."""


class TableFullError(TcamError):
    """Raised when inserting into a TCAM that has no free entries."""


class RuleNotFoundError(TcamError, KeyError):
    """Raised when an operation names a rule_id absent from the table."""


@dataclass(frozen=True)
class ControlActionResult:
    """Outcome of one control-plane action against the TCAM.

    Attributes:
        latency: seconds the ASIC spent on the action.
        shifts: number of resident entries physically moved.
        position: index the affected entry holds after the action (or held,
            for deletions).
    """

    latency: float
    shifts: int = 0
    position: int = -1


@dataclass
class TableStats:
    """Cumulative per-table accounting used by the overhead experiments."""

    insertions: int = 0
    deletions: int = 0
    modifications: int = 0
    lookups: int = 0
    total_shifts: int = 0
    busy_time: float = 0.0

    def record(self, kind: str, result: ControlActionResult) -> None:
        """Fold one action result into the counters."""
        if kind == "insert":
            self.insertions += 1
        elif kind == "delete":
            self.deletions += 1
        elif kind == "modify":
            self.modifications += 1
        self.total_shifts += result.shifts
        self.busy_time += result.latency


class TcamTable:
    """A priority-ordered TCAM table with occupancy-driven action latencies.

    Entries are kept in descending priority order (ties broken by insertion
    order), mirroring the physical layout a TCAM must maintain.  All control
    actions return a :class:`ControlActionResult` carrying the modelled
    latency; the table itself holds no clock — callers (the switch agent or
    the simulator) accumulate time.
    """

    def __init__(
        self,
        timing: EmpiricalTimingModel,
        capacity: Optional[int] = None,
        name: str = "tcam",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        """Create an empty table.

        Args:
            timing: the latency model charging each action.
            capacity: entry limit; defaults to the timing model's capacity.
            name: label used in error messages and stats dumps.
            rng: optional generator enabling latency noise; deterministic
                mean latencies are used when omitted.
        """
        self.timing = timing
        self.capacity = capacity if capacity is not None else timing.capacity
        if self.capacity <= 0:
            raise ValueError(f"table {name!r} needs positive capacity")
        self.name = name
        self.rng = rng
        self.stats = TableStats()
        self._entries: List[Rule] = []
        self._by_id: Dict[int, Rule] = {}
        self._listeners: List[object] = []

    def add_listener(self, listener: object) -> None:
        """Register a change observer.

        A listener may implement any of ``rule_installed(rule)``,
        ``rule_removed(rule)``, and ``rule_modified(old, new)``; missing
        methods are skipped.  Used by Hermes to keep its overlap index in
        lock-step with the physical main table.
        """
        self._listeners.append(listener)

    def _notify(self, event: str, *args) -> None:
        for listener in self._listeners:
            handler = getattr(listener, event, None)
            if handler is not None:
                handler(*args)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        """Number of rules currently installed."""
        return len(self._entries)

    @property
    def free_entries(self) -> int:
        """Number of additional rules the table can hold."""
        return self.capacity - len(self._entries)

    @property
    def is_full(self) -> bool:
        """True when no further insertion can be accepted."""
        return len(self._entries) >= self.capacity

    def rules(self) -> List[Rule]:
        """The installed rules in physical (descending-priority) order."""
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, rule_id: int) -> bool:
        return rule_id in self._by_id

    def get(self, rule_id: int) -> Rule:
        """Return the installed rule with the given id.

        Raises:
            RuleNotFoundError: when no such rule is installed.
        """
        try:
            return self._by_id[rule_id]
        except KeyError:
            raise RuleNotFoundError(f"{self.name}: no rule #{rule_id}") from None

    # ------------------------------------------------------------------
    # Control-plane actions
    # ------------------------------------------------------------------
    def insert(
        self,
        rule: Rule,
        order: InsertOrder = InsertOrder.RANDOM,
        planned: bool = False,
    ) -> ControlActionResult:
        """Install a rule, charging the occupancy-dependent insertion cost.

        The rule lands at the bottom of its priority class; every entry below
        that position is shifted down one slot.

        Args:
            rule: the rule to install.
            order: priority ordering of the surrounding batch.
            planned: True for writes whose placement was pre-computed
                offline (batch migration with TCAM update optimizers such
                as RuleTris [62]): the write goes into a known free slot, so
                it is charged the empty-table write cost instead of the
                occupancy-dependent shifting cost.

        Raises:
            TableFullError: when the table is at capacity.
            ValueError: when a rule with the same id is already installed.
        """
        if self.is_full:
            raise TableFullError(
                f"{self.name}: capacity {self.capacity} reached inserting {rule}"
            )
        if rule.rule_id in self._by_id:
            raise ValueError(f"{self.name}: rule #{rule.rule_id} already installed")
        position = self._insertion_position(rule.priority)
        shifts = len(self._entries) - position
        effective_occupancy = 0 if planned else len(self._entries)
        latency = self.timing.insertion_latency(
            effective_occupancy,
            shifts=None if planned else shifts,
            order=order,
            rng=self.rng,
        )
        self._entries.insert(position, rule)
        self._by_id[rule.rule_id] = rule
        result = ControlActionResult(latency=latency, shifts=shifts, position=position)
        self.stats.record("insert", result)
        self._notify("rule_installed", rule)
        return result

    @property
    def lowest_priority(self) -> Optional[int]:
        """Priority of the bottom entry (None when empty); O(1)."""
        return self._entries[-1].priority if self._entries else None

    def delete(self, rule_id: int) -> ControlActionResult:
        """Remove a rule by id; deletion is fast and shift-free.

        Raises:
            RuleNotFoundError: when no such rule is installed.
        """
        rule = self.get(rule_id)
        position = self._entries.index(rule)
        del self._entries[position]
        del self._by_id[rule_id]
        latency = self.timing.deletion_latency(rng=self.rng)
        result = ControlActionResult(latency=latency, shifts=0, position=position)
        self.stats.record("delete", result)
        self._notify("rule_removed", rule)
        return result

    def delete_where(self, predicate: Callable[[Rule], bool]) -> ControlActionResult:
        """Remove every rule satisfying ``predicate``; returns summed latency."""
        doomed = [rule for rule in self._entries if predicate(rule)]
        total_latency = 0.0
        for rule in doomed:
            total_latency += self.delete(rule.rule_id).latency
        return ControlActionResult(latency=total_latency, shifts=0)

    def modify(
        self,
        rule_id: int,
        action: Optional[Action] = None,
        match: Optional[TernaryMatch] = None,
    ) -> ControlActionResult:
        """Rewrite a rule's action and/or match in place (priority unchanged).

        Priority-changing modifications are not a TCAM primitive — the paper
        converts them into delete+insert at the agent layer — so this method
        deliberately has no priority parameter.

        Raises:
            RuleNotFoundError: when no such rule is installed.
        """
        rule = self.get(rule_id)
        position = self._entries.index(rule)
        updated = Rule(
            match=match if match is not None else rule.match,
            priority=rule.priority,
            action=action if action is not None else rule.action,
            rule_id=rule.rule_id,
            origin_id=rule.origin_id,
        )
        self._entries[position] = updated
        self._by_id[rule_id] = updated
        latency = self.timing.modification_latency(rng=self.rng)
        result = ControlActionResult(latency=latency, shifts=0, position=position)
        self.stats.record("modify", result)
        self._notify("rule_modified", rule, updated)
        return result

    def clear(self) -> ControlActionResult:
        """Delete every rule (used when the Rule Manager empties the shadow)."""
        return self.delete_where(lambda _rule: True)

    # ------------------------------------------------------------------
    # Data-plane lookup
    # ------------------------------------------------------------------
    def lookup(self, key: int) -> Optional[Rule]:
        """Return the first (highest-priority) rule matching ``key``, if any."""
        self.stats.lookups += 1
        for rule in self._entries:
            if rule.match.matches(key):
                return rule
        return None

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _insertion_position(self, priority: int) -> int:
        """Index where a rule of ``priority`` lands: below its priority class."""
        for index, resident in enumerate(self._entries):
            if resident.priority < priority:
                return index
        return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"TcamTable({self.name!r}, occupancy={self.occupancy}/{self.capacity}, "
            f"model={self.timing.name!r})"
        )
