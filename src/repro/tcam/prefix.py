"""IPv4 prefix algebra.

Hermes's correctness algorithms (Section 4 of the paper) manipulate rules whose
match fields are IP prefixes: detecting overlaps between a new rule and the
rules resident in the main table, *cutting* the new rule so that no overlap
remains, and *merging* the resulting fragments back into the minimal number of
prefixes.  This module provides that algebra as a small, well-tested value
type.

A :class:`Prefix` is canonical: all host bits (bits beyond ``length``) are
zero.  Construction with non-zero host bits raises :class:`ValueError` so that
bugs surface at creation time rather than during comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

MAX_PREFIX_LEN = 32
_ADDRESS_SPACE = 1 << MAX_PREFIX_LEN


def _mask_for(length: int) -> int:
    """Return the 32-bit network mask for a prefix of the given length."""
    if length == 0:
        return 0
    return ((1 << length) - 1) << (MAX_PREFIX_LEN - length)


@dataclass(frozen=True, order=True)
class Prefix:
    """A canonical IPv4 prefix, e.g. ``192.168.1.0/24``.

    Attributes:
        network: the network address as a 32-bit unsigned integer.
        length: the prefix length in ``[0, 32]``.
    """

    network: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= MAX_PREFIX_LEN:
            raise ValueError(f"prefix length {self.length} out of range [0, 32]")
        if not 0 <= self.network < _ADDRESS_SPACE:
            raise ValueError(f"network {self.network:#x} is not a 32-bit address")
        if self.network & ~_mask_for(self.length):
            raise ValueError(
                f"prefix {self.network:#010x}/{self.length} has non-zero host bits"
            )

    # ------------------------------------------------------------------
    # Construction and formatting
    # ------------------------------------------------------------------
    @classmethod
    def from_string(cls, text: str) -> "Prefix":
        """Parse ``"a.b.c.d/len"`` (or a bare address, implying /32)."""
        if "/" in text:
            address_part, _, length_part = text.partition("/")
            length = int(length_part)
        else:
            address_part, length = text, MAX_PREFIX_LEN
        octets = address_part.split(".")
        if len(octets) != 4:
            raise ValueError(f"malformed IPv4 address: {address_part!r}")
        network = 0
        for octet_text in octets:
            octet = int(octet_text)
            if not 0 <= octet <= 255:
                raise ValueError(f"octet {octet} out of range in {text!r}")
            network = (network << 8) | octet
        return cls(network, length)

    @classmethod
    def default_route(cls) -> "Prefix":
        """Return ``0.0.0.0/0``, which matches every address."""
        return cls(0, 0)

    def __str__(self) -> str:
        octets = [(self.network >> shift) & 0xFF for shift in (24, 16, 8, 0)]
        return f"{octets[0]}.{octets[1]}.{octets[2]}.{octets[3]}/{self.length}"

    # ------------------------------------------------------------------
    # Relational algebra
    # ------------------------------------------------------------------
    @property
    def mask(self) -> int:
        """The 32-bit network mask of this prefix."""
        return _mask_for(self.length)

    @property
    def size(self) -> int:
        """The number of addresses this prefix covers."""
        return 1 << (MAX_PREFIX_LEN - self.length)

    @property
    def first_address(self) -> int:
        """The lowest address covered by this prefix."""
        return self.network

    @property
    def last_address(self) -> int:
        """The highest address covered by this prefix."""
        return self.network | (~self.mask & (_ADDRESS_SPACE - 1))

    def matches(self, address: int) -> bool:
        """Return True when ``address`` falls inside this prefix."""
        return (address & self.mask) == self.network

    def contains(self, other: "Prefix") -> bool:
        """Return True when ``other`` is wholly inside this prefix."""
        return self.length <= other.length and (other.network & self.mask) == self.network

    def overlaps(self, other: "Prefix") -> bool:
        """Return True when the two prefixes share any address.

        For prefixes, overlap is equivalent to one containing the other.
        """
        return self.contains(other) or other.contains(self)

    # ------------------------------------------------------------------
    # Structural operations
    # ------------------------------------------------------------------
    def split(self) -> Tuple["Prefix", "Prefix"]:
        """Split into the two child prefixes of length ``length + 1``."""
        if self.length >= MAX_PREFIX_LEN:
            raise ValueError(f"cannot split a host prefix: {self}")
        child_length = self.length + 1
        bit = 1 << (MAX_PREFIX_LEN - child_length)
        return Prefix(self.network, child_length), Prefix(self.network | bit, child_length)

    def parent(self) -> "Prefix":
        """Return the enclosing prefix of length ``length - 1``."""
        if self.length == 0:
            raise ValueError("the default route has no parent")
        parent_length = self.length - 1
        return Prefix(self.network & _mask_for(parent_length), parent_length)

    def sibling(self) -> "Prefix":
        """Return the other child of this prefix's parent."""
        if self.length == 0:
            raise ValueError("the default route has no sibling")
        bit = 1 << (MAX_PREFIX_LEN - self.length)
        return Prefix(self.network ^ bit, self.length)

    def is_sibling_of(self, other: "Prefix") -> bool:
        """Return True when the two prefixes merge into a single parent."""
        return (
            self.length == other.length
            and self.length > 0
            and self.network ^ other.network == 1 << (MAX_PREFIX_LEN - self.length)
        )

    def subtract(self, other: "Prefix") -> List["Prefix"]:
        """Return the minimal prefix set covering ``self`` minus ``other``.

        This is the *cut* primitive of Hermes's Algorithm 1: when a new rule
        (``self``) is subsumed-overlapped by a higher-priority main-table rule
        (``other``), the new rule is fragmented so that the overlap region is
        excised.  The result is the at-most ``other.length - self.length``
        sibling prefixes hanging off the path from ``other`` up to ``self``.
        """
        if not self.contains(other):
            if other.contains(self):
                return []  # entirely consumed; nothing remains
            return [self]  # disjoint; nothing to cut
        remainder: List[Prefix] = []
        current = other
        while current.length > self.length:
            remainder.append(current.sibling())
            current = current.parent()
        remainder.reverse()  # largest fragments first, purely cosmetic
        return remainder

    def subtract_all(self, others: Iterable["Prefix"]) -> List["Prefix"]:
        """Return the minimal prefix set covering ``self`` minus every ``other``."""
        fragments = [self]
        for other in others:
            next_fragments: List[Prefix] = []
            for fragment in fragments:
                next_fragments.extend(fragment.subtract(other))
            fragments = next_fragments
            if not fragments:
                break
        return merge_prefixes(fragments)


def merge_prefixes(prefixes: Sequence[Prefix]) -> List[Prefix]:
    """Merge a set of prefixes into the minimal equivalent covering set.

    Removes prefixes contained in others and repeatedly coalesces sibling
    pairs into their parent.  This is the *merge* step of Algorithm 1 (the
    paper cites the optimal merge of EffiCuts [59]); for prefix sets the
    sibling-coalescing fixpoint is optimal.
    """
    distinct = sorted(set(prefixes))
    # Drop any prefix contained in a shorter one.  Sorting places the
    # containing prefix before its children, so one linear scan suffices.
    kept: List[Prefix] = []
    for prefix in distinct:
        if kept and kept[-1].contains(prefix):
            continue
        kept = [p for p in kept if not prefix.contains(p)]
        kept.append(prefix)
    # Coalesce sibling pairs to a fixpoint.
    merged = True
    current = set(kept)
    while merged:
        merged = False
        for prefix in sorted(current, key=lambda p: -p.length):
            if prefix not in current or prefix.length == 0:
                continue
            sibling = prefix.sibling()
            if sibling in current:
                current.discard(prefix)
                current.discard(sibling)
                current.add(prefix.parent())
                merged = True
    return sorted(current)


def covers_same_addresses(left: Sequence[Prefix], right: Sequence[Prefix]) -> bool:
    """Return True when two prefix sets cover exactly the same addresses.

    Used by tests and by the migration optimizer's self-checks.  Runs in
    O(n log n) by comparing the merged interval lists of both sets.
    """
    return _interval_union(left) == _interval_union(right)


def _interval_union(prefixes: Sequence[Prefix]) -> List[Tuple[int, int]]:
    intervals = sorted((p.first_address, p.last_address) for p in prefixes)
    union: List[Tuple[int, int]] = []
    for start, end in intervals:
        if union and start <= union[-1][1] + 1:
            union[-1] = (union[-1][0], max(union[-1][1], end))
        else:
            union.append((start, end))
    return union
