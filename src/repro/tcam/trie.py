"""A binary prefix trie indexing rules by their match prefix.

Algorithm 1 must find, for every arriving rule, the main-table rules that
overlap it.  A linear scan is O(table size) per insertion; production rule
sets make that the dominant cost.  For prefix rules, overlap is containment
one way or the other, so a binary trie answers the query in O(32 + answer):
ancestors of the query prefix lie on the root path, descendants in its
subtree.

:class:`PrefixRuleIndex` is the rule-facing wrapper the Hermes agent keeps
in sync with the main table; rules whose match is not prefix-shaped fall
back to a small linear side list.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from .prefix import MAX_PREFIX_LEN, Prefix
from .rule import Rule


class _TrieNode:
    __slots__ = ("children", "rules")

    def __init__(self) -> None:
        self.children: List[Optional["_TrieNode"]] = [None, None]
        self.rules: Dict[int, Rule] = {}


class PrefixTrie:
    """A binary trie over IPv4 prefixes holding rules at their nodes."""

    def __init__(self) -> None:
        self._root = _TrieNode()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, prefix: Prefix, rule: Rule) -> None:
        """Store ``rule`` at ``prefix``'s node.

        Raises:
            ValueError: when the rule id is already stored at this prefix.
        """
        node = self._descend(prefix, create=True)
        if rule.rule_id in node.rules:
            raise ValueError(f"rule #{rule.rule_id} already indexed at {prefix}")
        node.rules[rule.rule_id] = rule
        self._size += 1

    def remove(self, prefix: Prefix, rule_id: int) -> bool:
        """Remove one rule; returns False when absent (idempotent)."""
        node = self._descend(prefix, create=False)
        if node is None or rule_id not in node.rules:
            return False
        del node.rules[rule_id]
        self._size -= 1
        return True

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def overlapping(self, prefix: Prefix) -> Iterator[Rule]:
        """Yield every stored rule whose prefix overlaps ``prefix``.

        For prefixes, overlap means one contains the other: the result is
        the rules on the root path (ancestors, including the node itself)
        plus the rules in the node's subtree (descendants).
        """
        node = self._root
        yield from node.rules.values()
        for depth in range(prefix.length):
            bit = (prefix.network >> (MAX_PREFIX_LEN - 1 - depth)) & 1
            node = node.children[bit]
            if node is None:
                return
            yield from node.rules.values()
        # ``node`` is now the prefix's own node (already yielded): walk the
        # subtree for descendants.
        stack = [child for child in node.children if child is not None]
        while stack:
            current = stack.pop()
            yield from current.rules.values()
            stack.extend(child for child in current.children if child is not None)

    def _descend(self, prefix: Prefix, create: bool) -> Optional[_TrieNode]:
        node = self._root
        for depth in range(prefix.length):
            bit = (prefix.network >> (MAX_PREFIX_LEN - 1 - depth)) & 1
            child = node.children[bit]
            if child is None:
                if not create:
                    return None
                child = _TrieNode()
                node.children[bit] = child
            node = child
        return node


class PrefixRuleIndex:
    """Overlap index over a rule set (trie for prefixes, list otherwise)."""

    def __init__(self) -> None:
        self._trie = PrefixTrie()
        self._non_prefix: Dict[int, Rule] = {}
        self._prefix_of: Dict[int, Prefix] = {}

    def __len__(self) -> int:
        return len(self._trie) + len(self._non_prefix)

    def add(self, rule: Rule) -> None:
        """Index one rule.

        Raises:
            ValueError: when the rule id is already indexed.
        """
        if rule.rule_id in self._prefix_of or rule.rule_id in self._non_prefix:
            raise ValueError(f"rule #{rule.rule_id} already indexed")
        prefix = rule.match.to_prefix()
        if prefix is None:
            self._non_prefix[rule.rule_id] = rule
        else:
            self._trie.insert(prefix, rule)
            self._prefix_of[rule.rule_id] = prefix

    def discard(self, rule_id: int) -> bool:
        """Remove a rule by id; returns False when absent (idempotent)."""
        prefix = self._prefix_of.pop(rule_id, None)
        if prefix is not None:
            return self._trie.remove(prefix, rule_id)
        return self._non_prefix.pop(rule_id, None) is not None

    def overlapping(self, rule: Rule) -> List[Rule]:
        """All indexed rules whose match overlaps ``rule``'s match."""
        prefix = rule.match.to_prefix()
        results: List[Rule] = []
        if prefix is not None:
            results.extend(self._trie.overlapping(prefix))
        else:
            results.extend(
                candidate
                for candidate in (
                    self._trie.overlapping(Prefix.default_route())
                )
                if candidate.match.overlaps(rule.match)
            )
        results.extend(
            candidate
            for candidate in self._non_prefix.values()
            if candidate.match.overlaps(rule.match)
        )
        return results

    def blockers_for(self, rule: Rule) -> List[Rule]:
        """Overlapping rules with strictly higher priority (Algorithm 1)."""
        return [
            candidate
            for candidate in self.overlapping(rule)
            if candidate.priority > rule.priority
        ]
