"""Concrete switch timing models.

The paper simulates three commodity switches whose TCAM behaviour was
measured by Kuźniar et al. [42] (Table 1 reproduces two of the occupancy
curves) plus an ideal zero-latency switch used as the Fig 1 baseline.

Published points (Table 1 of the paper), converted from updates/second to
seconds-per-update:

======================  ===========  =========
switch                  occupancy    updates/s
======================  ===========  =========
Pica8 P-3290             50          1266
(Firebolt-3, 108 KB)     200         114
                         1000        23
                         2000        12
Dell 8132F               50          970
(Trident+, 54 KB)        250         494
                         500         42
                         750         29
======================  ===========  =========

The HP 5406zl curve is not tabulated in the paper; we synthesize one that is
qualitatively similar (slower than the Pica8 at low occupancy, between the
two elsewhere), consistent with the relative orderings visible in Figs 8-9.
This substitution is recorded in DESIGN.md.
"""

from __future__ import annotations

from typing import Dict, List

from .timing import EmpiricalTimingModel, IdealTimingModel


def _points_from_rates(rate_by_occupancy: Dict[int, float]) -> List[tuple]:
    """Convert Table 1-style (occupancy -> updates/s) into latency points."""
    return [(occ, 1.0 / rate) for occ, rate in sorted(rate_by_occupancy.items())]


def pica8_p3290() -> EmpiricalTimingModel:
    """Pica8 P-3290 (Broadcom Firebolt-3 ASIC, 108 KB TCAM, ~3072 entries)."""
    return EmpiricalTimingModel(
        name="Pica8 P-3290",
        capacity=3072,
        occupancy_latency_points=_points_from_rates(
            {50: 1266.0, 200: 114.0, 1000: 23.0, 2000: 12.0}
        ),
    )


def dell_8132f() -> EmpiricalTimingModel:
    """Dell PowerConnect 8132F (Broadcom Trident+ ASIC, 54 KB TCAM, ~1536 entries)."""
    return EmpiricalTimingModel(
        name="Dell 8132F",
        capacity=1536,
        occupancy_latency_points=_points_from_rates(
            {50: 970.0, 250: 494.0, 500: 42.0, 750: 29.0}
        ),
    )


def hp_5406zl() -> EmpiricalTimingModel:
    """HP 5406zl (synthesized curve; see module docstring and DESIGN.md)."""
    return EmpiricalTimingModel(
        name="HP 5406zl",
        capacity=1500,
        occupancy_latency_points=_points_from_rates(
            {50: 600.0, 250: 150.0, 500: 60.0, 1000: 20.0}
        ),
    )


def ideal_switch() -> IdealTimingModel:
    """A switch with zero control-plane latency (Fig 1's reference line)."""
    return IdealTimingModel()


_FACTORIES = {
    "pica8-p3290": pica8_p3290,
    "dell-8132f": dell_8132f,
    "hp-5406zl": hp_5406zl,
    "ideal": ideal_switch,
}

SWITCH_MODEL_NAMES = tuple(sorted(_FACTORIES))


def get_switch_model(name: str) -> EmpiricalTimingModel:
    """Look up a switch timing model by its registry key.

    Accepted keys: ``pica8-p3290``, ``dell-8132f``, ``hp-5406zl``, ``ideal``
    (case-insensitive; spaces and underscores map to hyphens).
    """
    key = name.strip().lower().replace(" ", "-").replace("_", "-")
    try:
        return _FACTORIES[key]()
    except KeyError:
        raise KeyError(
            f"unknown switch model {name!r}; known models: {', '.join(SWITCH_MODEL_NAMES)}"
        ) from None


def commodity_switch_models() -> List[EmpiricalTimingModel]:
    """The three commodity switches the paper evaluates (fresh instances)."""
    return [dell_8132f(), hp_5406zl(), pica8_p3290()]
