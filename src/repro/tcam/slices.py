"""TCAM carving (slicing).

Commercial switches let operators subdivide a physical TCAM into logically
disjoint *slices* (Cisco "TCAM carving", Broadcom SDK groups — Section 6 of
the paper).  Each slice has its own size and key and can be targeted
independently by insert/delete/modify; lookups run across all slices in
parallel with conflicts resolved by pre-configured slice priorities.

Hermes is implemented on top of carving: the shadow table is a small slice
and the main table a large slice of the same physical TCAM, with the shadow
slice at higher lookup priority.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .rule import Rule
from .table import TcamTable
from .timing import EmpiricalTimingModel


@dataclass(frozen=True)
class SliceConfig:
    """Configuration of one TCAM slice.

    Attributes:
        name: slice label (e.g. ``"shadow"``, ``"main"``).
        capacity: number of entries carved out for this slice.
        lookup_priority: slices with larger values win cross-slice conflicts.
    """

    name: str
    capacity: int
    lookup_priority: int

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"slice {self.name!r} needs positive capacity")


class CarvedTcam:
    """A physical TCAM carved into named slices.

    Every slice behaves as an independent :class:`TcamTable` whose insertion
    cost depends on the *slice's own occupancy* — the property Hermes
    exploits: a small, mostly-empty shadow slice has bounded insert latency
    regardless of how full the main slice is.
    """

    def __init__(
        self,
        timing: EmpiricalTimingModel,
        configs: Sequence[SliceConfig],
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        """Carve ``timing.capacity`` entries into the given slices.

        Raises:
            ValueError: when slice names collide or the carve exceeds the
                physical capacity.
        """
        names = [config.name for config in configs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate slice names: {names}")
        total = sum(config.capacity for config in configs)
        if total > timing.capacity:
            raise ValueError(
                f"carve of {total} entries exceeds physical capacity {timing.capacity}"
            )
        self.timing = timing
        self._configs: Dict[str, SliceConfig] = {c.name: c for c in configs}
        self._slices: Dict[str, TcamTable] = {
            config.name: TcamTable(
                timing, capacity=config.capacity, name=config.name, rng=rng
            )
            for config in configs
        }

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def slice(self, name: str) -> TcamTable:
        """Return the slice with the given name.

        Raises:
            KeyError: when no such slice was carved.
        """
        return self._slices[name]

    def slice_names(self) -> List[str]:
        """Slice names in descending lookup-priority order."""
        return sorted(
            self._configs, key=lambda name: -self._configs[name].lookup_priority
        )

    def recarve(self, name: str, capacity: int) -> None:
        """Resize one slice in place (operator reconfiguration, Section 7).

        Raises:
            KeyError: when no such slice exists.
            ValueError: when the new total exceeds the physical capacity or
                the slice currently holds more rules than the new size.
        """
        if name not in self._slices:
            raise KeyError(f"no slice named {name!r}")
        if capacity <= 0:
            raise ValueError(f"slice {name!r} needs positive capacity")
        new_total = (
            self.total_capacity - self._configs[name].capacity + capacity
        )
        if new_total > self.timing.capacity:
            raise ValueError(
                f"recarve to {new_total} entries exceeds physical capacity "
                f"{self.timing.capacity}"
            )
        table = self._slices[name]
        if table.occupancy > capacity:
            raise ValueError(
                f"slice {name!r} holds {table.occupancy} rules; cannot shrink "
                f"to {capacity}"
            )
        old = self._configs[name]
        self._configs[name] = SliceConfig(old.name, capacity, old.lookup_priority)
        table.capacity = capacity

    @property
    def total_capacity(self) -> int:
        """Sum of all carved slice capacities."""
        return sum(config.capacity for config in self._configs.values())

    @property
    def total_occupancy(self) -> int:
        """Total rules installed across all slices."""
        return sum(table.occupancy for table in self._slices.values())

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def lookup(self, key: int) -> Optional[Tuple[str, Rule]]:
        """Parallel lookup across slices; the hardware resolves conflicts.

        Each slice returns at most one match; the match from the slice with
        the highest ``lookup_priority`` wins.  Returns ``(slice_name, rule)``
        or ``None`` on a full miss.
        """
        for name in self.slice_names():
            rule = self._slices[name].lookup(key)
            if rule is not None:
                return name, rule
        return None

    def find_rule(self, rule_id: int) -> Optional[Tuple[str, Rule]]:
        """Locate a rule by id across slices; returns (slice_name, rule) or None."""
        for name, table in self._slices.items():
            if rule_id in table:
                return name, table.get(rule_id)
        return None

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}={table.occupancy}/{table.capacity}"
            for name, table in self._slices.items()
        )
        return f"CarvedTcam({self.timing.name!r}: {parts})"
