"""General ternary (value/mask) matches.

A TCAM entry matches on a *ternary* key: every bit is 0, 1, or don't-care.
IPv4 prefixes are the special case where the care bits are a contiguous
high-order run.  Hermes's partitioner (Algorithm 1) is defined over arbitrary
ternary rules; this module supplies overlap detection, containment,
intersection, and subtraction for them, mirroring the ACL-optimization
primitives the paper borrows from EffiCuts [59].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .prefix import MAX_PREFIX_LEN, Prefix


@dataclass(frozen=True, order=True)
class TernaryMatch:
    """A ternary match over a ``width``-bit key.

    Attributes:
        value: the cared-for bit values; bits outside ``mask`` must be zero.
        mask: set bits are *care* bits; clear bits are wildcards.
        width: key width in bits (32 for plain IPv4 destination matches).
    """

    value: int
    mask: int
    width: int = MAX_PREFIX_LEN

    def __post_init__(self) -> None:
        limit = 1 << self.width
        if not 0 <= self.mask < limit:
            raise ValueError(f"mask {self.mask:#x} does not fit in {self.width} bits")
        if not 0 <= self.value < limit:
            raise ValueError(f"value {self.value:#x} does not fit in {self.width} bits")
        if self.value & ~self.mask:
            raise ValueError("value has bits set outside the mask")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def wildcard(cls, width: int = MAX_PREFIX_LEN) -> "TernaryMatch":
        """Return the match-everything entry (all bits don't-care)."""
        return cls(0, 0, width)

    @classmethod
    def from_prefix(cls, prefix: Prefix) -> "TernaryMatch":
        """Convert an IPv4 prefix to its ternary equivalent."""
        return cls(prefix.network, prefix.mask, MAX_PREFIX_LEN)

    @classmethod
    def from_string(cls, text: str) -> "TernaryMatch":
        """Parse either a prefix string (``"10.0.0.0/8"``) or a bit pattern.

        Bit patterns use ``0``, ``1``, and ``*``, most-significant bit first,
        e.g. ``"10**"`` is a 4-bit match for keys 0b1000..0b1011.
        """
        if set(text) <= {"0", "1", "*"} and len(text) > 0 and "." not in text:
            width = len(text)
            value = 0
            mask = 0
            for char in text:
                value <<= 1
                mask <<= 1
                if char == "1":
                    value |= 1
                    mask |= 1
                elif char == "0":
                    mask |= 1
            return cls(value, mask, width)
        return cls.from_prefix(Prefix.from_string(text))

    def __str__(self) -> str:
        prefix = self.to_prefix()
        if prefix is not None:
            return str(prefix)
        bits = []
        for position in range(self.width - 1, -1, -1):
            bit = 1 << position
            if not self.mask & bit:
                bits.append("*")
            else:
                bits.append("1" if self.value & bit else "0")
        return "".join(bits)

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    @property
    def care_bits(self) -> int:
        """The number of non-wildcard bits."""
        return bin(self.mask).count("1")

    @property
    def size(self) -> int:
        """The number of concrete keys this match covers."""
        return 1 << (self.width - self.care_bits)

    def matches(self, key: int) -> bool:
        """Return True when the concrete ``key`` matches this entry."""
        return (key & self.mask) == self.value

    def overlaps(self, other: "TernaryMatch") -> bool:
        """Return True when some concrete key matches both entries.

        Two ternary matches overlap iff they agree on every bit both care
        about: ``(v1 ^ v2) & m1 & m2 == 0``.
        """
        self._check_width(other)
        return (self.value ^ other.value) & self.mask & other.mask == 0

    def contains(self, other: "TernaryMatch") -> bool:
        """Return True when every key matched by ``other`` matches ``self``."""
        self._check_width(other)
        if self.mask & ~other.mask:
            return False  # self cares about a bit other wildcards
        return (self.value ^ other.value) & self.mask == 0

    # ------------------------------------------------------------------
    # Set operations
    # ------------------------------------------------------------------
    def intersect(self, other: "TernaryMatch") -> Optional["TernaryMatch"]:
        """Return the match covering exactly the keys matched by both.

        The intersection of two overlapping ternary matches is itself a
        ternary match (the union of care bits); returns None when disjoint.
        """
        if not self.overlaps(other):
            return None
        mask = self.mask | other.mask
        value = (self.value & self.mask) | (other.value & other.mask)
        return TernaryMatch(value, mask, self.width)

    def subtract(self, other: "TernaryMatch") -> List["TernaryMatch"]:
        """Return matches covering exactly ``self`` minus ``other``.

        This generalizes prefix cutting: for each care bit of the
        intersection that ``self`` wildcards, emit one fragment that agrees
        with the overlap on all previously-processed bits and *disagrees* on
        this one.  The fragments are pairwise disjoint and their union with
        ``self ∩ other`` is ``self``.
        """
        overlap = self.intersect(other)
        if overlap is None:
            return [self]
        if other.contains(self):
            return []
        fragments: List[TernaryMatch] = []
        fixed_mask = self.mask
        fixed_value = self.value
        for position in range(self.width - 1, -1, -1):
            bit = 1 << position
            if overlap.mask & bit and not self.mask & bit:
                # Fragment: agree with the overlap on the bits fixed so far,
                # flip this bit relative to the overlap's value.
                fragment_mask = fixed_mask | bit
                fragment_value = (fixed_value & fixed_mask) | (
                    (overlap.value ^ bit) & bit
                )
                fragments.append(TernaryMatch(fragment_value, fragment_mask, self.width))
                # Then constrain future fragments to match the overlap here.
                fixed_mask |= bit
                fixed_value = (fixed_value & ~bit) | (overlap.value & bit)
        return fragments

    def to_prefix(self) -> Optional[Prefix]:
        """Return the equivalent :class:`Prefix`, or None if not prefix-shaped."""
        if self.width != MAX_PREFIX_LEN:
            return None
        length = 0
        for position in range(self.width - 1, -1, -1):
            if self.mask & (1 << position):
                length += 1
            else:
                break
        if self.mask != (((1 << length) - 1) << (self.width - length) if length else 0):
            return None
        return Prefix(self.value, length)

    @property
    def is_prefix(self) -> bool:
        """Return True when the care bits form a contiguous high-order run."""
        return self.to_prefix() is not None

    def _check_width(self, other: "TernaryMatch") -> None:
        if self.width != other.width:
            raise ValueError(
                f"width mismatch: {self.width} vs {other.width}"
            )
