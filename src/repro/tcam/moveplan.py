"""TCAM update planning: minimal-movement insertion orders.

The migration path charges pre-planned batch writes at the empty-table
cost, citing update optimizers in the spirit of RuleTris [62].  This module
implements the planning itself, so the claim is backed by code:

* a rule-dependency analysis (rule A must sit physically above rule B iff
  they overlap and A has strictly higher priority — independent rules can
  be placed in any relative order);
* a placement planner that lays a batch of rules into free TCAM slots in
  dependency (topological) order, so no resident entry ever needs to move;
* a per-insertion move-count model for *online* inserts (how many entries a
  naive priority-ordered TCAM would shift, versus the dependency-aware
  bound).

The planner's output is what justifies ``TcamTable.insert(planned=True)``:
when placements are computed offline, each write lands in a known free slot
and costs the base write latency instead of the shifting cost.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from .rule import Rule


def dependency_edges(rules: Sequence[Rule]) -> List[Tuple[int, int]]:
    """Edges (above, below) of the rule dependency DAG.

    ``(a, b)`` means rule ``a`` must be matched before rule ``b``: they
    overlap and ``a`` has strictly higher priority.  Non-overlapping rules
    are unordered — the freedom every TCAM update optimizer exploits.
    """
    edges: List[Tuple[int, int]] = []
    for i, upper in enumerate(rules):
        for j, lower in enumerate(rules):
            if i == j:
                continue
            if upper.priority > lower.priority and upper.overlaps(lower):
                edges.append((upper.rule_id, lower.rule_id))
    return edges


def topological_layers(rules: Sequence[Rule]) -> List[List[Rule]]:
    """Group rules into dependency layers (Kahn's algorithm).

    Layer k contains rules all of whose dominators sit in layers < k.
    Rules within one layer are mutually independent and may occupy any
    relative TCAM positions.

    Raises:
        ValueError: never for priority-based dependencies (they are
            acyclic by construction), but defensively if a cycle appears.
    """
    by_id = {rule.rule_id: rule for rule in rules}
    indegree: Dict[int, int] = {rule.rule_id: 0 for rule in rules}
    successors: Dict[int, List[int]] = {rule.rule_id: [] for rule in rules}
    for above, below in dependency_edges(rules):
        indegree[below] += 1
        successors[above].append(below)
    frontier = sorted(
        (rule_id for rule_id, degree in indegree.items() if degree == 0),
    )
    layers: List[List[Rule]] = []
    seen = 0
    while frontier:
        layers.append([by_id[rule_id] for rule_id in frontier])
        seen += len(frontier)
        next_frontier: Set[int] = set()
        for rule_id in frontier:
            for successor in successors[rule_id]:
                indegree[successor] -= 1
                if indegree[successor] == 0:
                    next_frontier.add(successor)
        frontier = sorted(next_frontier)
    if seen != len(rules):
        raise ValueError("dependency graph has a cycle (corrupt priorities?)")
    return layers


@dataclass(frozen=True)
class PlacementPlan:
    """A zero-shift write plan for a batch of rules.

    Attributes:
        order: the rules in write order (dependency-layered).
        slots: physical slot index assigned to each rule, aligned with
            ``order``.
        moves_avoided: entries a naive one-at-a-time priority insert into
            the same table would have shifted.
    """

    order: Tuple[Rule, ...]
    slots: Tuple[int, ...]
    moves_avoided: int


def plan_batch_placement(
    batch: Sequence[Rule],
    resident: Sequence[Rule],
    capacity: int,
) -> PlacementPlan:
    """Plan slot assignments for ``batch`` below the resident region.

    The resident rules occupy slots ``[0, len(resident))`` in their current
    order.  The plan writes the batch into the free region in dependency
    order; because lookups take the first match and cross-layer order is
    already priority-consistent, no resident entry moves.

    Only *batch-internal* dependencies constrain the plan.  A batch rule
    that must sit above a resident rule cannot be placed in the free region
    below — those rules are flagged by :func:`conflicts_with_resident` and
    must take the online (shifting) path instead.

    Raises:
        ValueError: when the batch does not fit in the free region.
    """
    free_slots = capacity - len(resident)
    if len(batch) > free_slots:
        raise ValueError(
            f"batch of {len(batch)} rules exceeds the {free_slots} free slots"
        )
    order: List[Rule] = [
        rule for layer in topological_layers(batch) for rule in layer
    ]
    base = len(resident)
    slots = tuple(range(base, base + len(order)))
    moves = naive_shift_count(batch, resident)
    return PlacementPlan(order=tuple(order), slots=slots, moves_avoided=moves)


def conflicts_with_resident(batch: Sequence[Rule], resident: Sequence[Rule]) -> List[Rule]:
    """Batch rules that dominate some resident rule (must shift, not append).

    A batch rule with higher priority than an overlapping resident rule
    cannot be appended below it; planners hand these to the online path.
    """
    conflicted: List[Rule] = []
    for candidate in batch:
        for installed in resident:
            if candidate.priority > installed.priority and candidate.overlaps(
                installed
            ):
                conflicted.append(candidate)
                break
    return conflicted


def naive_shift_count(batch: Sequence[Rule], resident: Sequence[Rule]) -> int:
    """Entries a naive priority-ordered TCAM shifts inserting ``batch``.

    Models the strictest (and most common) firmware layout: entries sorted
    by priority descending, each insert placed at the bottom of its
    priority class, shifting everything below.
    """
    ascending = sorted(rule.priority for rule in resident)
    total_shifts = 0
    for rule in sorted(batch, key=lambda r: -r.priority):
        # Entries with strictly lower priority sit below the insertion
        # point and must shift down one slot each.
        below = bisect.bisect_left(ascending, rule.priority)
        total_shifts += below
        ascending.insert(below, rule.priority)
    return total_shifts
