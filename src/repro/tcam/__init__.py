"""TCAM substrate: prefix/ternary algebra, tables, slices, timing models.

This package models the hardware layer of the paper: the behaviour of TCAM
memory (ordered storage, shift-on-insert), the empirical per-switch latency
profiles from Table 1, and the slice-carving mechanism Hermes is built on.
"""

from .moveplan import (
    PlacementPlan,
    conflicts_with_resident,
    dependency_edges,
    naive_shift_count,
    plan_batch_placement,
    topological_layers,
)
from .prefix import Prefix, covers_same_addresses, merge_prefixes
from .trie import PrefixRuleIndex, PrefixTrie
from .rule import Action, Rule
from .slices import CarvedTcam, SliceConfig
from .table import (
    ControlActionResult,
    RuleNotFoundError,
    TableFullError,
    TableStats,
    TcamError,
    TcamTable,
)
from .ternary import TernaryMatch
from .timing import EmpiricalTimingModel, IdealTimingModel, InsertOrder
from .switch_models import (
    SWITCH_MODEL_NAMES,
    commodity_switch_models,
    dell_8132f,
    get_switch_model,
    hp_5406zl,
    ideal_switch,
    pica8_p3290,
)

__all__ = [
    "Action",
    "CarvedTcam",
    "ControlActionResult",
    "EmpiricalTimingModel",
    "IdealTimingModel",
    "InsertOrder",
    "PlacementPlan",
    "PrefixRuleIndex",
    "PrefixTrie",
    "Prefix",
    "Rule",
    "RuleNotFoundError",
    "SWITCH_MODEL_NAMES",
    "SliceConfig",
    "TableFullError",
    "TableStats",
    "TcamError",
    "TcamTable",
    "TernaryMatch",
    "commodity_switch_models",
    "conflicts_with_resident",
    "covers_same_addresses",
    "dell_8132f",
    "dependency_edges",
    "get_switch_model",
    "hp_5406zl",
    "ideal_switch",
    "merge_prefixes",
    "naive_shift_count",
    "pica8_p3290",
    "plan_batch_placement",
    "topological_layers",
]
