"""Empirical TCAM control-action timing models.

The paper's simulator drives all control-plane latencies from empirical switch
measurements (Kuźniar et al. [42], He et al. [38], Lazaris et al. [43]):

* insertion latency grows with flow-table occupancy (Table 1 of the paper);
* inserts carrying priorities (i.e. requiring entry shifting) are about 5x
  slower than priority-free appends;
* inserting in descending priority order is up to 10x slower than ascending;
* deletions are fast and priority-independent;
* modifications are ~constant unless they change the priority.

:class:`EmpiricalTimingModel` encodes exactly this: a piecewise-linear
interpolation of published (occupancy -> latency) points, multiplicative
priority/order penalties, and seeded lognormal noise for run-to-run variation.
The *worst-case* latency at a given occupancy is deterministic and is what
Hermes's shadow sizing (Fig 14) is computed from.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np


class InsertOrder(enum.Enum):
    """The priority ordering of an insertion batch, which scales latency.

    Measurements show ascending-priority insertion can be ~10x faster than
    descending.  We treat the empirical occupancy curve as the random-order
    baseline and scale around it.
    """

    ASCENDING = 0.5
    RANDOM = 1.0
    DESCENDING = 5.0


@dataclass
class EmpiricalTimingModel:
    """Occupancy-driven latency model for TCAM control actions.

    Attributes:
        name: human-readable switch name.
        capacity: number of TCAM entries the table holds.
        occupancy_latency_points: published (occupancy, seconds-per-update)
            samples; latency is interpolated piecewise-linearly between them
            and extrapolated with the final segment's slope.
        priority_penalty: slowdown for inserts that shift entries, relative
            to a priority-free append (paper: ~5x).
        delete_latency: constant rule-deletion latency in seconds.
        modify_latency: constant rule-modification latency (no priority
            change) in seconds.
        noise_sigma: sigma of the multiplicative lognormal latency noise.
    """

    name: str
    capacity: int
    occupancy_latency_points: Sequence[Tuple[int, float]]
    priority_penalty: float = 5.0
    delete_latency: float = 1e-4
    modify_latency: float = 2e-4
    noise_sigma: float = 0.20
    _occupancies: np.ndarray = field(init=False, repr=False)
    _latencies: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.occupancy_latency_points:
            raise ValueError("timing model needs at least one (occupancy, latency) point")
        points = sorted(self.occupancy_latency_points)
        occupancies = [occ for occ, _ in points]
        latencies = [lat for _, lat in points]
        if occupancies[0] > 0:
            # Anchor the curve at zero occupancy: an insert into an empty
            # table still costs something (bus + firmware overhead); half the
            # first measured latency is a conservative floor.
            occupancies.insert(0, 0)
            latencies.insert(0, latencies[0] / 2.0)
        self._occupancies = np.asarray(occupancies, dtype=float)
        self._latencies = np.asarray(latencies, dtype=float)
        if np.any(np.diff(self._latencies) < 0):
            raise ValueError(f"{self.name}: latency must be non-decreasing in occupancy")

    # ------------------------------------------------------------------
    # Core curve
    # ------------------------------------------------------------------
    def base_insertion_latency(self, occupancy: int) -> float:
        """Deterministic insertion latency (seconds) at the given occupancy.

        This is the priority-shifting insert cost: the published occupancy
        curves were measured with rule sets that force entry movement.
        """
        if occupancy < 0:
            raise ValueError("occupancy cannot be negative")
        occ = float(min(occupancy, self.capacity))
        if occ >= self._occupancies[-1]:
            # Extrapolate with the slope of the last measured segment.
            x0, x1 = self._occupancies[-2], self._occupancies[-1]
            y0, y1 = self._latencies[-2], self._latencies[-1]
            slope = (y1 - y0) / (x1 - x0)
            return float(y1 + slope * (occ - x1))
        return float(np.interp(occ, self._occupancies, self._latencies))

    def insertion_latency(
        self,
        occupancy: int,
        *,
        shifts: Optional[int] = None,
        order: InsertOrder = InsertOrder.RANDOM,
        rng: Optional[np.random.Generator] = None,
    ) -> float:
        """Sample the latency (seconds) of one insertion.

        Args:
            occupancy: entries already in the table.
            shifts: how many resident entries the insert displaces; ``0``
                means an append (no shifting), which is ~priority_penalty
                times cheaper.  ``None`` assumes worst-position insertion.
            order: the priority ordering of the surrounding batch.
            rng: optional generator for multiplicative lognormal noise; when
                omitted the deterministic mean latency is returned.
        """
        latency = self.base_insertion_latency(occupancy)
        if shifts == 0:
            latency /= self.priority_penalty
        elif shifts is not None and occupancy > 0:
            # Scale with the fraction of the table actually shifted, but
            # never below the priority-free floor.
            fraction = min(1.0, shifts / occupancy)
            floor = latency / self.priority_penalty
            latency = floor + (latency - floor) * fraction
        latency *= order.value
        if rng is not None and self.noise_sigma > 0:
            latency *= float(rng.lognormal(mean=0.0, sigma=self.noise_sigma))
        return latency

    def worst_case_insertion_latency(self, occupancy: int) -> float:
        """Deterministic upper bound on insertion latency at ``occupancy``.

        Hermes sizes the shadow table from this bound (Fig 14): the bound
        assumes a full-table shift with a priority-carrying rule, i.e. the
        raw empirical curve.
        """
        return self.base_insertion_latency(occupancy)

    def max_occupancy_for_guarantee(self, guarantee: float) -> int:
        """Largest occupancy whose worst-case insert latency fits ``guarantee``.

        Args:
            guarantee: latency budget in seconds.

        Returns:
            The maximal occupancy (possibly 0 when even an empty-table insert
            exceeds the budget) capped at table capacity.
        """
        if self.worst_case_insertion_latency(0) > guarantee:
            return 0
        low, high = 0, self.capacity
        while low < high:
            mid = (low + high + 1) // 2
            if self.worst_case_insertion_latency(mid) <= guarantee:
                low = mid
            else:
                high = mid - 1
        return low

    # ------------------------------------------------------------------
    # Other control actions
    # ------------------------------------------------------------------
    def deletion_latency(self, rng: Optional[np.random.Generator] = None) -> float:
        """Sample the latency (seconds) of one rule deletion."""
        return self._constant_with_noise(self.delete_latency, rng)

    def modification_latency(self, rng: Optional[np.random.Generator] = None) -> float:
        """Sample the latency (seconds) of one non-priority rule modification."""
        return self._constant_with_noise(self.modify_latency, rng)

    def update_rate(self, occupancy: int) -> float:
        """Sustained updates/second at the given occupancy (Table 1's metric)."""
        return 1.0 / self.base_insertion_latency(occupancy)

    def _constant_with_noise(
        self, latency: float, rng: Optional[np.random.Generator]
    ) -> float:
        if rng is not None and self.noise_sigma > 0:
            return latency * float(rng.lognormal(mean=0.0, sigma=self.noise_sigma))
        return latency


@dataclass
class IdealTimingModel(EmpiricalTimingModel):
    """A zero-latency switch, the paper's no-control-latency baseline."""

    def __init__(self, capacity: int = 4096) -> None:
        super().__init__(
            name="Ideal",
            capacity=capacity,
            occupancy_latency_points=[(0, 0.0), (capacity, 0.0)],
            priority_penalty=1.0,
            delete_latency=0.0,
            modify_latency=0.0,
            noise_sigma=0.0,
        )

    def base_insertion_latency(self, occupancy: int) -> float:  # noqa: D102
        return 0.0

    def max_occupancy_for_guarantee(self, guarantee: float) -> int:  # noqa: D102
        return self.capacity

    def update_rate(self, occupancy: int) -> float:  # noqa: D102
        return math.inf
