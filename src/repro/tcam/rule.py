"""TCAM rule representation.

A rule couples a ternary match with a priority and a forwarding action.  The
partitioner additionally needs to know a rule's lineage — which original
logical rule a shadow-table fragment was cut from — so rules carry a stable
``rule_id`` and fragments record their ``origin_id``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Optional

from .prefix import Prefix
from .ternary import TernaryMatch

_rule_counter = itertools.count(1)


def _next_rule_id() -> int:
    return next(_rule_counter)


@dataclass(frozen=True)
class Action:
    """A forwarding action: output port, drop, or send to controller."""

    kind: str = "output"  # "output" | "drop" | "controller"
    port: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in ("output", "drop", "controller"):
            raise ValueError(f"unknown action kind {self.kind!r}")
        if self.kind == "output" and self.port is None:
            raise ValueError("output actions require a port")

    @classmethod
    def output(cls, port: int) -> "Action":
        """Forward matching packets out of ``port``."""
        return cls("output", port)

    @classmethod
    def drop(cls) -> "Action":
        """Silently discard matching packets."""
        return cls("drop")

    @classmethod
    def to_controller(cls) -> "Action":
        """Punt matching packets to the SDN controller."""
        return cls("controller")

    def __str__(self) -> str:
        if self.kind == "output":
            return f"output:{self.port}"
        return self.kind


@dataclass(frozen=True)
class Rule:
    """A TCAM rule: ternary match + priority + action.

    Higher ``priority`` wins.  ``rule_id`` identifies the rule across tables;
    ``origin_id`` is set on fragments produced by the partitioner and points
    at the logical rule they were cut from (``None`` for unfragmented rules).
    """

    match: TernaryMatch
    priority: int
    action: Action
    rule_id: int = field(default_factory=_next_rule_id)
    origin_id: Optional[int] = None

    @classmethod
    def from_prefix(
        cls,
        prefix: "Prefix | str",
        priority: int,
        action: Action,
        **kwargs,
    ) -> "Rule":
        """Build a rule from an IPv4 prefix (object or ``"a.b.c.d/len"``)."""
        if isinstance(prefix, str):
            prefix = Prefix.from_string(prefix)
        return cls(TernaryMatch.from_prefix(prefix), priority, action, **kwargs)

    def overlaps(self, other: "Rule") -> bool:
        """Return True when some packet could match both rules."""
        return self.match.overlaps(other.match)

    def shadows(self, other: "Rule") -> bool:
        """Return True when this rule takes precedence over an overlapping ``other``."""
        return self.priority > other.priority and self.overlaps(other)

    def with_match(self, match: TernaryMatch) -> "Rule":
        """Return a fragment of this rule with a narrower match.

        The fragment keeps the action and priority but gets a fresh
        ``rule_id`` and records this rule as its origin.
        """
        origin = self.origin_id if self.origin_id is not None else self.rule_id
        return replace(self, match=match, rule_id=_next_rule_id(), origin_id=origin)

    def with_priority(self, priority: int) -> "Rule":
        """Return a copy of this rule at a different priority (same identity)."""
        return replace(self, priority=priority)

    def __str__(self) -> str:
        return f"Rule#{self.rule_id}({self.match}, prio={self.priority}, {self.action})"
