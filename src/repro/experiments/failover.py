"""Extension: failure recovery time vs. TCAM-management scheme.

The paper's introduction motivates guarantees with use cases where
reconfiguration speed is *correctness*: "critical infrastructures ...
cyber-physical systems" need the network repaired within a deadline.  This
experiment injects link failures into a loaded fat tree and measures the
blackhole time — flow-seconds stranded on dead paths while the repair rules
crawl into the TCAMs.

Expected shape: blackhole time tracks the scheme's rule-installation
latency, so Hermes repairs an order of magnitude faster than a raw switch
under load, and the zero-latency control plane bounds what is achievable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..analysis import ExperimentResult
from ..baselines import make_installer
from ..simulator import Simulation, SimulationConfig, TeAppConfig
from ..tcam import get_switch_model
from ..topology import FatTreeSpec, build_fat_tree, hosts
from ..traffic import flows_of, generate_jobs
from .common import default_hermes_config

SCHEMES: Tuple[Tuple[str, str, str], ...] = (
    ("zero-latency", "naive", "ideal"),
    ("raw switch", "naive", "pica8-p3290"),
    ("ESPRES", "espres", "pica8-p3290"),
    ("Hermes", "hermes", "pica8-p3290"),
)


@dataclass
class FailoverConfig:
    """Workload and failure schedule."""

    fat_tree_k: int = 4
    link_capacity: float = 1e9
    job_count: int = 25
    failure_times: Tuple[float, ...] = (1.0, 2.0, 3.0)
    seed: int = 4


def _failure_schedule(graph, config: FailoverConfig):
    """Fail one distinct agg<->core link per failure time."""
    core_links = sorted(
        tuple(sorted((a, b)))
        for a, b in graph.edges
        if a.startswith(("agg", "core")) and b.startswith(("agg", "core"))
    )
    rng = np.random.default_rng(config.seed)
    picks = rng.choice(len(core_links), size=len(config.failure_times), replace=False)
    return tuple(
        (time, core_links[int(index)])
        for time, index in zip(config.failure_times, picks)
    )


def run_scheme(label: str, scheme: str, switch: str, config: FailoverConfig):
    """One scheme's run; returns (blackhole seconds, repair RIT p99 ms)."""
    graph = build_fat_tree(
        FatTreeSpec(k=config.fat_tree_k, link_capacity=config.link_capacity)
    )
    flows = flows_of(
        generate_jobs(
            hosts(graph),
            job_count=config.job_count,
            arrival_rate=6.0,
            rng=np.random.default_rng(config.seed),
        )
    )
    sim_config = SimulationConfig(
        te=TeAppConfig(epoch=10.0),  # failures only: no TE noise
        baseline_occupancy=500,
        max_time=600.0,
        link_failures=_failure_schedule(graph, config),
    )
    hermes_config = default_hermes_config() if scheme == "hermes" else None
    factory = lambda name: make_installer(
        scheme, get_switch_model(switch), hermes_config=hermes_config
    )
    simulation = Simulation(graph, flows, factory, sim_config)
    metrics = simulation.run()
    rits = metrics.rits()
    p99 = float(np.percentile(rits, 99) * 1e3) if rits else 0.0
    return simulation.blackhole_time, p99, metrics.total_reroutes()


def run(config: FailoverConfig = FailoverConfig()) -> ExperimentResult:
    """Compare failure-recovery behaviour across schemes."""
    rows: List[tuple] = []
    for label, scheme, switch in SCHEMES:
        blackhole, p99, reroutes = run_scheme(label, scheme, switch, config)
        rows.append(
            (label, round(blackhole * 1e3, 3), round(p99, 3), reroutes)
        )
    return ExperimentResult(
        experiment_id="Extension (failure recovery)",
        title="Blackhole time after link failures vs. scheme",
        headers=[
            "scheme",
            "blackhole time (ms, flow-seconds x1e3)",
            "repair RIT p99 (ms)",
            "repairs",
        ],
        rows=rows,
        notes=(
            "Blackhole time sums, over all affected flows, the window "
            "between a link failure and the activation of the repaired "
            "path. Shape: it tracks rule-installation latency — Hermes "
            "repairs near the zero-latency bound, the raw switch pays its "
            "occupancy-driven TCAM cost on every repair rule."
        ),
    )
