"""Shared machinery for the per-figure experiment modules.

Every experiment module exposes ``run(config) -> ExperimentResult`` with a
config dataclass defaulting to a *quick* scale that completes in seconds
(the benchmarks use it).  Passing ``full=True`` moves to paper scale (k=16
fat tree, thousands of jobs); the shapes are identical, the tails longer.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence

import networkx as nx
import numpy as np

from ..baselines import make_installer
from ..core import GuaranteeSpec, HermesConfig
from ..engine.rng import RngStreams
from ..obs.tracer import Tracer, get_tracer, use_tracer
from ..simulator import Simulation, SimulationConfig, TeAppConfig
from ..switchsim import SwitchAgent
from ..tcam import get_switch_model
from ..topology import FatTreeSpec, build_fat_tree, get_isp_topology, hosts, pops
from ..traffic import (
    TimedFlowMod,
    flows_from_matrix,
    flows_of,
    generate_jobs,
    gravity_matrix,
    is_short_job,
    tomogravity_matrix,
    link_loads_from_matrix,
)

SWITCHES_UNDER_TEST = ("dell-8132f", "hp-5406zl", "pica8-p3290")


@dataclass(frozen=True)
class WorkloadScale:
    """Knobs separating quick (benchmark) runs from paper-scale runs."""

    fat_tree_k: int = 4
    link_capacity: float = 1e9
    job_count: int = 40
    job_arrival_rate: float = 4.0
    isp_flow_duration: float = 6.0
    isp_mean_flow_size: float = 100e6
    isp_load_factor: float = 0.35  # fraction of total capacity offered
    seed: int = 0


QUICK_SCALE = WorkloadScale()
FULL_SCALE = WorkloadScale(
    fat_tree_k=16,
    link_capacity=40e9,
    job_count=2000,
    job_arrival_rate=25.0,
    isp_flow_duration=60.0,
)


def default_hermes_config(guarantee_ms: float = 5.0) -> HermesConfig:
    """The paper's default Hermes: Cubic Spline + Slack 100%, 5 ms."""
    return HermesConfig(
        guarantee=GuaranteeSpec.milliseconds(guarantee_ms),
        predictor="cubic-spline",
        corrector="slack",
        slack=1.0,
    )


def heterogeneous_installer_factory(
    scheme: str,
    model_by_role: Dict[str, str],
    default_switch: str = "pica8-p3290",
    hermes_config: Optional[HermesConfig] = None,
    seed: Optional[int] = None,
) -> Callable[[str], object]:
    """Per-role switch models (real fabrics mix hardware generations).

    ``model_by_role`` maps a switch-name prefix (``"edge"`` / ``"agg"`` /
    ``"core"``, or any prefix of your topology's naming scheme) to a switch
    model registry key; unmatched switches use ``default_switch``.
    """
    streams = RngStreams(seed) if seed is not None else None

    def factory(switch_name: str):
        switch = default_switch
        for role, model in model_by_role.items():
            if switch_name.startswith(role):
                switch = model
                break
        rng = None
        if streams is not None:
            rng = streams.stream(f"installer:{switch_name}")
        return make_installer(
            scheme,
            get_switch_model(switch),
            rng=rng,
            hermes_config=(
                replace(hermes_config) if hermes_config is not None else None
            ),
        )

    return factory


def installer_factory(
    scheme: str,
    switch: str,
    hermes_config: Optional[HermesConfig] = None,
    seed: Optional[int] = None,
) -> Callable[[str], object]:
    """A per-switch installer factory for the simulator.

    Each switch gets an independent installer (and an independent named
    :class:`~repro.engine.rng.RngStreams` stream when ``seed`` is given, so
    latency noise differs per switch but runs stay reproducible).
    """
    streams = RngStreams(seed) if seed is not None else None

    def factory(switch_name: str):
        rng = None
        if streams is not None:
            rng = streams.stream(f"installer:{switch_name}")
        return make_installer(
            scheme,
            get_switch_model(switch),
            rng=rng,
            hermes_config=(
                replace(hermes_config) if hermes_config is not None else None
            ),
        )

    return factory


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------
def facebook_workload(scale: WorkloadScale = QUICK_SCALE):
    """The Facebook MapReduce workload on a fat tree.

    Returns (graph, flows, short_job_ids, long_job_ids).
    """
    graph = build_fat_tree(
        FatTreeSpec(k=scale.fat_tree_k, link_capacity=scale.link_capacity)
    )
    jobs = generate_jobs(
        hosts(graph),
        job_count=scale.job_count,
        arrival_rate=scale.job_arrival_rate,
        rng=np.random.default_rng(scale.seed),
    )
    short_ids = {job.job_id for job in jobs if is_short_job(job)}
    long_ids = {job.job_id for job in jobs if not is_short_job(job)}
    return graph, flows_of(jobs), short_ids, long_ids


def isp_workload(name: str, scale: WorkloadScale = QUICK_SCALE, tomogravity: bool = False):
    """An ISP workload: gravity (or tomo-gravity) TM realized as flows.

    Returns (graph, flows).
    """
    graph = get_isp_topology(name)
    total_capacity = sum(data["capacity"] for _, _, data in graph.edges(data=True))
    matrix = gravity_matrix(
        pops(graph),
        total_traffic=scale.isp_load_factor * total_capacity,
        rng=np.random.default_rng(scale.seed),
    )
    if tomogravity:
        # The paper's §8.1.3 pipeline: derive link loads, re-estimate the
        # matrix tomographically, and use the estimate.
        loads = link_loads_from_matrix(graph, matrix)
        matrix = tomogravity_matrix(graph, loads)
    flows = flows_from_matrix(
        matrix,
        duration=scale.isp_flow_duration,
        mean_flow_size=scale.isp_mean_flow_size,
        rng=np.random.default_rng(scale.seed + 1),
    )
    return graph, flows


def te_simulation_config(
    scale: WorkloadScale = QUICK_SCALE, control_rtt: float = 0.25e-3
) -> SimulationConfig:
    """The TE-simulation parameters shared by Figures 1 and 8-10."""
    return SimulationConfig(
        control_rtt=control_rtt,
        te=TeAppConfig(
            epoch=0.2, utilization_threshold=0.5, max_moves_per_epoch=24
        ),
        k_paths=4,
        max_time=1200.0,
        baseline_occupancy=500,
        initial_path_policy="static",
    )


def run_te_simulation(
    graph: nx.Graph,
    flows,
    scheme: str,
    switch: str,
    hermes_config: Optional[HermesConfig] = None,
    config: Optional[SimulationConfig] = None,
    seed: int = 100,
    tracer: Optional[Tracer] = None,
):
    """Run one (workload x scheme x switch) simulation; returns (metrics, sim).

    Passing a :class:`~repro.obs.RecordingTracer` as ``tracer`` records
    the run's control-plane trace; None leaves the ambient (default no-op)
    tracer in place, so untraced runs are byte-identical to the seed.
    """
    factory = installer_factory(scheme, switch, hermes_config, seed=seed)
    with use_tracer(tracer if tracer is not None else get_tracer()):
        simulation = Simulation(
            graph,
            list(flows),
            factory,
            config if config is not None else te_simulation_config(),
        )
        metrics = simulation.run()
    return metrics, simulation


# ----------------------------------------------------------------------
# Canned scenarios (shared by the race CLI, the perf CLI, and CI)
# ----------------------------------------------------------------------
CANNED_SCENARIOS = ("demo", "fig01", "fig08", "chaos")


def canned_scenario(name: str):
    """Construct (but do not run) one canned end-to-end scenario.

    Returns ``(simulation, meta)`` — the caller attaches whatever
    instrumentation it wants (race sanitizer, wall-clock profiler) and
    drives ``simulation.run()`` itself.  Construction order is part of
    the parity contract: the race-sanitizer and profiler on/off tests pin
    digests of these exact runs, so RNG draws made while building must
    not move.  Callers that want a trace install a recording tracer
    around the *call* (agents capture the ambient tracer when built).
    """
    if name == "fig01":
        scale = WorkloadScale(job_count=10)
        graph, flows, _short, _long = facebook_workload(scale)
        config = te_simulation_config(scale)
        factory = installer_factory(
            "hermes", "pica8-p3290", default_hermes_config(), seed=100
        )
        simulation = Simulation(graph, list(flows), factory, config)
        meta = {"scenario": name, "scheme": "hermes", "switch": "pica8-p3290"}
    elif name == "fig08":
        scale = WorkloadScale(isp_flow_duration=3.0)
        graph, flows = isp_workload("geant", scale)
        config = te_simulation_config(scale, control_rtt=10e-3)
        factory = installer_factory(
            "hermes", "pica8-p3290", default_hermes_config(), seed=100
        )
        simulation = Simulation(graph, list(flows), factory, config)
        meta = {"scenario": name, "scheme": "hermes", "switch": "pica8-p3290"}
    elif name in ("demo", "chaos"):
        from ..faults import FaultInjector, FaultPlan, FlowModFault
        from ..switchsim import ChannelConfig

        graph = build_fat_tree(FatTreeSpec(k=4, link_capacity=1e9))
        flows = flows_of(
            generate_jobs(
                hosts(graph), job_count=4, arrival_rate=6.0,
                rng=np.random.default_rng(13),
            )
        )
        plan = FaultPlan(flowmod=FlowModFault(drop=0.1, ack_loss_fraction=0.3))
        injector = FaultInjector(plan=plan, seed=13)
        config = SimulationConfig(
            te=TeAppConfig(epoch=0.25),
            baseline_occupancy=200,
            max_time=2.5,
            channel="resilient",
            channel_config=ChannelConfig(),
            fault_plan=plan,
            fault_seed=13,
        )
        timing = get_switch_model("pica8-p3290")
        hermes_config = default_hermes_config()

        def factory(switch_name):
            return make_installer(
                "hermes", timing, hermes_config=hermes_config, injector=injector
            )

        simulation = Simulation(graph, flows, factory, config, injector=injector)
        meta = {
            "scenario": name,
            "scheme": "hermes",
            "switch": "pica8-p3290",
            "drop": 0.1,
            "seed": 13,
        }
    else:
        raise ValueError(
            f"unknown scenario {name!r}; known: {', '.join(CANNED_SCENARIOS)}"
        )
    return simulation, meta


# ----------------------------------------------------------------------
# Single-switch trace replay (microbench / BGP / time series)
# ----------------------------------------------------------------------
@dataclass
class ReplayOutcome:
    """Result of replaying a timed FlowMod trace against one switch.

    Attributes:
        response_times: queueing-inclusive per-action times (what a
            controller observes).
        execution_latencies: pure TCAM execution time per action (what the
            switch spends — the Figure 11 series).
        agent: the switch agent, for scheme-specific introspection.
    """

    response_times: List[float]
    execution_latencies: List[float]
    agent: SwitchAgent

    @property
    def installer(self):
        """The installer behind the replayed agent."""
        return self.agent.installer


def replay_trace(
    trace: Sequence[TimedFlowMod],
    scheme: str,
    switch: str,
    hermes_config: Optional[HermesConfig] = None,
    prefill_rules: Sequence = (),
    batch_window: Optional[float] = None,
    seed: int = 7,
    tracer: Optional[Tracer] = None,
) -> ReplayOutcome:
    """Replay a timed trace against a fresh single-switch installer.

    Args:
        trace: timed FlowMods, in time order.
        scheme: installer name (naive / hermes / tango / espres / ...).
        switch: switch-model registry key.
        hermes_config: forwarded when scheme == "hermes".
        prefill_rules: background rules installed before time starts.
        batch_window: when set, FlowMods arriving within the same window
            are submitted as one batch (gives Tango/ESPRES reordering and
            aggregation opportunities, as their controller-side batching
            would).
        seed: RNG seed for latency noise.
        tracer: optional recording tracer for the replayed agent; None
            uses the ambient (default no-op) tracer.
    """
    installer = make_installer(
        scheme,
        get_switch_model(switch),
        rng=np.random.default_rng(seed),
        hermes_config=replace(hermes_config) if hermes_config is not None else None,
    )
    if prefill_rules:
        installer.prefill(list(prefill_rules))
    agent = SwitchAgent(installer, name=f"{scheme}@{switch}", tracer=tracer)
    response_times: List[float] = []
    execution_latencies: List[float] = []

    def record(completed_actions) -> None:
        for action in completed_actions:
            response_times.append(action.response_time)
            execution_latencies.append(action.result.latency)

    if batch_window is None:
        for timed in trace:
            record([agent.submit(timed.flow_mod, at_time=timed.time)])
    else:
        batch: List[TimedFlowMod] = []
        batch_start = None
        for timed in trace:
            if batch_start is None or timed.time - batch_start <= batch_window:
                if batch_start is None:
                    batch_start = timed.time
                batch.append(timed)
                continue
            record(
                agent.submit_batch(
                    [item.flow_mod for item in batch], at_time=batch_start
                )
            )
            batch = [timed]
            batch_start = timed.time
        if batch:
            record(
                agent.submit_batch(
                    [item.flow_mod for item in batch], at_time=batch_start
                )
            )
    return ReplayOutcome(
        response_times=response_times,
        execution_latencies=execution_latencies,
        agent=agent,
    )
