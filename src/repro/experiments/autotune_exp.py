"""Extension: online slack auto-tuning (the paper's Section 8.6 future work).

"As part of future work, we will explore learning techniques to enable
Hermes to automatically tune itself."  This experiment evaluates our AIMD
slack controller: the Figure 13 stress workload (1000 updates/s, heavy
overlap) runs against

* fixed slack 0% (the under-provisioned operator),
* fixed slack 100% (the paper's hand-tuned recommendation),
* the auto-tuner starting from 40%.

Expected shape: the auto-tuner converges towards the workload's required
slack, ending with violation rates near the hand-tuned configuration —
without anyone choosing the number in advance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..analysis import ExperimentResult
from ..core import GuaranteeSpec, HermesConfig
from ..traffic import MicrobenchConfig, generate_trace, seed_rules
from .common import replay_trace


@dataclass
class AutotuneConfig:
    """Workload for the auto-tuning comparison."""

    switch: str = "dell-8132f"
    arrival_rate: float = 1000.0
    overlap_rate: float = 1.0
    duration: float = 2.0


def run_variant(label: str, config: AutotuneConfig, **hermes_overrides):
    """One (configuration, workload) run; returns the row for the table."""
    hermes_config = HermesConfig(
        guarantee=GuaranteeSpec.milliseconds(5),
        admission_control=False,
        lowest_priority_fastpath=False,
        **hermes_overrides,
    )
    trace_config = MicrobenchConfig(
        arrival_rate=config.arrival_rate,
        overlap_rate=config.overlap_rate,
        duration=config.duration,
    )
    outcome = replay_trace(
        generate_trace(trace_config),
        "hermes",
        config.switch,
        hermes_config=hermes_config,
        prefill_rules=seed_rules(trace_config),
    )
    installer = outcome.installer
    latencies = np.asarray(outcome.response_times)
    if installer.auto_tuner is not None:
        final_slack = installer.auto_tuner.slack
        adjustments = len(installer.auto_tuner.adjustments)
    else:
        final_slack = hermes_config.slack
        adjustments = 0
    return (
        label,
        round(float(latencies.mean() * 1e3), 3),
        round(float(np.percentile(latencies, 99) * 1e3), 3),
        round(installer.violation_percentage(), 2),
        round(final_slack, 3),
        adjustments,
    )


def run(config: AutotuneConfig = AutotuneConfig()) -> ExperimentResult:
    """Compare fixed-slack operation against the online auto-tuner."""
    rows: List[Tuple] = [
        run_variant("fixed slack 0%", config, slack=0.0),
        run_variant("fixed slack 100%", config, slack=1.0),
        run_variant("auto-tuned (start 40%)", config, auto_tune=True),
    ]
    return ExperimentResult(
        experiment_id="Extension (Section 8.6 future work)",
        title="Online slack auto-tuning vs. fixed configurations",
        headers=[
            "configuration",
            "mean latency (ms)",
            "p99 latency (ms)",
            "violations (%)",
            "final slack",
            "adjustments",
        ],
        rows=rows,
        notes=(
            "Shape: fixed 0% under-migrates (highest latency/violations); "
            "the auto-tuner raises its slack under pressure and lands near "
            "the hand-tuned 100% configuration's behaviour without manual "
            "tuning."
        ),
    )
