"""Figure 10: RIT comparison — Hermes vs. Tango vs. ESPRES.

The same rule streams as Figure 11, reported as CDFs.  Expected shape: all
three improve on a naive switch, but Tango's and ESPRES's distributions
spread widely with workload structure while Hermes's stays compressed —
the paper reports Hermes beating both by more than 50% at the median.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..analysis import ExperimentResult, median_improvement, percentile_summary
from .fig11_timeseries import Fig11Config, installation_series


@dataclass
class Fig10Config:
    """Stream parameters (shared with Figure 11) and report percentiles."""

    stream: Fig11Config = field(default_factory=Fig11Config)
    percentiles: Tuple[float, ...] = (50, 90, 95, 99)


def run(config: Fig10Config = Fig10Config()) -> ExperimentResult:
    """Regenerate the Figure 10 CDFs (reported at fixed percentiles)."""
    rows: List[tuple] = []
    notes_lines = [
        "Shape: Hermes's distribution is compressed near its guarantee;",
        "Tango and ESPRES vary with workload structure. Hermes's median",
        "improvement over each baseline:",
    ]
    for flavour in ("facebook", "geant"):
        series = installation_series(flavour, config.stream)
        hermes = series["Hermes"]
        for label in ("Tango", "ESPRES", "Hermes"):
            samples = series[label]
            if not samples:
                continue
            summary = percentile_summary(samples, config.percentiles)
            rows.append(
                (flavour, label, len(samples))
                + tuple(round(summary[p] * 1e3, 3) for p in config.percentiles)
            )
            if label != "Hermes" and hermes:
                notes_lines.append(
                    f"  {flavour}/{label}: "
                    f"{100 * median_improvement(samples, hermes):.0f}%"
                )
    headers = ["stream", "scheme", "n"] + [
        f"p{int(p)} (ms)" for p in config.percentiles
    ]
    return ExperimentResult(
        experiment_id="Figure 10",
        title="Rule installation time: Hermes vs. Tango vs. ESPRES",
        headers=headers,
        rows=rows,
        notes="\n".join(notes_lines),
    )
