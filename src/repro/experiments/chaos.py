"""Extension: chaos sweep — scheme x control-channel drop rate.

The paper assumes the southbound channel delivers every FlowMod.  This
experiment drops that assumption: FlowMods are dropped (sometimes after the
switch applied them — the lost-ack case), duplicated, and delayed, at a
swept rate, against two delivery disciplines:

* the **naive** channel (fire-and-forget, the seed behaviour): a dropped
  install is gone, and the affected hop blackholes traffic;
* the **resilient** channel: timeout/backoff retransmission with xid-based
  dedup, so a lost ack cannot double-install and a dropped FlowMod is
  redelivered until it lands.

Expected shape: with the resilient channel the lost-install count is zero
at every drop rate (paid for in retries and in tail installation latency),
while the naive channel loses installs roughly in proportion to the drop
rate.  Hermes's guarantee machinery is orthogonal to the channel and keeps
working under it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..analysis import ExperimentResult
from ..baselines import make_installer
from ..faults import FaultInjector, FaultPlan, FlowModFault, TcamWriteFault
from ..simulator import Simulation, SimulationConfig, TeAppConfig
from ..switchsim import ChannelConfig
from ..tcam import get_switch_model
from ..topology import FatTreeSpec, build_fat_tree, hosts
from ..traffic import flows_of, generate_jobs
from .common import default_hermes_config

SCHEMES: Tuple[Tuple[str, str, str], ...] = (
    ("raw switch", "naive", "naive"),
    ("raw + resilient", "naive", "resilient"),
    ("Hermes", "hermes", "naive"),
    ("Hermes + resilient", "hermes", "resilient"),
)


@dataclass
class ChaosConfig:
    """Workload and fault-plan knobs of the sweep."""

    fat_tree_k: int = 4
    link_capacity: float = 1e9
    job_count: int = 12
    drop_rates: Tuple[float, ...] = (0.0, 0.1, 0.25)
    ack_loss_fraction: float = 0.3
    duplicate: float = 0.02
    tcam_silent: float = 0.0
    switch: str = "pica8-p3290"
    max_time: float = 8.0
    seed: int = 11


def partition_invariant_violations(installer) -> int:
    """Count (main, shadow) pairs violating Algorithm 1's invariant.

    The invariant: no main-table rule may overlap a shadow resident at
    strictly higher priority — if one does, the hardware's shadow-first
    lookup masks the main rule and the two tables stop behaving like one.
    """
    shadow = getattr(installer, "shadow", None)
    main = getattr(installer, "main", None)
    if shadow is None or main is None:
        return 0
    violations = 0
    for main_rule in main.rules():
        for shadow_rule in shadow.rules():
            if main_rule.priority > shadow_rule.priority and main_rule.overlaps(
                shadow_rule
            ):
                violations += 1
    return violations


def duplicate_entries(installer) -> int:
    """Rule ids physically present more than once across an installer's
    tables — what a retry without dedup would create."""
    shadow = getattr(installer, "shadow", None)
    main = getattr(installer, "main", None)
    if shadow is None or main is None:
        return 0
    shadow_ids = {rule.rule_id for rule in shadow.rules()}
    main_ids = {rule.rule_id for rule in main.rules()}
    return len(shadow_ids & main_ids)


def run_cell(
    scheme: str, channel: str, drop_rate: float, config: ChaosConfig
):
    """One (scheme, channel, drop-rate) cell; returns the measured row tail."""
    graph = build_fat_tree(
        FatTreeSpec(k=config.fat_tree_k, link_capacity=config.link_capacity)
    )
    flows = flows_of(
        generate_jobs(
            hosts(graph),
            job_count=config.job_count,
            arrival_rate=6.0,
            rng=np.random.default_rng(config.seed),
        )
    )
    plan = FaultPlan(
        flowmod=FlowModFault(
            drop=drop_rate,
            ack_loss_fraction=config.ack_loss_fraction,
            duplicate=config.duplicate,
        ),
        tcam=TcamWriteFault(silent=config.tcam_silent),
    )
    injector = FaultInjector(plan=plan, seed=config.seed)
    sim_config = SimulationConfig(
        te=TeAppConfig(epoch=0.25),
        baseline_occupancy=200,
        max_time=config.max_time,
        channel=channel,
        channel_config=ChannelConfig(),
        fault_plan=plan,
        fault_seed=config.seed,
    )
    timing = get_switch_model(config.switch)
    hermes_config = default_hermes_config() if scheme == "hermes" else None
    factory = lambda name: make_installer(
        scheme, timing, hermes_config=hermes_config, injector=injector
    )
    simulation = Simulation(graph, flows, factory, sim_config, injector=injector)
    metrics = simulation.run()
    counts = injector.log.counts()
    drops = counts.get("flowmod-drop", 0) + counts.get("flowmod-ack-loss", 0)
    invariant = sum(
        partition_invariant_violations(agent.installer)
        for agent in simulation.controller.agents.values()
    )
    duplicates = sum(
        duplicate_entries(agent.installer)
        for agent in simulation.controller.agents.values()
    )
    return (
        len(metrics.rits()),
        simulation.controller.total_channel_retries(),
        drops,
        metrics.undelivered_total(),
        duplicates,
        invariant,
        round(simulation.blackhole_time * 1e3, 3),
    )


def run(config: ChaosConfig = ChaosConfig()) -> ExperimentResult:
    """Sweep drop rate x scheme and tabulate loss/recovery behaviour."""
    rows: List[tuple] = []
    for label, scheme, channel in SCHEMES:
        for drop_rate in config.drop_rates:
            cell = run_cell(scheme, channel, drop_rate, config)
            rows.append((label, drop_rate) + cell)
    return ExperimentResult(
        experiment_id="Extension (chaos)",
        title="Installs lost vs. control-channel drop rate, by scheme",
        headers=[
            "scheme",
            "drop rate",
            "installs",
            "retries",
            "injected losses",
            "lost installs",
            "dup entries",
            "invariant violations",
            "blackhole (ms)",
        ],
        rows=rows,
        notes=(
            "'injected losses' counts FlowMod deliveries the fault plan "
            "dropped (including applied-but-unacked ones); 'lost installs' "
            "counts FlowMods that never took effect on their switch. The "
            "resilient channel holds lost installs at zero by redelivering "
            "(the retries column is the price), and its xid dedup keeps "
            "'dup entries' at zero even though lost acks force "
            "redeliveries of already-applied FlowMods. Fire-and-forget "
            "loses installs at roughly the drop rate and blackholes "
            "traffic at failed hops."
        ),
    )
