"""Extension: chaos sweep — scheme x control-channel drop rate.

The paper assumes the southbound channel delivers every FlowMod.  This
experiment drops that assumption: FlowMods are dropped (sometimes after the
switch applied them — the lost-ack case), duplicated, and delayed, at a
swept rate, against two delivery disciplines:

* the **naive** channel (fire-and-forget, the seed behaviour): a dropped
  install is gone, and the affected hop blackholes traffic;
* the **resilient** channel: timeout/backoff retransmission with xid-based
  dedup, so a lost ack cannot double-install and a dropped FlowMod is
  redelivered until it lands.

Expected shape: with the resilient channel the lost-install count is zero
at every drop rate (paid for in retries and in tail installation latency),
while the naive channel loses installs roughly in proportion to the drop
rate.  Hermes's guarantee machinery is orthogonal to the channel and keeps
working under it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..analysis import ExperimentResult, verify_installer
from ..analysis.violations import DUPLICATE_ENTRY, PRIORITY_INVERSION
from ..baselines import make_installer
from ..engine.sweep import SweepRunner
from ..faults import FaultInjector, FaultPlan, FlowModFault, TcamWriteFault
from ..obs import OnlineVerifier, RecordingTracer, use_tracer
from ..simulator import Simulation, SimulationConfig, TeAppConfig
from ..switchsim import ChannelConfig
from ..tcam import get_switch_model
from ..topology import FatTreeSpec, build_fat_tree, hosts
from ..traffic import flows_of, generate_jobs
from .common import default_hermes_config

SCHEMES: Tuple[Tuple[str, str, str], ...] = (
    ("raw switch", "naive", "naive"),
    ("raw + resilient", "naive", "resilient"),
    ("Hermes", "hermes", "naive"),
    ("Hermes + resilient", "hermes", "resilient"),
)


@dataclass
class ChaosConfig:
    """Workload and fault-plan knobs of the sweep."""

    fat_tree_k: int = 4
    link_capacity: float = 1e9
    job_count: int = 12
    drop_rates: Tuple[float, ...] = (0.0, 0.1, 0.25)
    ack_loss_fraction: float = 0.3
    duplicate: float = 0.02
    tcam_silent: float = 0.0
    switch: str = "pica8-p3290"
    max_time: float = 8.0
    seed: int = 11
    verify_every: int = 25  # online-verifier sampling period, in actions


def verify_simulation(simulation) -> List[dict]:
    """Run the shared ruleset verifier over every agent's installer.

    All invariant checking goes through
    :func:`repro.analysis.verifier.verify_installer` (the same analyzer
    the tests and the snapshot CLI use) rather than ad-hoc assertions;
    the structured violation records come back as dicts ready for the
    experiment result's ``extras``.
    """
    violations: List[dict] = []
    for name in sorted(simulation.controller.agents):
        agent = simulation.controller.agents[name]
        for violation in verify_installer(agent.installer):
            entry = violation.to_dict()
            entry["switch"] = name
            violations.append(entry)
    return violations


def run_cell(
    scheme: str, channel: str, drop_rate: float, config: ChaosConfig
):
    """One (scheme, channel, drop-rate) cell.

    The cell runs under a :class:`~repro.obs.RecordingTracer`: the retry
    and injected-loss columns are read back from the metrics registry the
    trace feeds (rather than ad-hoc counters), and an
    :class:`~repro.obs.OnlineVerifier` re-checks table invariants *during*
    the run on a sampled schedule, catching the first violating
    sim-instant instead of only the end state.

    Returns the measured row tail, then the verifier's structured
    violation records, then an observability dict (online-verification
    report plus the full counter dump).
    """
    graph = build_fat_tree(
        FatTreeSpec(k=config.fat_tree_k, link_capacity=config.link_capacity)
    )
    flows = flows_of(
        generate_jobs(
            hosts(graph),
            job_count=config.job_count,
            arrival_rate=6.0,
            rng=np.random.default_rng(config.seed),
        )
    )
    plan = FaultPlan(
        flowmod=FlowModFault(
            drop=drop_rate,
            ack_loss_fraction=config.ack_loss_fraction,
            duplicate=config.duplicate,
        ),
        tcam=TcamWriteFault(silent=config.tcam_silent),
    )
    injector = FaultInjector(plan=plan, seed=config.seed)
    sim_config = SimulationConfig(
        te=TeAppConfig(epoch=0.25),
        baseline_occupancy=200,
        max_time=config.max_time,
        channel=channel,
        channel_config=ChannelConfig(),
        fault_plan=plan,
        fault_seed=config.seed,
    )
    timing = get_switch_model(config.switch)
    hermes_config = default_hermes_config() if scheme == "hermes" else None
    factory = lambda name: make_installer(
        scheme, timing, hermes_config=hermes_config, injector=injector
    )
    tracer = RecordingTracer(
        meta={
            "experiment": "chaos",
            "scheme": scheme,
            "channel": channel,
            "drop_rate": drop_rate,
            "seed": config.seed,
        }
    )
    with use_tracer(tracer):
        simulation = Simulation(
            graph, flows, factory, sim_config, injector=injector
        )
        verifier = OnlineVerifier(
            {
                name: agent.installer
                for name, agent in simulation.controller.agents.items()
            },
            every=config.verify_every,
        )
        verifier.attach(tracer)
        metrics = simulation.run()
    registry = tracer.metrics
    fault_events = registry.counter("hermes_fault_events_total")
    drops = int(
        fault_events.value(kind="flowmod-drop")
        + fault_events.value(kind="flowmod-ack-loss")
    )
    retries = int(registry.counter("hermes_channel_retries_total").total())
    violations = verify_simulation(simulation)
    invariant = sum(
        1 for entry in violations if entry["kind"] == PRIORITY_INVERSION
    )
    duplicates = sum(
        1 for entry in violations if entry["kind"] == DUPLICATE_ENTRY
    )
    observability = {
        "online": verifier.report(),
        "counters": registry.as_dict(),
    }
    return (
        len(metrics.rits()),
        retries,
        drops,
        metrics.undelivered_total(),
        duplicates,
        invariant,
        round(simulation.blackhole_time * 1e3, 3),
        violations,
        observability,
    )


def run(
    config: ChaosConfig = ChaosConfig(), workers: int = 1
) -> ExperimentResult:
    """Sweep drop rate x scheme and tabulate loss/recovery behaviour.

    Every cell's end-state tables are checked with the shared ruleset
    verifier; the structured violation records (normally empty) land in
    the result's ``extras["violations"]``, keyed by cell.  Each cell also
    contributes its online-verification report
    (``extras["online_verification"]``) and the metrics-registry dump
    (``extras["metrics"]``) from the cell's recording tracer.  ``workers
    > 1`` spreads the independent cells over a kernel
    :class:`~repro.engine.sweep.SweepRunner` process pool; the table
    merges back in sweep order either way.
    """
    grid = [
        (label, scheme, channel, drop_rate)
        for label, scheme, channel in SCHEMES
        for drop_rate in config.drop_rates
    ]
    cells = SweepRunner(workers=workers).map(
        run_cell,
        [(scheme, channel, drop_rate, config) for _, scheme, channel, drop_rate in grid],
    )
    rows: List[tuple] = []
    violations_by_cell = {}
    online_by_cell = {}
    metrics_by_cell = {}
    for (label, _scheme, _channel, drop_rate), cell in zip(grid, cells):
        rows.append((label, drop_rate) + cell[:-2])
        key = f"{label} @ {drop_rate}"
        if cell[-2]:
            violations_by_cell[key] = cell[-2]
        online_by_cell[key] = cell[-1]["online"]
        metrics_by_cell[key] = cell[-1]["counters"]
    return ExperimentResult(
        extras={
            "violations": violations_by_cell,
            "online_verification": online_by_cell,
            "metrics": metrics_by_cell,
        },
        experiment_id="Extension (chaos)",
        title="Installs lost vs. control-channel drop rate, by scheme",
        headers=[
            "scheme",
            "drop rate",
            "installs",
            "retries",
            "injected losses",
            "lost installs",
            "dup entries",
            "invariant violations",
            "blackhole (ms)",
        ],
        rows=rows,
        notes=(
            "'injected losses' counts FlowMod deliveries the fault plan "
            "dropped (including applied-but-unacked ones); 'lost installs' "
            "counts FlowMods that never took effect on their switch. The "
            "resilient channel holds lost installs at zero by redelivering "
            "(the retries column is the price), and its xid dedup keeps "
            "'dup entries' at zero even though lost acks force "
            "redeliveries of already-applied FlowMods. Fire-and-forget "
            "loses installs at roughly the drop rate and blackholes "
            "traffic at failed hops."
        ),
    )
