"""Table 1: rule update rate vs. flow-table occupancy.

The paper quotes Kuźniar et al.'s measurements for the Pica8 P-3290 and
Dell 8132F.  Our switch models are calibrated against exactly these points,
so this experiment both regenerates the table and *validates* the
calibration: for each (switch, occupancy) it fills a real
:class:`~repro.tcam.table.TcamTable` to the target occupancy and measures
the sustained update rate by timing actual inserts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..analysis import ExperimentResult
from ..tcam import Action, InsertOrder, Rule, TcamTable, get_switch_model

PAPER_ROWS: List[Tuple[str, int, float]] = [
    ("pica8-p3290", 50, 1266.0),
    ("pica8-p3290", 200, 114.0),
    ("pica8-p3290", 1000, 23.0),
    ("pica8-p3290", 2000, 12.0),
    ("dell-8132f", 50, 970.0),
    ("dell-8132f", 250, 494.0),
    ("dell-8132f", 500, 42.0),
    ("dell-8132f", 750, 29.0),
]


@dataclass
class Table1Config:
    """Parameters of the Table 1 regeneration.

    Attributes:
        probe_inserts: inserts timed per occupancy level (each followed by
            a delete so the occupancy stays fixed).
    """

    probe_inserts: int = 20


def _background_rule(index: int) -> Rule:
    return Rule.from_prefix(
        f"10.{(index // 250) % 250}.{index % 250}.0/24",
        50 + (index % 100),
        Action.output(1),
    )


def measure_update_rate(switch: str, occupancy: int, probe_inserts: int) -> float:
    """Sustained updates/second at a fixed occupancy, measured empirically."""
    timing = get_switch_model(switch)
    table = TcamTable(timing, capacity=max(timing.capacity, occupancy + 8))
    for index in range(occupancy):
        table.insert(_background_rule(index))
    total_latency = 0.0
    for probe in range(probe_inserts):
        # A top-priority probe shifts the whole table — the conditions the
        # published occupancy curves were measured under.
        rule = Rule.from_prefix(
            f"192.168.{probe % 256}.0/24", 500, Action.output(2)
        )
        result = table.insert(rule, order=InsertOrder.RANDOM)
        total_latency += result.latency
        table.delete(rule.rule_id)
    return probe_inserts / total_latency if total_latency > 0 else float("inf")


def run(config: Table1Config = Table1Config()) -> ExperimentResult:
    """Regenerate Table 1 and compare with the published rates."""
    rows = []
    for switch, occupancy, published in PAPER_ROWS:
        measured = measure_update_rate(switch, occupancy, config.probe_inserts)
        rows.append(
            (
                get_switch_model(switch).name,
                occupancy,
                published,
                round(measured, 1),
                round(measured / published, 3),
            )
        )
    return ExperimentResult(
        experiment_id="Table 1",
        title="Rule update rate vs. flow-table occupancy",
        headers=["switch", "occupancy", "paper updates/s", "measured updates/s", "ratio"],
        rows=rows,
        notes=(
            "Measured rates come from timing real inserts against the table "
            "model; ratios near 1.0 confirm the calibration against the "
            "published points. Probes are top-priority (full-shift) inserts, "
            "matching the published measurement conditions; a bottom append "
            "would be ~5x faster."
        ),
    )
