"""CLI: regenerate one or all of the paper's tables/figures.

Usage::

    python -m repro.experiments table1
    python -m repro.experiments fig12 fig13
    python -m repro.experiments all
"""

import sys

from . import EXPERIMENTS, run_experiment


def main(argv) -> int:
    """Run the named experiments and print their rendered artifacts."""
    if not argv or argv == ["all"]:
        names = sorted(EXPERIMENTS)
    else:
        names = argv
    for name in names:
        try:
            result = run_experiment(name)
        except KeyError as error:
            print(error, file=sys.stderr)
            return 2
        print(result.render())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
