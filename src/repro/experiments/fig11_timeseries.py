"""Figure 11: time series of installation time for the first 1000 rules.

A single switch receives a stream of rule batches; the per-rule
installation time is plotted against the rule index for Tango, ESPRES, and
Hermes.  Two stream flavours reproduce the paper's two panels:

* **facebook** — data-center style: batches of sibling /24s under shared
  pods (the "properties of IP allocation and symmetry in the data center"
  Tango aggregates away);
* **geant** — ISP style: scattered prefixes with little aggregation
  structure, where Tango degenerates to ESPRES-like reordering.

Expected shape: all schemes' costs grow slowly with table occupancy;
Tango and ESPRES track each other early and diverge once aggregation
opportunities matter; Hermes stays flat at its guarantee throughout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..analysis import ExperimentResult
from ..switchsim import FlowMod
from ..tcam import Action, Rule
from ..traffic import TimedFlowMod
from .common import default_hermes_config, replay_trace

SCHEMES: Tuple[Tuple[str, str], ...] = (
    ("Tango", "tango"),
    ("ESPRES", "espres"),
    ("Hermes", "hermes"),
)


@dataclass
class Fig11Config:
    """Stream parameters for the time-series experiment."""

    rule_count: int = 1000
    batch_size: int = 10
    batch_interval: float = 0.5
    switch: str = "pica8-p3290"
    sample_every: int = 100
    seed: int = 3


def build_stream(flavour: str, config: Fig11Config) -> List[TimedFlowMod]:
    """Build the rule stream for one panel (``facebook`` or ``geant``)."""
    if flavour not in ("facebook", "geant"):
        raise ValueError(f"unknown stream flavour {flavour!r}")
    rng = np.random.default_rng(config.seed)
    trace: List[TimedFlowMod] = []
    batches = (config.rule_count + config.batch_size - 1) // config.batch_size
    emitted = 0
    for batch_index in range(batches):
        batch_time = (batch_index + 1) * config.batch_interval
        if flavour == "facebook":
            # Data-center allocation symmetry: most of the batch is sibling
            # /24s under one pod (same priority and action, so they coalesce
            # under Tango), with some scattered per-flow overrides mixed in.
            pod = batch_index % 200
            priority = int(rng.integers(100, 1000))
            port = (batch_index % 4) + 1
            clustered = int(round(config.batch_size * 0.6))
            rules = [
                Rule.from_prefix(
                    f"10.{pod}.{rack}.0/24", priority, Action.output(port)
                )
                for rack in range(clustered)
            ]
            rules.extend(
                _scattered_rule(rng) for _ in range(config.batch_size - clustered)
            )
        else:
            # Scattered ISP prefixes: varied lengths, priorities, and ports.
            rules = [_scattered_rule(rng) for _ in range(config.batch_size)]
        for rule in rules:
            if emitted >= config.rule_count:
                break
            trace.append(TimedFlowMod(time=batch_time, flow_mod=FlowMod.add(rule)))
            emitted += 1
    return trace


def _scattered_rule(rng: np.random.Generator) -> Rule:
    from ..tcam import Prefix

    length = int(rng.choice([16, 20, 22, 24], p=[0.1, 0.2, 0.2, 0.5]))
    mask = ((1 << length) - 1) << (32 - length)
    network = int(rng.integers(1, 223)) << 24 | int(rng.integers(0, 1 << 24))
    return Rule.from_prefix(
        Prefix(network & mask, length),
        int(rng.integers(100, 1000)),
        Action.output(int(rng.integers(1, 16))),
    )


def installation_series(
    flavour: str, config: Fig11Config
) -> Dict[str, List[float]]:
    """Per-rule installation times for each scheme on one stream flavour."""
    series: Dict[str, List[float]] = {}
    for label, scheme in SCHEMES:
        trace = build_stream(flavour, config)
        outcome = replay_trace(
            trace,
            scheme,
            config.switch,
            hermes_config=default_hermes_config() if scheme == "hermes" else None,
            batch_window=config.batch_interval / 2,
            seed=config.seed,
        )
        # Per-rule installation time as the controller observes it: rules
        # folded into a Tango aggregate complete with (and report) the
        # aggregate's single write; later rules in a batch include their
        # wait behind the batch's earlier writes.
        series[label] = outcome.response_times
    return series


def run(config: Fig11Config = Fig11Config()) -> ExperimentResult:
    """Regenerate the Figure 11 time series (sampled every N rules)."""
    rows: List[tuple] = []
    for flavour in ("facebook", "geant"):
        series = installation_series(flavour, config)
        indices = range(
            config.sample_every - 1, config.rule_count, config.sample_every
        )
        for index in indices:
            row = [flavour, index + 1]
            for label, _ in SCHEMES:
                samples = series[label]
                # Mean over the window ending at this index smooths noise
                # the way the paper's plotted series reads.
                window = samples[max(0, index + 1 - config.sample_every) : index + 1]
                row.append(round(float(np.mean(window)) * 1e3, 3) if window else None)
            rows.append(tuple(row))
    headers = ["stream", "rule #"] + [f"{label} (ms)" for label, _ in SCHEMES]
    return ExperimentResult(
        experiment_id="Figure 11",
        title="Installation-time series over the first 1000 rules",
        headers=headers,
        rows=rows,
        notes=(
            "Shape: Tango and ESPRES grow with occupancy and track each "
            "other early; Tango pulls ahead on the facebook stream once its "
            "aggregation bites (and matters less on geant's unstructured "
            "prefixes). Hermes stays flat within its guarantee."
        ),
    )
