"""Section 8.6 (text): predictor x corrector sensitivity.

"We observed that Cubic Spline provided the lowest prediction error,
especially when combined with Slack.  We observed that the combination of
Cubic Spline and Slack reduced rule installation time by 80%-94% over
existing alternatives (EWMA+Slack, EWMA+Deadzone, Cubic Spline+Deadzone)."

Every (predictor, corrector) pair runs the same microbench trace; the table
reports mean/p99 installation latency and the violation percentage.  The
workload is *non-stationary* (the arrival rate ramps), because a stationary
Poisson stream hides the differences between predictors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..analysis import ExperimentResult
from ..core import GuaranteeSpec, HermesConfig
from ..engine.sweep import SweepRunner
from ..traffic import MicrobenchConfig, TimedFlowMod, generate_trace, seed_rules
from .common import replay_trace

PAIRS: Tuple[Tuple[str, str], ...] = (
    ("cubic-spline", "slack"),
    ("cubic-spline", "deadzone"),
    ("ewma", "slack"),
    ("ewma", "deadzone"),
    ("arma", "slack"),
    ("arma", "deadzone"),
)


@dataclass
class SensitivityConfig:
    """Trace and sweep parameters."""

    switch: str = "dell-8132f"
    base_rate: float = 200.0
    peak_rate: float = 1200.0
    overlap_rate: float = 0.5
    duration: float = 2.0
    slack: float = 1.0
    deadzone_margin: float = 50.0


def ramping_trace(config: SensitivityConfig) -> List[TimedFlowMod]:
    """A trace whose rate ramps from base to peak and back (two cycles).

    Built by time-warping a constant-rate trace: predictors that
    extrapolate trends (the spline) anticipate the ramps; level-trackers
    (EWMA) lag them.
    """
    flat = generate_trace(
        MicrobenchConfig(
            arrival_rate=(config.base_rate + config.peak_rate) / 2,
            overlap_rate=config.overlap_rate,
            duration=config.duration,
        )
    )
    warped: List[TimedFlowMod] = []
    total = len(flat)
    time = 0.0
    for index, timed in enumerate(flat):
        phase = np.sin(2.0 * np.pi * 2.0 * index / total) * 0.5 + 0.5
        rate = config.base_rate + (config.peak_rate - config.base_rate) * phase
        time += 1.0 / rate
        warped.append(TimedFlowMod(time=time, flow_mod=timed.flow_mod))
    return warped


def run_pair(
    predictor: str, corrector: str, config: SensitivityConfig
) -> Tuple[float, float, float]:
    """(mean ms, p99 ms, violation %) for one predictor/corrector pair."""
    hermes_config = HermesConfig(
        guarantee=GuaranteeSpec.milliseconds(5),
        predictor=predictor,
        corrector=corrector,
        slack=config.slack,
        deadzone_margin=config.deadzone_margin,
        admission_control=False,
        lowest_priority_fastpath=False,
    )
    trace_config = MicrobenchConfig(
        arrival_rate=config.base_rate,
        overlap_rate=config.overlap_rate,
        duration=config.duration,
    )
    outcome = replay_trace(
        ramping_trace(config),
        "hermes",
        config.switch,
        hermes_config=hermes_config,
        prefill_rules=seed_rules(trace_config),
    )
    latencies = np.asarray(outcome.response_times)
    return (
        float(latencies.mean() * 1e3),
        float(np.percentile(latencies, 99) * 1e3),
        outcome.installer.violation_percentage(),
    )


def run(
    config: SensitivityConfig = SensitivityConfig(), workers: int = 1
) -> ExperimentResult:
    """Regenerate the predictor/corrector comparison.

    ``workers > 1`` fans the independent (predictor, corrector) cells out
    over a kernel :class:`~repro.engine.sweep.SweepRunner` process pool;
    results merge back in pair order, identical to the serial sweep.
    """
    cells = SweepRunner(workers=workers).map(
        run_pair,
        [(predictor, corrector, config) for predictor, corrector in PAIRS],
    )
    rows: List[tuple] = []
    results = {}
    for (predictor, corrector), (mean_ms, p99_ms, violations) in zip(
        PAIRS, cells
    ):
        results[(predictor, corrector)] = mean_ms
        rows.append(
            (
                predictor,
                corrector,
                round(mean_ms, 3),
                round(p99_ms, 3),
                round(violations, 2),
            )
        )
    best = min(results, key=results.get)
    return ExperimentResult(
        experiment_id="Section 8.6",
        title="Predictor x corrector sensitivity (ramping microbench)",
        headers=[
            "predictor",
            "corrector",
            "mean latency (ms)",
            "p99 latency (ms)",
            "violations (%)",
        ],
        rows=rows,
        notes=(
            f"Lowest mean latency: {best[0]} + {best[1]}. Shape: the paper "
            "finds Cubic Spline + Slack most effective on dynamic "
            "workloads; Slack generally beats Deadzone because it scales "
            "with the forecast."
        ),
    )
