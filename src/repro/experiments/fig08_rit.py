"""Figure 8: CDF of rule installation time (RIT), Facebook and Geant.

RITs are collected from every TE-issued rule installation across all
switches in the simulated network.  One line per raw switch model plus
Hermes (configured with the paper's 5 ms guarantee on the Pica8).

Expected shape: the raw switches have medians in the tens of milliseconds
with long tails; Hermes's distribution is compressed near its guarantee
(the paper reports median improvements of 80-94%).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..analysis import ExperimentResult, median_improvement, percentile_summary
from .common import (
    QUICK_SCALE,
    SWITCHES_UNDER_TEST,
    WorkloadScale,
    default_hermes_config,
    facebook_workload,
    isp_workload,
    run_te_simulation,
    te_simulation_config,
)


@dataclass
class Fig08Config:
    """Workloads and percentiles for the RIT CDFs."""

    scale: WorkloadScale = field(default_factory=lambda: QUICK_SCALE)
    workloads: Tuple[str, ...] = ("facebook", "geant")
    hermes_switch: str = "pica8-p3290"
    percentiles: Tuple[float, ...] = (50, 90, 95, 99)


def collect_rits(
    workload: str, scale: WorkloadScale, hermes_switch: str
) -> Dict[str, List[float]]:
    """RIT samples per scheme for one workload."""
    if workload == "facebook":
        graph, flows, _, _ = facebook_workload(scale)
        sim_config = te_simulation_config(scale)
    else:
        graph, flows = isp_workload(workload, scale)
        sim_config = te_simulation_config(scale, control_rtt=10e-3)  # WAN RTT
    series: Dict[str, List[float]] = {}
    for switch in SWITCHES_UNDER_TEST:
        metrics, _ = run_te_simulation(
            graph, flows, "naive", switch, config=sim_config
        )
        from ..tcam import get_switch_model

        series[get_switch_model(switch).name] = metrics.rits()
    hermes_metrics, _ = run_te_simulation(
        graph,
        flows,
        "hermes",
        hermes_switch,
        hermes_config=default_hermes_config(),
        config=sim_config,
    )
    series["Hermes"] = hermes_metrics.rits()
    return series


def run(config: Fig08Config = Fig08Config()) -> ExperimentResult:
    """Regenerate the Figure 8 CDFs (reported at fixed percentiles)."""
    rows: List[tuple] = []
    notes_lines = [
        "RITs include queueing at the switch CPU. Shape: raw switches show",
        "long tails; Hermes compresses the distribution near its 5 ms",
        "guarantee. Median improvements vs. each raw switch:",
    ]
    for workload in config.workloads:
        series = collect_rits(workload, config.scale, config.hermes_switch)
        hermes_rits = series.get("Hermes", [])
        for scheme, rits in series.items():
            if not rits:
                continue
            summary = percentile_summary(rits, config.percentiles)
            rows.append(
                (workload, scheme, len(rits))
                + tuple(round(summary[p] * 1e3, 3) for p in config.percentiles)
            )
            if scheme != "Hermes" and hermes_rits and rits:
                improvement = median_improvement(rits, hermes_rits)
                notes_lines.append(
                    f"  {workload}/{scheme}: {100 * improvement:.0f}%"
                )
    headers = ["workload", "scheme", "n"] + [
        f"p{int(p)} (ms)" for p in config.percentiles
    ]
    return ExperimentResult(
        experiment_id="Figure 8",
        title="Rule installation time CDFs (Facebook, Geant)",
        headers=headers,
        rows=rows,
        notes="\n".join(notes_lines),
    )
