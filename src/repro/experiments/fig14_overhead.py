"""Figure 14: ASIC overhead percentage vs. performance guarantee.

"The overheads of employing Hermes are directly proportional to the
performance guarantees required and the size of the shadow table required
to satisfy these guarantees."  For guarantees of 1, 5 and 10 ms on each of
the three switches, the overhead is the shadow capacity the guarantee
allows divided by the switch's TCAM capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..analysis import ExperimentResult
from ..core import GuaranteeSpec, asic_overhead, shadow_capacity_for
from ..tcam import get_switch_model
from .common import SWITCHES_UNDER_TEST


@dataclass
class Fig14Config:
    """Guarantees (ms) and switches to sweep."""

    guarantees_ms: Tuple[float, ...] = (1.0, 5.0, 10.0)
    switches: Tuple[str, ...] = SWITCHES_UNDER_TEST


def run(config: Fig14Config = Fig14Config()) -> ExperimentResult:
    """Regenerate the Figure 14 bars."""
    rows = []
    for switch in config.switches:
        timing = get_switch_model(switch)
        for guarantee_ms in config.guarantees_ms:
            spec = GuaranteeSpec.milliseconds(guarantee_ms)
            shadow = shadow_capacity_for(timing, spec)
            overhead = asic_overhead(timing, spec)
            rows.append(
                (
                    timing.name,
                    guarantee_ms,
                    shadow,
                    timing.capacity,
                    round(100.0 * overhead, 2),
                )
            )
    return ExperimentResult(
        experiment_id="Figure 14",
        title="ASIC (shadow-table) overhead vs. performance guarantee",
        headers=[
            "switch",
            "guarantee (ms)",
            "shadow entries",
            "TCAM capacity",
            "overhead (%)",
        ],
        rows=rows,
        notes=(
            "Shape: overhead grows with looser guarantees (a larger shadow "
            "fits the budget) and varies across switches; the Pica8's 5 ms "
            "overhead is under 5%, the abstract's headline configuration."
        ),
    )
