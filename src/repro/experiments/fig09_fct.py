"""Figure 9: CDF of flow completion time — Facebook (all / short) and Geant.

Same runs as Figure 8, but the reported metric is per-flow FCT.  The
Facebook panel is split into all jobs and short jobs: short flows cannot
amortize control-plane stalls over a long lifetime, so the gap between the
raw switches and Hermes is widest there (the paper reports a 95th-percentile
improvement of ~80% for short flows, close to the raw RIT-level gains).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..analysis import ExperimentResult, percentile_summary
from ..tcam import get_switch_model
from .common import (
    QUICK_SCALE,
    SWITCHES_UNDER_TEST,
    WorkloadScale,
    default_hermes_config,
    facebook_workload,
    isp_workload,
    run_te_simulation,
    te_simulation_config,
)


@dataclass
class Fig09Config:
    """Scale and percentiles for the FCT CDFs."""

    scale: WorkloadScale = field(default_factory=lambda: QUICK_SCALE)
    hermes_switch: str = "pica8-p3290"
    percentiles: Tuple[float, ...] = (50, 90, 95)


def _fct_series(metrics, short_ids) -> Dict[str, List[float]]:
    all_fcts: List[float] = []
    short_fcts: List[float] = []
    for record in metrics.flow_records():
        if not record.completed:
            continue
        all_fcts.append(record.fct)
        if record.spec.job_id in short_ids:
            short_fcts.append(record.fct)
    return {"all": all_fcts, "short": short_fcts}


def run(config: Fig09Config = Fig09Config()) -> ExperimentResult:
    """Regenerate the Figure 9 CDFs (reported at fixed percentiles)."""
    rows: List[tuple] = []

    # Panels (a) and (b): Facebook, all jobs and short jobs.
    graph, flows, short_ids, _ = facebook_workload(config.scale)
    sim_config = te_simulation_config(config.scale)
    runs = [(sw, "naive", get_switch_model(sw).name) for sw in SWITCHES_UNDER_TEST]
    runs.append((config.hermes_switch, "hermes", "Hermes"))
    for switch, scheme, label in runs:
        metrics, _ = run_te_simulation(
            graph,
            flows,
            scheme,
            switch,
            hermes_config=default_hermes_config() if scheme == "hermes" else None,
            config=sim_config,
        )
        for panel, fcts in _fct_series(metrics, short_ids).items():
            if not fcts:
                continue
            summary = percentile_summary(fcts, config.percentiles)
            rows.append(
                (f"facebook/{panel}", label, len(fcts))
                + tuple(round(summary[p], 4) for p in config.percentiles)
            )

    # Panel (c): Geant.
    graph, flows = isp_workload("geant", config.scale)
    wan_config = te_simulation_config(config.scale, control_rtt=10e-3)
    for switch, scheme, label in runs:
        metrics, _ = run_te_simulation(
            graph,
            flows,
            scheme,
            switch,
            hermes_config=default_hermes_config() if scheme == "hermes" else None,
            config=wan_config,
        )
        fcts = metrics.fcts()
        if not fcts:
            continue
        summary = percentile_summary(fcts, config.percentiles)
        rows.append(
            ("geant", label, len(fcts))
            + tuple(round(summary[p], 4) for p in config.percentiles)
        )

    headers = ["panel", "scheme", "n"] + [f"p{int(p)} (s)" for p in config.percentiles]
    return ExperimentResult(
        experiment_id="Figure 9",
        title="Flow completion time CDFs (Facebook all/short, Geant)",
        headers=headers,
        rows=rows,
        notes=(
            "Shape: schemes converge for long flows (transfer time "
            "dominates); the short-flow panel shows the largest relative "
            "gap in Hermes's favour, mirroring the RIT-level gains."
        ),
    )
