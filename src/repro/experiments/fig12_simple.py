"""Figure 12: Hermes-SIMPLE under different threshold values.

Hermes-SIMPLE replaces the predictive Rule Manager with a bare threshold:
migrate once the shadow is ``threshold`` percent full (Section 8.5).  The
workload is the paper's stress microbench — 1000 updates/s at 100% overlap
rate — on all three switches.

Panel (a): percentage of guarantee violations vs. threshold.  A threshold
of 0% (migrate whenever anything is in the shadow) never violates; high
thresholds leave too little headroom and violate.

Panel (b): migrations per second vs. threshold, with regular (predictive,
slack 100%) Hermes as the reference — the paper's point is that SIMPLE's
zero-violation setting costs about twice the migrations of Hermes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..analysis import ExperimentResult
from ..core import GuaranteeSpec, HermesConfig
from ..traffic import MicrobenchConfig, generate_trace, seed_rules
from .common import SWITCHES_UNDER_TEST, replay_trace


@dataclass
class Fig12Config:
    """Thresholds, switches, and trace parameters."""

    thresholds: Tuple[float, ...] = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)
    switches: Tuple[str, ...] = SWITCHES_UNDER_TEST
    trace: MicrobenchConfig = field(
        default_factory=lambda: MicrobenchConfig(
            arrival_rate=1000.0, overlap_rate=1.0, duration=1.0
        )
    )


def _hermes_config(threshold: float = None) -> HermesConfig:
    """Hermes-SIMPLE at ``threshold``, or regular Hermes when None.

    Admission control is disabled: the experiment stresses the migration
    policy, so diverting load at the gate would mask the comparison.
    """
    return HermesConfig(
        guarantee=GuaranteeSpec.milliseconds(5),
        threshold=threshold,
        corrector="slack",
        slack=1.0,
        admission_control=False,
        # The microbench studies the shadow/migration machinery; the
        # lowest-priority fastpath would route the (deliberately
        # low-priority) overlap rules around it.
        lowest_priority_fastpath=False,
    )


def run_one(switch: str, threshold, trace_config: MicrobenchConfig):
    """(violation %, migrations/s) for one switch and migration policy."""
    trace = generate_trace(trace_config)
    outcome = replay_trace(
        trace,
        "hermes",
        switch,
        hermes_config=_hermes_config(threshold),
        prefill_rules=seed_rules(trace_config),
    )
    installer = outcome.installer
    violations = installer.violation_percentage()
    migrations = installer.rule_manager.migrations_per_second(
        trace_config.duration
    )
    return violations, migrations


def run(config: Fig12Config = Fig12Config()) -> ExperimentResult:
    """Regenerate both Figure 12 panels as one table."""
    rows: List[tuple] = []
    from ..tcam import get_switch_model

    for switch in config.switches:
        name = get_switch_model(switch).name
        hermes_violations, hermes_migrations = run_one(
            switch, None, config.trace
        )
        for threshold in config.thresholds:
            violations, migrations = run_one(switch, threshold, config.trace)
            rows.append(
                (
                    name,
                    int(round(100 * threshold)),
                    round(violations, 2),
                    round(migrations, 1),
                    round(hermes_violations, 2),
                    round(hermes_migrations, 1),
                )
            )
    return ExperimentResult(
        experiment_id="Figure 12",
        title="Hermes-SIMPLE: violations and migration frequency vs. threshold",
        headers=[
            "switch",
            "threshold (%)",
            "SIMPLE violations (%)",
            "SIMPLE migrations/s",
            "Hermes violations (%)",
            "Hermes migrations/s",
        ],
        rows=rows,
        notes=(
            "Workload: 1000 updates/s, 100% overlap. Shape: SIMPLE at "
            "threshold 0% has no violations but roughly double regular "
            "Hermes's migration frequency; violations appear as the "
            "threshold grows. Regular Hermes (predictive + slack 100%) "
            "keeps violations at zero with fewer migrations."
        ),
    )
