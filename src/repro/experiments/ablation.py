"""Ablations of Hermes's design choices (DESIGN.md Section 4).

Not a paper figure — these benches isolate the contribution of each
mechanism the paper describes:

* **lowest-priority fastpath** (Section 4.2): without it, bottom-priority
  rules burn shadow space and partition heavily;
* **migration optimization** (Figure 7 step 2): without it, fragment
  families are written to the main table verbatim, inflating occupancy;
* **atomic migration** (Section 5.2): without insert-before-delete, packets
  fall into transient coverage gaps, measured as gap-seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..analysis import ExperimentResult
from ..core import GuaranteeSpec, HermesConfig
from ..engine.sweep import SweepRunner
from ..traffic import MicrobenchConfig, generate_trace, seed_rules
from .common import replay_trace


@dataclass
class AblationConfig:
    """Workload for the ablation runs."""

    switch: str = "pica8-p3290"
    arrival_rate: float = 800.0
    overlap_rate: float = 0.6
    duration: float = 1.5


VARIANTS: Tuple[Tuple[str, dict], ...] = (
    ("full Hermes", {}),
    ("no fastpath", {"lowest_priority_fastpath": False}),
    ("no migration optimizer", {"optimize_migration": False}),
    ("non-atomic migration", {"atomic_migration": False}),
    ("threshold trigger (50%)", {"threshold": 0.5}),
)


def run_variant(overrides: dict, config: AblationConfig):
    """Replay the shared workload against one Hermes variant."""
    hermes_config = HermesConfig(
        guarantee=GuaranteeSpec.milliseconds(5),
        slack=1.0,
        admission_control=False,
        **overrides,
    )
    trace_config = MicrobenchConfig(
        arrival_rate=config.arrival_rate,
        overlap_rate=config.overlap_rate,
        duration=config.duration,
    )
    outcome = replay_trace(
        generate_trace(trace_config),
        "hermes",
        config.switch,
        hermes_config=hermes_config,
        prefill_rules=seed_rules(trace_config),
    )
    installer = outcome.installer
    latencies = np.asarray(outcome.response_times)
    migrations = installer.rule_manager.migrations
    gap_time = sum(report.transient_gap_time for report in migrations)
    written = sum(report.rules_written for report in migrations)
    return {
        "mean_ms": float(latencies.mean() * 1e3),
        "p99_ms": float(np.percentile(latencies, 99) * 1e3),
        "violations": installer.violation_percentage(),
        "migrations": len(migrations),
        "rules_written": written,
        "gap_ms": gap_time * 1e3,
        "main_occupancy": installer.main.occupancy,
    }


def run(
    config: AblationConfig = AblationConfig(), workers: int = 1
) -> ExperimentResult:
    """Run every ablation variant on the shared workload.

    ``workers > 1`` runs the independent variants on a kernel
    :class:`~repro.engine.sweep.SweepRunner` process pool; rows merge back
    in :data:`VARIANTS` order, identical to the serial sweep.
    """
    variant_stats = SweepRunner(workers=workers).map(
        run_variant, [(overrides, config) for _, overrides in VARIANTS]
    )
    rows: List[tuple] = []
    for (label, _overrides), stats in zip(VARIANTS, variant_stats):
        rows.append(
            (
                label,
                round(stats["mean_ms"], 3),
                round(stats["p99_ms"], 3),
                round(stats["violations"], 2),
                stats["migrations"],
                stats["rules_written"],
                round(stats["gap_ms"], 3),
                stats["main_occupancy"],
            )
        )
    return ExperimentResult(
        experiment_id="Ablation",
        title="Contribution of each Hermes design choice",
        headers=[
            "variant",
            "mean RIT (ms)",
            "p99 RIT (ms)",
            "violations (%)",
            "migrations",
            "rules written",
            "gap (ms)",
            "main occupancy",
        ],
        rows=rows,
        notes=(
            "Expected: the migration optimizer cuts rules-written and main "
            "occupancy; atomic migration is the only variant with zero gap "
            "time; the threshold trigger trades violations for fewer "
            "migrations."
        ),
    )
