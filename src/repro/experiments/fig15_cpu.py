"""Figure 15: CPU/memory utilization and algorithm runtimes vs. rule count.

The paper ran Hermes's insertion and migration algorithms on an Edge-Core
AS5712's control CPU while varying the rules processed per second between
100 and 20000, observing (a) utilization growing linearly with load and (b)
insertion-algorithm runtime staying ~flat while migration runtime grows
super-linearly ("cubic growth pattern").

We time our *actual* Python implementations — :func:`partition_new_rule`
against a populated main table for the insertion side, and a real
:class:`RuleManager` migration for the migration side — and measure memory
with ``tracemalloc``.  Absolute numbers differ from the AS5712's (different
CPU, different language); the growth shapes are the reproduction target.
"""

from __future__ import annotations

import tracemalloc
from dataclasses import dataclass
from typing import List, Tuple

from ..analysis import ExperimentResult
from ..obs.perf.wallclock import wallclock
from ..core import (
    CubicSplinePredictor,
    PartitionMap,
    PredictiveTrigger,
    RuleManager,
    SlackCorrector,
    partition_new_rule,
)
from ..tcam import Action, Rule, TcamTable, ideal_switch


@dataclass
class Fig15Config:
    """Rule counts to sweep (the paper sweeps 100 .. 20000)."""

    rule_counts: Tuple[int, ...] = (100, 500, 1000, 2500, 5000)


def _rules(count: int) -> List[Rule]:
    return [
        Rule.from_prefix(
            f"10.{(index // 250) % 250}.{index % 250}.0/24",
            50 + (index % 100),
            Action.output(1),
        )
        for index in range(count)
    ]


def time_insertion_algorithm(rule_count: int, main_table_size: int = 500) -> float:
    """Per-rule wall-clock seconds of Algorithm 1 over a ``rule_count`` batch.

    The paper's x-axis is the rules *processed* (arrival-rate sweep): the
    per-rule insertion cost depends on the fixed main-table size, not the
    batch size, which is why the insertion series is near-flat.
    """
    main_rules = _rules(main_table_size)
    # Fig 15 measures the *real* CPU cost of the algorithms; wall time is
    # the quantity under test here, not simulated time.
    start = wallclock()
    for probe in range(rule_count):
        new_rule = Rule.from_prefix(
            f"10.{probe % 200}.0.0/16", 10, Action.output(2)
        )
        partition_new_rule(new_rule, main_rules)
    return (wallclock() - start) / rule_count


def time_migration_algorithm(rule_count: int) -> Tuple[float, float]:
    """(wall seconds, peak MiB) of one migration moving ``rule_count`` rules.

    Uses the ideal (zero-latency) switch model so the measurement isolates
    the algorithm's CPU cost from modelled TCAM latency.
    """
    timing = ideal_switch()
    shadow = TcamTable(timing, capacity=rule_count + 8, name="shadow")
    main = TcamTable(timing, capacity=max(rule_count * 2, 64), name="main")
    pmap = PartitionMap()
    manager = RuleManager(
        shadow,
        main,
        pmap,
        PredictiveTrigger(CubicSplinePredictor(), SlackCorrector(1.0)),
    )
    for rule in _rules(rule_count):
        shadow.insert(rule)
    tracemalloc.start()
    start = wallclock()
    manager.migrate(now=0.0)
    elapsed = wallclock() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return elapsed, peak / (1024 * 1024)


def run(config: Fig15Config = Fig15Config()) -> ExperimentResult:
    """Regenerate the Figure 15 series."""
    rows = []
    for count in config.rule_counts:
        insertion = time_insertion_algorithm(count)
        migration, peak_mib = time_migration_algorithm(count)
        rows.append(
            (
                count,
                round(insertion * 1e3, 4),
                round(migration * 1e3, 3),
                round(peak_mib, 3),
            )
        )
    # Shape check material: growth factors relative to the first row.
    base_insert = rows[0][1] or 1e-9
    base_migrate = rows[0][2] or 1e-9
    notes_lines = [
        "Shape: insertion runtime grows slowly (near-flat) while migration",
        "runtime grows super-linearly with the rules processed; memory grows",
        "linearly. Growth vs. the smallest point:",
    ]
    for row in rows:
        notes_lines.append(
            f"  n={row[0]:>6}: insertion x{row[1] / base_insert:.1f}, "
            f"migration x{row[2] / base_migrate:.1f}"
        )
    return ExperimentResult(
        experiment_id="Figure 15",
        title="Algorithm runtimes and memory vs. number of rules",
        headers=[
            "rules",
            "insertion algorithm (ms/rule)",
            "migration (ms total)",
            "peak memory (MiB)",
        ],
        rows=rows,
        notes="\n".join(notes_lines),
    )
