"""Figure 13: rule insertion latency vs. slack factor.

The microbench trace runs against a Dell 8132F at two update rates (200 and
1000 updates/s) and overlap rates from 0% to 100%, while the Slack
corrector sweeps 0%..100%.

Expected shape: at 200 updates/s the latency is low at every slack (slack
only trims the residual); at 1000 updates/s low slack values leave the
shadow under-migrated — latencies (and violations) climb — and ~100% slack
is needed to tame the high rate.  Higher overlap rates need more slack
because partitions multiply the physical insertions (Equation 2's r_p).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..analysis import ExperimentResult
from ..core import GuaranteeSpec, HermesConfig
from ..traffic import MicrobenchConfig, generate_trace, seed_rules
from .common import replay_trace


@dataclass
class Fig13Config:
    """Sweep axes of the slack experiment."""

    switch: str = "dell-8132f"
    update_rates: Tuple[float, ...] = (200.0, 1000.0)
    overlap_rates: Tuple[float, ...] = (0.0, 0.4, 1.0)
    slack_factors: Tuple[float, ...] = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)
    duration: float = 1.0


def run_point(
    switch: str, update_rate: float, overlap_rate: float, slack: float, duration: float
) -> Tuple[float, float, float]:
    """(mean ms, p99 ms, violation %) for one sweep point."""
    trace_config = MicrobenchConfig(
        arrival_rate=update_rate,
        overlap_rate=overlap_rate,
        duration=duration,
    )
    hermes_config = HermesConfig(
        guarantee=GuaranteeSpec.milliseconds(5),
        predictor="cubic-spline",
        corrector="slack",
        slack=slack,
        admission_control=False,
        lowest_priority_fastpath=False,
    )
    outcome = replay_trace(
        generate_trace(trace_config),
        "hermes",
        switch,
        hermes_config=hermes_config,
        prefill_rules=seed_rules(trace_config),
    )
    latencies = np.asarray(outcome.response_times)
    installer = outcome.installer
    return (
        float(latencies.mean() * 1e3),
        float(np.percentile(latencies, 99) * 1e3),
        installer.violation_percentage(),
    )


def run(config: Fig13Config = Fig13Config()) -> ExperimentResult:
    """Regenerate the Figure 13 sweep."""
    rows: List[tuple] = []
    for update_rate in config.update_rates:
        for overlap_rate in config.overlap_rates:
            for slack in config.slack_factors:
                mean_ms, p99_ms, violations = run_point(
                    config.switch, update_rate, overlap_rate, slack, config.duration
                )
                rows.append(
                    (
                        int(update_rate),
                        int(round(100 * overlap_rate)),
                        int(round(100 * slack)),
                        round(mean_ms, 3),
                        round(p99_ms, 3),
                        round(violations, 2),
                    )
                )
    return ExperimentResult(
        experiment_id="Figure 13",
        title="Rule insertion latency vs. slack factor (Dell 8132F)",
        headers=[
            "updates/s",
            "overlap (%)",
            "slack (%)",
            "mean latency (ms)",
            "p99 latency (ms)",
            "violations (%)",
        ],
        rows=rows,
        notes=(
            "Shape: at 200 updates/s every slack value behaves (slack only "
            "polishes latency); at 1000 updates/s low slack under-migrates "
            "and latency/violations climb, with high overlap rates needing "
            "the most slack — the paper's conclusion that 100% slack is "
            "required for the 1000 updates/s regime."
        ),
    )
