"""Sections 2.3 and 8.4: BGP update rates and Hermes on a BGP router.

Part 1 (the §2.3 measurement): per-second update rates at four vantage
points — low medians with a tail exceeding 1000 updates/second.

Part 2 (the §8.4 experiment): the same streams are pushed through the
RIB -> FIB pipeline and the resulting TCAM actions replayed against a raw
switch and against Hermes with a 5 ms guarantee.  Expected shape: Hermes's
installation times are bounded and dramatically lower at the tail, where
the bursts that defeat a raw TCAM land.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..analysis import ExperimentResult, median_improvement, percentile_summary
from ..bgp import BgpRouter, generate_updates, get_router_profile, update_rate_series
from ..core import GuaranteeSpec, HermesConfig
from ..switchsim import FlowModCommand
from ..traffic import TimedFlowMod
from .common import replay_trace

ROUTERS: Tuple[str, ...] = ("equinix-chicago", "telxatl", "nwax", "uoregon")


@dataclass
class BgpConfig:
    """Stream length and switch for the BGP experiments."""

    duration: float = 60.0
    switch: str = "pica8-p3290"
    guarantee_ms: float = 5.0
    seed: int = 11


def fib_trace(router_name: str, config: BgpConfig) -> List[TimedFlowMod]:
    """BGP updates -> FIB FlowMods with their original timestamps."""
    profile = get_router_profile(router_name)
    updates = generate_updates(
        profile, config.duration, rng=np.random.default_rng(config.seed)
    )
    router = BgpRouter()
    trace: List[TimedFlowMod] = []
    for update in updates:
        for flow_mod in router.process(update):
            trace.append(TimedFlowMod(time=update.time, flow_mod=flow_mod))
    return trace


def run(config: BgpConfig = BgpConfig()) -> ExperimentResult:
    """Regenerate the BGP rate profile and the Hermes-on-BGP comparison."""
    rows: List[tuple] = []
    notes_lines = [
        "Shape: medians are low, maxima exceed 1000 updates/s (the Section",
        "2.3 tail); Hermes bounds installation latency through the bursts.",
        "Median RIT improvement of Hermes over the raw switch:",
    ]
    hermes_config = HermesConfig(
        guarantee=GuaranteeSpec.milliseconds(config.guarantee_ms),
        slack=1.0,
        admission_control=False,
    )
    for router_name in ROUTERS:
        profile = get_router_profile(router_name)
        updates = generate_updates(
            profile, config.duration, rng=np.random.default_rng(config.seed)
        )
        rates = [rate for _, rate in update_rate_series(updates)]
        trace = fib_trace(router_name, config)
        add_indices = [
            index
            for index, timed in enumerate(trace)
            if timed.flow_mod.command is FlowModCommand.ADD
        ]

        raw = replay_trace(trace, "naive", config.switch, seed=config.seed)
        hermes = replay_trace(
            trace,
            "hermes",
            config.switch,
            hermes_config=hermes_config,
            seed=config.seed,
        )
        raw_rits = [raw.response_times[i] for i in add_indices]
        hermes_rits = [hermes.response_times[i] for i in add_indices]
        raw_summary = percentile_summary(raw_rits, (50, 99))
        hermes_summary = percentile_summary(hermes_rits, (50, 99))
        rows.append(
            (
                router_name,
                len(updates),
                len(trace),
                round(float(np.median(rates)), 1),
                round(float(max(rates)), 1),
                round(raw_summary[50] * 1e3, 3),
                round(raw_summary[99] * 1e3, 3),
                round(hermes_summary[50] * 1e3, 3),
                round(hermes_summary[99] * 1e3, 3),
            )
        )
        notes_lines.append(
            f"  {router_name}: "
            f"{100 * median_improvement(raw_rits, hermes_rits):.0f}%"
        )
    return ExperimentResult(
        experiment_id="Sections 2.3 / 8.4",
        title="BGP update rates and Hermes on a BGP router",
        headers=[
            "router",
            "updates",
            "FIB actions",
            "median rate (/s)",
            "max rate (/s)",
            "raw p50 (ms)",
            "raw p99 (ms)",
            "Hermes p50 (ms)",
            "Hermes p99 (ms)",
        ],
        rows=rows,
        notes="\n".join(notes_lines),
    )
