"""Figure 1: CDF of the increased ratio of JCT, short vs. long jobs.

The motivating experiment: the Facebook MapReduce workload runs on a fat
tree under the proactive TE app, once with a zero-latency control plane and
once per scheme under test (a realistic Pica8, Hermes, Tango, ESPRES).
Each job's *increase ratio* is its JCT divided by the same job's JCT in the
zero-latency run; the figure is the CDF of those ratios, split at 1 GB into
short and long jobs.

Expected shape: short jobs suffer visibly more than long jobs on the raw
switch (the paper reports 1.5-2x vs 1.05-1.25x at the median at full
scale), and Hermes sits closest to 1.0 everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..analysis import ExperimentResult, increase_ratios, percentile_summary
from .common import (
    QUICK_SCALE,
    FULL_SCALE,
    WorkloadScale,
    default_hermes_config,
    facebook_workload,
    run_te_simulation,
    te_simulation_config,
)

SCHEMES: Tuple[Tuple[str, str], ...] = (
    ("Pica8 P-3290", "naive"),
    ("Hermes", "hermes"),
    ("Tango", "tango"),
    ("ESPRES", "espres"),
)


@dataclass
class Fig01Config:
    """Scale and switch for the Figure 1 run."""

    scale: WorkloadScale = field(default_factory=lambda: QUICK_SCALE)
    switch: str = "pica8-p3290"
    percentiles: Tuple[float, ...] = (50, 75, 90, 95)

    @classmethod
    def full(cls) -> "Fig01Config":
        """Paper-scale configuration (k=16, thousands of jobs; slow)."""
        return cls(scale=FULL_SCALE)


def run(config: Fig01Config = Fig01Config()) -> ExperimentResult:
    """Regenerate the Figure 1 CDFs (reported at fixed percentiles)."""
    graph, flows, short_ids, long_ids = facebook_workload(config.scale)
    sim_config = te_simulation_config(config.scale)

    baseline_metrics, _ = run_te_simulation(
        graph, flows, "naive", "ideal", config=sim_config
    )
    baseline_jcts = baseline_metrics.jcts()

    rows: List[tuple] = []
    for label, scheme in SCHEMES:
        metrics, _ = run_te_simulation(
            graph,
            flows,
            scheme,
            config.switch,
            hermes_config=default_hermes_config() if scheme == "hermes" else None,
            config=sim_config,
        )
        jcts = metrics.jcts()
        for job_class, ids in (("short", short_ids), ("long", long_ids)):
            class_baseline = {j: baseline_jcts[j] for j in baseline_jcts if j in ids}
            class_subject = {j: jcts[j] for j in jcts if j in ids}
            ratios = increase_ratios(class_baseline, class_subject)
            if not ratios:
                continue
            summary = percentile_summary(ratios, config.percentiles)
            rows.append(
                (label, job_class, len(ratios))
                + tuple(round(summary[p], 4) for p in config.percentiles)
            )
    headers = ["scheme", "jobs", "n"] + [f"p{int(p)}" for p in config.percentiles]
    return ExperimentResult(
        experiment_id="Figure 1",
        title="Increased ratio of JCT vs. a zero-latency control plane",
        headers=headers,
        rows=rows,
        notes=(
            "Ratios are per-job JCT divided by the zero-latency run's JCT. "
            "Shape: short jobs inflate more than long jobs on the raw "
            "switch; Hermes stays closest to 1.0. Quick scale softens the "
            "magnitudes relative to the paper's k=16/24402-job run."
        ),
    )
