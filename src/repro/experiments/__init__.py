"""Per-table/figure experiment modules.

Every module exposes ``run(config) -> ExperimentResult``; the registry maps
the paper's artifact ids to those entry points.  ``python -m
repro.experiments <id>`` regenerates one artifact (or ``all``).
"""

from . import (
    ablation,
    autotune_exp,
    bgp_section,
    chaos,
    failover,
    fig01_jct,
    fig08_rit,
    fig09_fct,
    fig10_related,
    fig11_timeseries,
    fig12_simple,
    fig13_slack,
    fig14_overhead,
    fig15_cpu,
    sensitivity,
    table1,
)

EXPERIMENTS = {
    "table1": table1.run,
    "fig1": fig01_jct.run,
    "fig8": fig08_rit.run,
    "fig9": fig09_fct.run,
    "fig10": fig10_related.run,
    "fig11": fig11_timeseries.run,
    "fig12": fig12_simple.run,
    "fig13": fig13_slack.run,
    "fig14": fig14_overhead.run,
    "fig15": fig15_cpu.run,
    "bgp": bgp_section.run,
    "sensitivity": sensitivity.run,
    "ablation": ablation.run,
    "autotune": autotune_exp.run,
    "failover": failover.run,
    "chaos": chaos.run,
}


def run_experiment(name: str):
    """Run one experiment by registry id and return its ExperimentResult."""
    key = name.strip().lower()
    if key not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {name!r}; known: {', '.join(sorted(EXPERIMENTS))}"
        )
    return EXPERIMENTS[key]()


__all__ = ["EXPERIMENTS", "run_experiment"]
