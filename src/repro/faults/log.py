"""The fault log: a flight recorder for every injected fault and recovery.

Both the injector (faults going in) and the resilience machinery (retries,
deduplications, re-issued writes coming back out) append to the same log,
so a test or an experiment can reconcile the two sides: every injected loss
should be matched by a retry or an explicit give-up, every silent write by
a verified re-issue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..obs.tracer import get_tracer


@dataclass
class FaultEvent:
    """One injected fault or recovery action.

    Attributes:
        time: simulation time of the event.
        kind: event class, e.g. ``"flowmod-drop"``, ``"tcam-write-silent"``,
            ``"retry"``, ``"write-reissue"``, ``"breaker-open"``.
        target: the affected entity (switch or table name).
        detail: free-form extra fields (xid, rule_id, attempt, ...).
    """

    time: float
    kind: str
    target: str = ""
    detail: Dict[str, object] = field(default_factory=dict)


class FaultLog:
    """Append-only record of fault events with counting queries."""

    def __init__(self) -> None:
        self._events: List[FaultEvent] = []
        self._counts: Dict[str, int] = {}

    def record(self, kind: str, time: float, target: str = "", **detail) -> None:
        """Append one event (mirrored into the active tracer, if any)."""
        self._events.append(
            FaultEvent(time=time, kind=kind, target=target, detail=dict(detail))
        )
        self._counts[kind] = self._counts.get(kind, 0) + 1
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                f"fault.{kind}", time=time, category="fault",
                switch=target, **detail,
            )

    def events(self, kind: Optional[str] = None) -> List[FaultEvent]:
        """All events, optionally filtered to one kind, in record order."""
        if kind is None:
            return list(self._events)
        return [event for event in self._events if event.kind == kind]

    def count(self, kind: str) -> int:
        """Number of events of one kind."""
        return self._counts.get(kind, 0)

    def counts(self) -> Dict[str, int]:
        """Event counts by kind."""
        return dict(self._counts)

    def __len__(self) -> int:
        return len(self._events)

    def __repr__(self) -> str:
        summary = ", ".join(
            f"{kind}={count}" for kind, count in sorted(self._counts.items())
        )
        return f"FaultLog({summary or 'empty'})"
