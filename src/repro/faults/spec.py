"""Fault specifications: the composable vocabulary of things that go wrong.

Each spec is a small frozen dataclass describing one fault class with its
probabilities and magnitudes; a :class:`FaultPlan` composes them into the
full fault model of one run.  All probabilities default to zero, so the
default plan injects nothing — an injector built from it consumes no
randomness and leaves every run byte-identical to a fault-free one.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1], got {value}")


@dataclass(frozen=True)
class FlowModFault:
    """Control-channel loss model for FlowMod delivery.

    Attributes:
        drop: probability a delivery attempt is lost entirely (the
            controller times out and must retransmit).
        ack_loss_fraction: of the drops, the share where only the *ack* was
            lost — the switch applied the FlowMod, the controller did not
            hear back.  This is the case that makes retransmission unsafe
            without xid deduplication (exactly-once semantics).
        duplicate: probability the network delivers a second copy.
        delay_probability: probability a delivery is late (not lost).
        delay: how late, in seconds.
    """

    drop: float = 0.0
    ack_loss_fraction: float = 0.0
    duplicate: float = 0.0
    delay_probability: float = 0.0
    delay: float = 0.0

    def __post_init__(self) -> None:
        _check_probability("drop", self.drop)
        _check_probability("ack_loss_fraction", self.ack_loss_fraction)
        _check_probability("duplicate", self.duplicate)
        _check_probability("delay_probability", self.delay_probability)
        if self.delay < 0:
            raise ValueError(f"delay cannot be negative: {self.delay}")


@dataclass(frozen=True)
class TcamWriteFault:
    """TCAM write-path faults (insert / modify).

    Attributes:
        fail: probability a write visibly errors (the agent sees the
            failure and can react).
        silent: probability a write acks but installs nothing — the
            dangerous case: nothing downstream notices unless it verifies.
    """

    fail: float = 0.0
    silent: float = 0.0

    def __post_init__(self) -> None:
        _check_probability("fail", self.fail)
        _check_probability("silent", self.silent)


@dataclass(frozen=True)
class AgentStall:
    """Switch-CPU stalls: the control CPU pauses before serving an action.

    Models the busy-CPU effect behind the paper's Figure 11 — background
    work (OS, counters, BGP) preempting the OpenFlow agent.

    Attributes:
        probability: chance any given submission finds the CPU stalled.
        duration: stall length in seconds.
        windows: explicit ``(start, end)`` wall-clock stall windows; a
            submission inside a window stalls until the window closes.
    """

    probability: float = 0.0
    duration: float = 0.0
    windows: tuple = ()

    def __post_init__(self) -> None:
        _check_probability("probability", self.probability)
        if self.duration < 0:
            raise ValueError(f"duration cannot be negative: {self.duration}")
        for window in self.windows:
            start, end = window
            if end < start:
                raise ValueError(f"stall window ends before it starts: {window}")


@dataclass(frozen=True)
class AgentCrash:
    """Switch-agent crash/restart schedule.

    During ``[t, t + restart_delay)`` for each crash time ``t`` the agent is
    down: control messages arriving in the window are lost (queue loss),
    but the TCAM content survives the restart (table intact) — the paper's
    hardware/software split.

    Attributes:
        times: crash instants, in seconds.
        restart_delay: how long each restart takes.
    """

    times: tuple = ()
    restart_delay: float = 0.1

    def __post_init__(self) -> None:
        if self.restart_delay < 0:
            raise ValueError(
                f"restart_delay cannot be negative: {self.restart_delay}"
            )

    def down_at(self, now: float) -> bool:
        """True when ``now`` falls inside any crash window."""
        return any(t <= now < t + self.restart_delay for t in self.times)


@dataclass(frozen=True)
class FaultPlan:
    """The composed fault model of one run (everything defaults to off)."""

    flowmod: FlowModFault = field(default_factory=FlowModFault)
    tcam: TcamWriteFault = field(default_factory=TcamWriteFault)
    stall: AgentStall = field(default_factory=AgentStall)
    crash: AgentCrash = field(default_factory=AgentCrash)

    @property
    def is_null(self) -> bool:
        """True when no fault has a non-zero probability or schedule."""
        return (
            self.flowmod == FlowModFault()
            and self.tcam == TcamWriteFault()
            and self.stall == AgentStall()
            and self.crash == AgentCrash()
        )
