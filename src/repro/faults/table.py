"""Fault-wrapped TCAM tables and verified-write helpers.

A :class:`FaultyTable` proxies a :class:`~repro.tcam.table.TcamTable` and
routes the *write* path (insert / modify) through a
:class:`~repro.faults.injector.FaultInjector`: a write may visibly fail
(:class:`TcamWriteError`) or silently no-op — it acks, charges the modelled
latency, and installs nothing.  Deletes stay reliable: the failure mode the
Hermes partition invariant must survive is a *move* whose insert half is
lost, and an unreliable delete would only mask that with a different bug.

:func:`verified_insert` is the recovery primitive: write, check membership,
re-issue a bounded number of times.  On a fault-free table it degenerates
to one insert and one dict lookup.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..tcam.rule import Rule
from ..tcam.table import ControlActionResult, TableFullError, TcamError
from ..tcam.timing import InsertOrder

if TYPE_CHECKING:  # pragma: no cover
    from ..tcam.table import TcamTable
    from .injector import FaultInjector


class TcamWriteError(TcamError):
    """A TCAM write visibly failed.

    Attributes:
        latency: switch time the failed attempt still consumed.
    """

    def __init__(self, message: str, latency: float = 0.0) -> None:
        super().__init__(message)
        self.latency = latency


class FaultyTable:
    """A TcamTable proxy whose writes consult a fault injector.

    Reads, deletes, listeners, and every other attribute delegate to the
    wrapped table, so the proxy is a drop-in replacement anywhere a
    ``TcamTable`` is expected.
    """

    def __init__(self, inner: "TcamTable", injector: "FaultInjector", clock=None) -> None:
        """Wrap ``inner``; ``clock`` supplies the current simulation time
        for fault-log stamps (defaults to a constant 0.0)."""
        self._inner = inner
        self._injector = injector
        self._clock = clock if clock is not None else (lambda: 0.0)

    @property
    def inner(self) -> "TcamTable":
        """The wrapped physical table."""
        return self._inner

    def _charge_only(self) -> float:
        """Latency of a write that consumed switch time but installed
        nothing (failed or silently no-oped)."""
        return self._inner.timing.insertion_latency(
            self._inner.occupancy, shifts=None, rng=self._inner.rng
        )

    def insert(
        self,
        rule: Rule,
        order: InsertOrder = InsertOrder.RANDOM,
        planned: bool = False,
    ) -> ControlActionResult:
        """Insert through the fault model.

        Raises:
            TcamWriteError: when the injector fails the write visibly.
        """
        if self._inner.is_full:
            # Let capacity errors surface exactly as the real table would.
            return self._inner.insert(rule, order=order, planned=planned)
        verdict = self._injector.write_verdict(
            now=self._clock(), table=self._inner.name, rule_id=rule.rule_id
        )
        if verdict == "fail":
            raise TcamWriteError(
                f"{self._inner.name}: write of rule #{rule.rule_id} failed",
                latency=self._charge_only(),
            )
        if verdict == "silent":
            return ControlActionResult(latency=self._charge_only(), shifts=0)
        return self._inner.insert(rule, order=order, planned=planned)

    def modify(self, rule_id: int, action=None, match=None) -> ControlActionResult:
        """Modify through the fault model (same verdicts as insert)."""
        verdict = self._injector.write_verdict(
            now=self._clock(), table=self._inner.name, rule_id=rule_id
        )
        if verdict == "fail":
            raise TcamWriteError(
                f"{self._inner.name}: modify of rule #{rule_id} failed",
                latency=self._inner.timing.modification_latency(rng=self._inner.rng),
            )
        if verdict == "silent":
            self._inner.get(rule_id)  # still surface unknown-rule errors
            return ControlActionResult(
                latency=self._inner.timing.modification_latency(rng=self._inner.rng)
            )
        return self._inner.modify(rule_id, action=action, match=match)

    # Dunder lookups bypass __getattr__, so the container protocol must be
    # forwarded explicitly.
    def __contains__(self, rule_id: int) -> bool:
        return rule_id in self._inner

    def __len__(self) -> int:
        return len(self._inner)

    def __getattr__(self, name: str):
        return getattr(self._inner, name)

    def __repr__(self) -> str:
        return f"FaultyTable({self._inner!r})"


def verified_insert(
    table, rule: Rule, attempts: int = 3, planned: bool = False
) -> "tuple[float, bool]":
    """Insert ``rule`` and verify it actually landed, re-issuing on faults.

    Works against plain and fault-wrapped tables alike.  Returns
    ``(latency, ok)`` — the summed switch time of every attempt and whether
    the rule is installed afterwards.  Capacity errors propagate; write
    faults (visible or silent) are retried up to ``attempts`` times.

    Raises:
        ValueError: when ``attempts`` is not positive.
        TableFullError: when the table has no room.
    """
    if attempts <= 0:
        raise ValueError(f"attempts must be positive, got {attempts}")
    latency = 0.0
    for _ in range(attempts):
        try:
            latency += table.insert(rule, planned=planned).latency
        except TcamWriteError as error:
            latency += error.latency
        except TableFullError:
            raise
        if rule.rule_id in table:
            return latency, True
    return latency, False
