"""Fault injection: deterministic faults for the control plane and TCAM.

The subsystem makes an unreliable substrate a first-class, *seedable* part
of a run: composable fault specs (:class:`FaultPlan`), a single
:class:`FaultInjector` drawing every fault decision from one seeded stream,
a :class:`FaultLog` flight recorder, and :class:`FaultyTable` — a TCAM
proxy whose writes can fail or silently no-op.  See ``docs/fault-model.md``
for the taxonomy and the determinism contract.
"""

from .injector import ChannelVerdict, FaultInjector
from .log import FaultEvent, FaultLog
from .spec import AgentCrash, AgentStall, FaultPlan, FlowModFault, TcamWriteFault
from .table import FaultyTable, TcamWriteError, verified_insert

__all__ = [
    "AgentCrash",
    "AgentStall",
    "ChannelVerdict",
    "FaultEvent",
    "FaultInjector",
    "FaultLog",
    "FaultPlan",
    "FaultyTable",
    "FlowModFault",
    "TcamWriteError",
    "TcamWriteFault",
    "verified_insert",
]
