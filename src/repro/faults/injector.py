"""The fault injector: deterministic, seedable fault decisions.

One :class:`FaultInjector` is shared by every component of a run (channels,
agents, fault-wrapped TCAM tables).  All randomness flows from a single
seeded generator, so a run with the same plan and seed injects the same
faults at the same points — the determinism contract the chaos experiments
and the regression tests rely on.

Probability draws are *gated*: a fault class with probability zero consumes
no randomness at all, so attaching an injector with the default (null) plan
leaves a run byte-identical to one without any injector.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Optional

import numpy as np

from .log import FaultLog
from .spec import FaultPlan


@dataclass(frozen=True)
class ChannelVerdict:
    """The injector's ruling on one FlowMod delivery attempt.

    Attributes:
        kind: ``"deliver"`` (arrives normally), ``"drop"`` (lost outright),
            ``"drop-ack"`` (applied, but the ack is lost — the controller
            sees a timeout), ``"duplicate"`` (delivered twice), or
            ``"delay"`` (arrives ``delay`` seconds late).
        delay: extra delivery latency in seconds.
    """

    kind: str
    delay: float = 0.0

    @property
    def lost(self) -> bool:
        """True when the controller will not hear back from this attempt."""
        return self.kind in ("drop", "drop-ack")


class FaultInjector:
    """Draws fault decisions from one seeded stream and records them."""

    def __init__(self, plan: Optional[FaultPlan] = None, seed: int = 0) -> None:
        """Create an injector for ``plan`` (null plan when omitted)."""
        self.plan = plan if plan is not None else FaultPlan()
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.log = FaultLog()

    def child_rng(self, stream: str) -> np.random.Generator:
        """A generator for an independent named stream (e.g. per-channel
        backoff jitter), derived deterministically from the seed."""
        return np.random.default_rng([self.seed, zlib.crc32(stream.encode())])

    # ------------------------------------------------------------------
    # Control channel
    # ------------------------------------------------------------------
    def flowmod_verdict(
        self, now: float, target: str = "", xid: Optional[int] = None
    ) -> ChannelVerdict:
        """Decide the fate of one FlowMod delivery attempt."""
        spec = self.plan.flowmod
        if spec.drop > 0 and self.rng.random() < spec.drop:
            if (
                spec.ack_loss_fraction > 0
                and self.rng.random() < spec.ack_loss_fraction
            ):
                self.log.record("flowmod-ack-loss", time=now, target=target, xid=xid)
                return ChannelVerdict("drop-ack")
            self.log.record("flowmod-drop", time=now, target=target, xid=xid)
            return ChannelVerdict("drop")
        if spec.duplicate > 0 and self.rng.random() < spec.duplicate:
            self.log.record("flowmod-duplicate", time=now, target=target, xid=xid)
            return ChannelVerdict("duplicate")
        if spec.delay_probability > 0 and self.rng.random() < spec.delay_probability:
            self.log.record(
                "flowmod-delay", time=now, target=target, xid=xid, delay=spec.delay
            )
            return ChannelVerdict("delay", delay=spec.delay)
        return ChannelVerdict("deliver")

    # ------------------------------------------------------------------
    # TCAM write path
    # ------------------------------------------------------------------
    def write_verdict(
        self, now: float, table: str = "", rule_id: Optional[int] = None
    ) -> str:
        """Decide one TCAM write: ``"ok"``, ``"fail"``, or ``"silent"``."""
        spec = self.plan.tcam
        if spec.fail > 0 and self.rng.random() < spec.fail:
            self.log.record("tcam-write-fail", time=now, target=table, rule_id=rule_id)
            return "fail"
        if spec.silent > 0 and self.rng.random() < spec.silent:
            self.log.record(
                "tcam-write-silent", time=now, target=table, rule_id=rule_id
            )
            return "silent"
        return "ok"

    # ------------------------------------------------------------------
    # Switch agent
    # ------------------------------------------------------------------
    def agent_down(self, agent: str, now: float) -> bool:
        """True when ``agent`` is inside a crash/restart window at ``now``."""
        if not self.plan.crash.times:
            return False
        if self.plan.crash.down_at(now):
            self.log.record("agent-crash-loss", time=now, target=agent)
            return True
        return False

    def stall_duration(self, agent: str, now: float) -> float:
        """Seconds the agent's CPU stalls before serving a submission at
        ``now`` (0.0 when no stall applies)."""
        spec = self.plan.stall
        for start, end in spec.windows:
            if start <= now < end:
                self.log.record(
                    "agent-stall", time=now, target=agent, duration=end - now
                )
                return end - now
        if spec.probability > 0 and self.rng.random() < spec.probability:
            self.log.record(
                "agent-stall", time=now, target=agent, duration=spec.duration
            )
            return spec.duration
        return 0.0

    def __repr__(self) -> str:
        return f"FaultInjector(seed={self.seed}, {self.log!r})"
