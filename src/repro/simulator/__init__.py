"""Varys: the flow-level network simulator and its components."""

from .controller import (
    InstallOutcome,
    InstallerFactory,
    SdnController,
    flow_match,
    flow_rule_priority,
)
from .fairshare import Link, link_utilization, max_min_fair_rates
from .metrics import FlowRecord, MetricsCollector
from .sdnapp import ProactiveTeApp, Reroute, TeAppConfig
from .simulation import Simulation, SimulationConfig

__all__ = [
    "FlowRecord",
    "InstallOutcome",
    "InstallerFactory",
    "Link",
    "MetricsCollector",
    "ProactiveTeApp",
    "Reroute",
    "SdnController",
    "Simulation",
    "SimulationConfig",
    "TeAppConfig",
    "flow_match",
    "flow_rule_priority",
    "link_utilization",
    "link_utilization",
    "max_min_fair_rates",
]
