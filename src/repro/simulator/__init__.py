"""Varys: the flow-level network simulator and its components."""

from .controller import (
    InstallOutcome,
    InstallerFactory,
    SdnController,
    flow_match,
    flow_rule_priority,
)
from .fairshare import (
    Link,
    UNCONSTRAINED_RATE,
    flow_sort_key,
    link_utilization,
    max_min_fair_rates,
)
from .flowstate import FlowColumnView, FlowStore, columnar_max_min_fair_rates
from .metrics import FlowRecord, MetricsCollector
from .sdnapp import ProactiveTeApp, Reroute, TeAppConfig
from .simulation import Simulation, SimulationConfig

__all__ = [
    "FlowColumnView",
    "FlowRecord",
    "FlowStore",
    "InstallOutcome",
    "InstallerFactory",
    "Link",
    "MetricsCollector",
    "ProactiveTeApp",
    "Reroute",
    "SdnController",
    "Simulation",
    "SimulationConfig",
    "TeAppConfig",
    "UNCONSTRAINED_RATE",
    "columnar_max_min_fair_rates",
    "flow_match",
    "flow_rule_priority",
    "flow_sort_key",
    "link_utilization",
    "max_min_fair_rates",
]
