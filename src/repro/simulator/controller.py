"""The SDN controller model.

The controller owns one :class:`~repro.switchsim.agent.SwitchAgent` per
switch in the topology — each wrapping whichever installer scheme the run
evaluates (naive / Hermes / Tango / ESPRES) — and converts TE decisions into
per-switch FlowMods.  Control-channel RTT is modelled explicitly: the
paper's observation that "the benefits of Hermes are more pronounced ...
where RTTs are small (e.g. in the data center)" falls out of this term.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import networkx as nx

from ..engine.clock import Clock
from ..obs.tracer import get_tracer
from ..switchsim.agent import SwitchAgent
from ..switchsim.channel import (
    Channel,
    ChannelConfig,
    NaiveChannel,
    ResilientChannel,
)
from ..switchsim.installer import RuleInstaller
from ..switchsim.messages import FlowMod, FlowModCommand
from ..tcam.rule import Action, Rule
from ..tcam.ternary import TernaryMatch
from ..topology.routing import Path, path_switches
from ..traffic.flows import FlowSpec

InstallerFactory = Callable[[str], RuleInstaller]


def flow_match(flow: FlowSpec) -> TernaryMatch:
    """The exact-match TCAM key identifying one flow.

    Flow-level simulation does not model packet headers; each flow gets a
    unique 32-bit key (its flow id), matched exactly.
    """
    return TernaryMatch(
        value=flow.flow_id & 0xFFFFFFFF, mask=0xFFFFFFFF, width=32
    )


def flow_rule_priority(flow: FlowSpec) -> int:
    """Priority of a flow's TE override rules.

    TE rules override default (low-priority) routing; spreading them over a
    priority band makes inserts land mid-table, exercising the TCAM's
    shifting behaviour the way real multi-tenant rule sets do.
    """
    return 100 + (flow.flow_id % 64)


@dataclass
class InstallOutcome:
    """Result of installing one flow's rules along a path.

    Attributes:
        ready_time: when the new path is fully programmed (all switches
            done) and the flow may switch over.
        per_switch_rits: rule-installation time at each switch touched.
        per_switch_queue_delays: switch-CPU queueing delay of each
            delivered FlowMod — the queue share of the RIT breakdown.
        retries: control-channel redeliveries this installation needed
            (always 0 on the naive channel).
        undelivered: FlowMods that never took effect on their switch —
            blackholed installs on a lossy channel.
    """

    ready_time: float
    per_switch_rits: List[float] = field(default_factory=list)
    per_switch_queue_delays: List[float] = field(default_factory=list)
    retries: int = 0
    undelivered: int = 0


class SdnController:
    """Programs the network through per-switch agents."""

    def __init__(
        self,
        graph: nx.Graph,
        installer_factory: InstallerFactory,
        control_rtt: float = 0.25e-3,
        injector=None,
        channel: str = "naive",
        channel_config: Optional[ChannelConfig] = None,
        clock: Optional[Clock] = None,
    ) -> None:
        """Create agents for every switch in ``graph``.

        Args:
            graph: the topology; nodes with kind != "host" get agents.
            installer_factory: builds the per-switch installer (one fresh
                instance per switch) — this selects the scheme under test.
            control_rtt: controller<->switch round-trip in seconds
                (data-center default 250 us; WAN experiments pass more).
            injector: optional :class:`~repro.faults.injector.FaultInjector`
                shared by every agent and channel of this controller.
            channel: ``"naive"`` (fire-and-forget, the seed behaviour) or
                ``"resilient"`` (retry/backoff/dedup/breaker).
            channel_config: resilient-channel tunables; ignored for naive.
            clock: shared kernel clock every agent and channel derives its
                virtual time from; None creates one for this controller.
        """
        if control_rtt < 0:
            raise ValueError(f"control_rtt cannot be negative: {control_rtt}")
        if channel not in ("naive", "resilient"):
            raise ValueError(f"unknown channel kind: {channel!r}")
        if channel == "resilient" and injector is None:
            raise ValueError("the resilient channel requires a fault injector")
        self.graph = graph
        self.control_rtt = control_rtt
        self.injector = injector
        self.clock = clock if clock is not None else Clock()
        self.agents: Dict[str, SwitchAgent] = {
            node: SwitchAgent(
                installer_factory(node),
                name=node,
                injector=injector,
                clock=self.clock,
            )
            for node, data in graph.nodes(data=True)
            if data.get("kind") != "host"
        }
        self.channels: Dict[str, Channel] = {}
        for node, agent in self.agents.items():
            if channel == "resilient":
                # A breaker opening means the switch stopped acking — if the
                # scheme can degrade (Hermes), tell it to stop promising.
                enter_degraded = getattr(agent.installer, "enter_degraded", None)
                self.channels[node] = ResilientChannel(
                    agent,
                    injector,
                    config=channel_config,
                    rng=injector.child_rng(f"channel:{node}"),
                    on_breaker_open=enter_degraded,
                    clock=self.clock,
                )
            else:
                self.channels[node] = NaiveChannel(
                    agent, injector=injector, clock=self.clock
                )
        # (flow_id, switch) -> installed rule id, for later deletion.
        self._flow_rules: Dict[Tuple[int, str], int] = {}

    # ------------------------------------------------------------------
    # Warm-up
    # ------------------------------------------------------------------
    def prefill_switches(self, rules_per_switch: int) -> None:
        """Pre-install background rules on every switch (no time charged).

        Rules are /24 prefixes over 10.0.0.0/8 with priorities in a low
        band (below every TE override rule), so a TE insert lands above
        them and pays the occupancy-dependent shifting cost — the situation
        Table 1 measures.
        """
        if rules_per_switch < 0:
            raise ValueError("rules_per_switch cannot be negative")
        for agent in self.agents.values():
            background = [
                Rule.from_prefix(
                    f"10.{(index // 256) % 256}.{index % 256}.0/24",
                    10 + (index % 80),
                    Action.output((index % 8) + 1),
                )
                for index in range(rules_per_switch)
            ]
            agent.installer.prefill(background)

    # ------------------------------------------------------------------
    # Path programming
    # ------------------------------------------------------------------
    def install_path(
        self, flow: FlowSpec, path: Path, now: float
    ) -> InstallOutcome:
        """Install the flow's override rule on every switch of ``path``.

        The FlowMod reaches each switch after half an RTT; the path is
        usable once the slowest switch finishes (plus the returning half
        RTT for the barrier confirmation).
        """
        span = get_tracer().start_span(
            "install.path", start=now, category="controller",
            flow=flow.flow_id,
        )
        ready = now
        rits: List[float] = []
        queue_delays: List[float] = []
        retries = 0
        undelivered = 0
        for switch in path_switches(path, self.graph):
            rule = Rule(
                match=flow_match(flow),
                priority=flow_rule_priority(flow),
                action=Action.output(1),
            )
            sent = self.channels[switch].send(
                FlowMod.add(rule), at_time=now + self.control_rtt / 2
            )
            retries += sent.retries
            if sent.completed is None:
                # Lost install: the switch never programmed this hop, so
                # packets of the flow blackhole there until repair.
                undelivered += 1
                ready = max(ready, sent.done_time + self.control_rtt / 2)
                continue
            self._flow_rules[(flow.flow_id, switch)] = rule.rule_id
            rits.append(sent.completed.response_time)
            queue_delays.append(sent.completed.queue_delay)
            ready = max(ready, sent.done_time + self.control_rtt / 2)
        span.finish(end=ready, retries=retries, undelivered=undelivered)
        return InstallOutcome(
            ready_time=ready,
            per_switch_rits=rits,
            per_switch_queue_delays=queue_delays,
            retries=retries,
            undelivered=undelivered,
        )

    def install_paths(
        self, assignments: Sequence[Tuple[FlowSpec, Path]], now: float
    ) -> List[InstallOutcome]:
        """Install several flows' paths as per-switch FlowMod batches.

        Controllers batch the FlowMods of one reconfiguration round; the
        per-switch batch is what gives reordering/rewriting schemes (ESPRES,
        Tango) their leverage.  Returns one outcome per assignment, in
        order.
        """
        per_switch: Dict[str, List[Tuple[int, Rule]]] = {}
        for index, (flow, path) in enumerate(assignments):
            for switch in path_switches(path, self.graph):
                rule = Rule(
                    match=flow_match(flow),
                    priority=flow_rule_priority(flow),
                    action=Action.output(1),
                )
                self._flow_rules[(flow.flow_id, switch)] = rule.rule_id
                per_switch.setdefault(switch, []).append((index, rule))
        span = get_tracer().start_span(
            "install.batch", start=now, category="controller",
            assignments=len(assignments), switches=len(per_switch),
        )
        outcomes = [InstallOutcome(ready_time=now) for _ in assignments]
        for switch, entries in per_switch.items():
            sent = self.channels[switch].send_batch(
                [FlowMod.add(rule) for _, rule in entries],
                at_time=now + self.control_rtt / 2,
            )
            if not sent.completed:
                # The whole batch was lost: every assignment touching this
                # switch is missing a hop, and no rule exists to delete.
                for index, _rule in entries:
                    flow_id = assignments[index][0].flow_id
                    self._flow_rules.pop((flow_id, switch), None)
                    outcomes[index].undelivered += 1
                    outcomes[index].retries += sent.retries
                continue
            for (index, _rule), action in zip(entries, sent.completed):
                outcome = outcomes[index]
                outcome.per_switch_rits.append(action.response_time)
                outcome.per_switch_queue_delays.append(action.queue_delay)
                outcome.retries += sent.retries
                # The resilient channel's ack can trail the last TCAM write
                # (redelivery); the path is only usable once the controller
                # has heard back.
                done = action.finish_time
                if sent.ack_time is not None:
                    done = max(done, sent.ack_time)
                outcome.ready_time = max(
                    outcome.ready_time, done + self.control_rtt / 2
                )
        span.finish(
            end=max((outcome.ready_time for outcome in outcomes), default=now)
        )
        return outcomes

    def remove_flow_rules(
        self, flow: FlowSpec, path: Optional[Path], now: float
    ) -> None:
        """Delete the flow's rules from the switches of ``path`` (if any)."""
        if path is None:
            return
        for switch in path_switches(path, self.graph):
            rule_id = self._flow_rules.pop((flow.flow_id, switch), None)
            if rule_id is None:
                continue
            try:
                self.channels[switch].send(
                    FlowMod.delete(rule_id), at_time=now + self.control_rtt / 2
                )
            except KeyError:
                # The rule was already evicted (e.g. subsumed at insert
                # time); deletion of a logical no-op is itself a no-op.
                pass

    def has_rules_for(self, flow_id: int) -> bool:
        """True when any switch still holds rules for the flow."""
        return any(key[0] == flow_id for key in self._flow_rules)

    # ------------------------------------------------------------------
    # Aggregate telemetry
    # ------------------------------------------------------------------
    def all_rits(self) -> List[float]:
        """Response times of every ADD processed by any switch agent."""
        rits: List[float] = []
        for agent in self.agents.values():
            for completed in agent.history():
                if completed.flow_mod.command is FlowModCommand.ADD:
                    rits.append(completed.response_time)
        return rits

    def total_violations(self) -> int:
        """Guarantee violations across Hermes-managed switches (0 otherwise)."""
        total = 0
        for agent in self.agents.values():
            total += getattr(agent.installer, "violations", 0)
        return total

    def total_channel_retries(self) -> int:
        """Control-channel redeliveries across every switch."""
        return sum(channel.stats.retries for channel in self.channels.values())

    def total_channel_losses(self) -> int:
        """Sends that never took effect (give-ups plus breaker fast-fails)."""
        return sum(
            channel.stats.give_ups + channel.stats.fast_fails
            for channel in self.channels.values()
        )
