"""Max-min fair rate allocation (progressive filling).

Varys is a flow-level simulator: instead of packets, every active flow gets
a fluid rate, and the rates are the max-min fair allocation over the links
its current path traverses — the standard model for long-lived TCP flows
and the one the coflow simulators the paper builds on [29, 30] use.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Mapping, Sequence, Tuple

Link = Tuple[str, str]

#: Sentinel rate for flows whose path traverses no links (same-host
#: transfers): effectively infinite, shared with the columnar backend.
UNCONSTRAINED_RATE = 1e15


def flow_sort_key(flow_id: Hashable) -> Tuple[str, Hashable]:
    """Deterministic, type-stable sort key for flow ids.

    Flow ids are ints in the simulator but any Hashable in the library
    API; keying by ``(type name, value)`` keeps same-type ids in natural
    order while never comparing values of different types.
    """
    return (type(flow_id).__name__, flow_id)


def max_min_fair_rates(
    flow_paths: Mapping[Hashable, Sequence[Link]],
    link_capacities: Mapping[Link, float],
) -> Dict[Hashable, float]:
    """Compute max-min fair rates via progressive filling.

    Args:
        flow_paths: for each flow id, the links its path traverses.  Flows
            with an empty link list (e.g. same-host transfers) are assigned
            infinite capacity upstream; here they get a sentinel large rate.
        link_capacities: capacity per link in bits/second.

    Returns:
        bits/second for every flow id.

    Raises:
        KeyError: when a path uses a link with no declared capacity.
    """
    rates: Dict[Hashable, float] = {}
    active: Dict[Hashable, List[Link]] = {}
    flows_on_link: Dict[Link, set] = {}
    for flow_id, path in flow_paths.items():
        links = list(path)
        if not links:
            rates[flow_id] = UNCONSTRAINED_RATE
            continue
        active[flow_id] = links
        for link in links:
            if link not in link_capacities:
                raise KeyError(f"flow {flow_id!r} uses unknown link {link}")
            flows_on_link.setdefault(link, set()).add(flow_id)

    remaining: Dict[Link, float] = {
        link: link_capacities[link] for link in flows_on_link
    }

    # Progressive filling: repeatedly find the bottleneck link (smallest
    # fair share), freeze its flows at that share, subtract, repeat.
    while active:
        bottleneck_share = None
        bottleneck_link = None
        for link, flows in flows_on_link.items():
            if not flows:
                continue
            share = remaining[link] / len(flows)
            if bottleneck_share is None or share < bottleneck_share:
                bottleneck_share = share
                bottleneck_link = link
        if bottleneck_link is None:
            break
        # Sort the frozen set: iterating it directly would visit flows in
        # hash order, which for str ids varies with PYTHONHASHSEED.  Every
        # frozen flow subtracts the *same* bottleneck_share, so the order
        # cannot change any float result — but it does fix the insertion
        # order of ``rates``, keeping downstream iteration deterministic
        # across processes.
        frozen = sorted(flows_on_link[bottleneck_link], key=flow_sort_key)
        for flow_id in frozen:
            rates[flow_id] = max(0.0, bottleneck_share)
            for link in active[flow_id]:
                flows_on_link[link].discard(flow_id)
                remaining[link] -= bottleneck_share
            del active[flow_id]
        flows_on_link = {
            link: flows for link, flows in flows_on_link.items() if flows
        }
    return rates


def link_utilization(
    flow_paths: Mapping[Hashable, Sequence[Link]],
    rates: Mapping[Hashable, float],
    link_capacities: Mapping[Link, float],
) -> Dict[Link, float]:
    """Utilization in [0, ~1] per link under the given rates."""
    load: Dict[Link, float] = {}
    for flow_id, path in flow_paths.items():
        rate = rates.get(flow_id, 0.0)
        for link in path:
            load[link] = load.get(link, 0.0) + rate
    return {
        link: load[link] / link_capacities[link]
        for link in load
        if link_capacities.get(link, 0.0) > 0
    }
