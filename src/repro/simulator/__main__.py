"""CLI for the Varys simulator.

Run one (topology x workload x scheme x switch) simulation and print the
RIT / FCT / JCT summary::

    python -m repro.simulator --topology fat-tree --k 4 --scheme hermes \\
        --switch pica8-p3290 --jobs 40
    python -m repro.simulator --topology geant --scheme naive \\
        --switch dell-8132f --duration 6
"""

from __future__ import annotations

import argparse

import numpy as np

from ..baselines import INSTALLER_NAMES, make_installer
from ..tcam import SWITCH_MODEL_NAMES, get_switch_model
from ..topology import FatTreeSpec, build_fat_tree, get_isp_topology, hosts, pops
from ..traffic import (
    flows_from_matrix,
    flows_of,
    generate_jobs,
    gravity_matrix,
)
from .simulation import Simulation, SimulationConfig
from .sdnapp import TeAppConfig


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument schema."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.simulator",
        description="Run one Varys flow-level simulation.",
    )
    parser.add_argument(
        "--topology",
        default="fat-tree",
        choices=["fat-tree", "abilene", "geant", "quest"],
    )
    parser.add_argument("--k", type=int, default=4, help="fat-tree k (even)")
    parser.add_argument(
        "--link-gbps", type=float, default=1.0, help="link capacity in Gbit/s"
    )
    parser.add_argument("--scheme", default="naive", choices=sorted(INSTALLER_NAMES))
    parser.add_argument(
        "--switch", default="pica8-p3290", choices=sorted(SWITCH_MODEL_NAMES)
    )
    parser.add_argument("--jobs", type=int, default=40, help="MapReduce jobs (fat-tree)")
    parser.add_argument(
        "--duration", type=float, default=6.0, help="flow window in seconds (ISP)"
    )
    parser.add_argument("--epoch", type=float, default=0.2, help="TE epoch seconds")
    parser.add_argument(
        "--occupancy", type=int, default=500, help="baseline rules per switch"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--reactive", action="store_true", help="packet-in routing mode"
    )
    return parser


def build_workload(args):
    """(graph, flows) for the requested topology/workload."""
    rng = np.random.default_rng(args.seed)
    if args.topology == "fat-tree":
        graph = build_fat_tree(
            FatTreeSpec(k=args.k, link_capacity=args.link_gbps * 1e9)
        )
        jobs = generate_jobs(hosts(graph), job_count=args.jobs, rng=rng)
        return graph, flows_of(jobs)
    graph = get_isp_topology(args.topology, link_capacity=args.link_gbps * 1e9)
    total = 0.35 * sum(d["capacity"] for _, _, d in graph.edges(data=True))
    matrix = gravity_matrix(pops(graph), total, rng=rng)
    return graph, flows_from_matrix(
        matrix, duration=args.duration, mean_flow_size=100e6, rng=rng
    )


def main(argv=None) -> int:
    """Parse args, run the simulation, print the summary."""
    args = build_parser().parse_args(argv)
    graph, flows = build_workload(args)
    config = SimulationConfig(
        te=TeAppConfig(epoch=args.epoch, utilization_threshold=0.5),
        baseline_occupancy=args.occupancy,
        initial_path_policy="static",
        routing_mode="reactive" if args.reactive else "proactive",
        max_time=3600.0,
    )
    factory = lambda name: make_installer(args.scheme, get_switch_model(args.switch))
    simulation = Simulation(graph, flows, factory, config)
    print(
        f"Running {args.scheme} on {args.switch} over {args.topology} "
        f"({len(flows)} flows) ..."
    )
    metrics = simulation.run()
    rits = metrics.rits()
    fcts = metrics.fcts()
    jcts = list(metrics.jcts().values())
    print(f"completed flows: {len(fcts)}/{len(flows)}")
    if rits:
        print(
            f"RIT:  median {np.median(rits) * 1e3:8.3f} ms   "
            f"p99 {np.percentile(rits, 99) * 1e3:8.3f} ms   ({len(rits)} installs)"
        )
    if fcts:
        print(
            f"FCT:  median {np.median(fcts):8.3f} s    "
            f"p99 {np.percentile(fcts, 99):8.3f} s"
        )
    if jcts:
        print(f"JCT:  median {np.median(jcts):8.3f} s    ({len(jcts)} jobs)")
    print(
        f"reroutes: {metrics.total_reroutes()}   "
        f"guarantee violations: {simulation.controller.total_violations()}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
