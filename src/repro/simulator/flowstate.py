"""Columnar flow state: array-backed per-flow bookkeeping for million-flow runs.

The object path keeps one ``_ActiveFlow`` Python object per flow and a
dict-of-sets progressive filling in :func:`~repro.simulator.fairshare.
max_min_fair_rates`; per-flow Python overhead is the simulator's scaling
ceiling after the unified kernel.  This module replaces that data model
with columns:

* :class:`FlowStore` holds remaining-bytes / rate / flag / blackhole
  columns as numpy arrays, plus a flat link×flow incidence structure
  (per-row segments of dense link ids — a CSR whose ``indptr`` is the
  ``(_seg_start, _seg_len)`` pair) rebuilt incrementally on path churn
  and compacted when completed rows dominate.
* :func:`columnar_max_min_fair_rates` / :meth:`FlowStore.recompute` run
  progressive filling as array operations — gather the active incidence,
  rank links by first encounter, then repeatedly freeze the bottleneck
  link's flows with ``np.subtract.at``.

**Exactness contract.**  The columnar backend is *bit-identical* to the
dict backend, not merely close: capacities enter as the same doubles,
per-iteration shares are the same ``remaining / count`` divisions,
bottleneck ties break toward the first-encountered link exactly as the
dict's insertion-ordered strict ``<`` scan does, and every frozen flow
subtracts the *same* bottleneck share — so the accumulation order of the
subtractions (``np.subtract.at`` applies them sequentially) cannot
change any float.  ``tests/simulator/test_flowstate.py`` pins the
equality property-by-property; the object path stays the parity
reference (the same discipline as ``completion_mode``).
"""

from __future__ import annotations

import math
from typing import (
    Callable,
    Dict,
    Hashable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
)

import numpy as np

from ..topology.routing import Path, path_links_cached
from .fairshare import Link, UNCONSTRAINED_RATE, max_min_fair_rates

#: Flag bits of the :class:`FlowStore` ``flags`` column.
FLAG_ACTIVE = np.uint8(0x1)
FLAG_HAS_RULES = np.uint8(0x2)
FLAG_PENDING = np.uint8(0x4)


def _progressive_fill(
    rank_pairs: np.ndarray,
    pair_pos: np.ndarray,
    n_rows: int,
    rem: np.ndarray,
    n_links: int,
    row_len: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Vectorized progressive filling over ranked incidence pairs.

    Args:
        rank_pairs: dense first-encounter link rank per incidence pair,
            flow-major in path order (the order the dict backend builds
            ``flows_on_link`` in).
        pair_pos: per pair, the position of its flow in the row ordering.
        n_rows: number of flows being filled.
        rem: remaining capacity per ranked link; mutated in place.
        n_links: number of ranked links.
        row_len: pairs per row position, when the caller already has it
            (saves a bincount over the pairs).

    Returns:
        float64 rates per row position (0.0 for rows never frozen, which
        cannot happen for rows with at least one link).

    Total work is O(pairs · log pairs + links²): one stable sort builds a
    link→pairs CSR, each link is scanned at most once when it bottlenecks,
    and each flow's pairs are subtracted exactly once when it freezes —
    no per-iteration pass over the surviving pair set.  The bit-exactness
    argument is order-free: every subtraction at a link removes the
    *same* ``bottleneck_share``, so any ordering of the dead pairs yields
    the identical float sequence the dict backend produces.
    """
    rates = np.zeros(n_rows, dtype=np.float64)
    counts = np.bincount(rank_pairs, minlength=n_links)
    share = np.empty(n_links, dtype=np.float64)
    alive = np.ones(n_rows, dtype=bool)
    # Flow CSR: pairs are flow-major, so row r's pairs are the slice
    # [row_start[r], row_start[r] + row_len[r]).
    if row_len is None:
        row_len = np.bincount(pair_pos, minlength=n_rows)
    row_start = np.concatenate(([0], np.cumsum(row_len[:-1])))
    # Link CSR: the stable sort keeps admission order within each link.
    by_link = np.argsort(rank_pairs, kind="stable")
    link_start = np.concatenate(([0], np.cumsum(counts)))
    link_rows = pair_pos[by_link]
    remaining_pairs = int(rank_pairs.size)
    while remaining_pairs:
        share.fill(np.inf)
        np.divide(rem, counts, out=share, where=counts > 0)
        # Ranks are first-encounter order, so argmin's lowest-index tie
        # win reproduces the dict backend's strict-< first-seen pick.
        bottleneck = int(np.argmin(share))
        if not counts[bottleneck]:
            break  # every remaining link is flowless
        bottleneck_share = float(share[bottleneck])
        candidates = link_rows[link_start[bottleneck] : link_start[bottleneck + 1]]
        frozen = candidates[alive[candidates]]
        alive[frozen] = False
        dead_links = rank_pairs[
            _gather_indices(row_start[frozen], row_len[frozen])
        ]
        # Sequential repeated subtraction of the *same* share — matching
        # the dict backend's per-flow `remaining[link] -= share` loop
        # bit-for-bit regardless of flow order.
        np.subtract.at(rem, dead_links, bottleneck_share)
        counts -= np.bincount(dead_links, minlength=n_links)
        rates[frozen] = bottleneck_share if bottleneck_share > 0.0 else 0.0
        remaining_pairs -= int(dead_links.size)
    return rates


def columnar_max_min_fair_rates(
    flow_paths: Mapping[Hashable, object],
    link_capacities: Mapping[Link, float],
) -> Dict[Hashable, float]:
    """Array-backed max-min fair rates, bit-identical to the dict backend.

    Same signature and contract as
    :func:`~repro.simulator.fairshare.max_min_fair_rates` (including the
    ``KeyError`` on unknown links and the sentinel rate for empty paths);
    paths that repeat a link — which :func:`~repro.topology.routing.
    path_links` never produces — fall back to the reference backend so
    the duplicate-subtraction semantics stay identical.

    Raises:
        KeyError: when a path uses a link with no declared capacity.
    """
    rates: Dict[Hashable, float] = {}
    flow_ids: List[Hashable] = []
    lens: List[int] = []
    pair_links: List[int] = []
    link_rank: Dict[Link, int] = {}
    caps: List[float] = []
    for flow_id, path in flow_paths.items():
        links = list(path)
        if not links:
            rates[flow_id] = UNCONSTRAINED_RATE
            continue
        if len(set(links)) != len(links):
            return max_min_fair_rates(flow_paths, link_capacities)
        flow_ids.append(flow_id)
        lens.append(len(links))
        for link in links:
            rank = link_rank.get(link)
            if rank is None:
                if link not in link_capacities:
                    raise KeyError(f"flow {flow_id!r} uses unknown link {link}")
                rank = link_rank[link] = len(caps)
                caps.append(link_capacities[link])
            pair_links.append(rank)
    if not flow_ids:
        return rates
    rank_pairs = np.asarray(pair_links, dtype=np.int64)
    pair_pos = np.repeat(
        np.arange(len(flow_ids), dtype=np.int64),
        np.asarray(lens, dtype=np.int64),
    )
    rem = np.asarray(caps, dtype=np.float64)
    filled = _progressive_fill(
        rank_pairs, pair_pos, len(flow_ids), rem, len(caps)
    )
    for pos, flow_id in enumerate(flow_ids):
        rates[flow_id] = float(filled[pos])
    return rates


class FlowColumnView(Mapping):
    """Lazy ``flow_id -> value`` mapping over one :class:`FlowStore` column.

    Iteration follows row (admission) order — the same order the object
    path's per-flow dicts iterate in — without materializing a dict; the
    TE app and metrics read these views instead of walking flow objects.
    """

    def __init__(
        self,
        store: "FlowStore",
        getter: Callable[[int], object],
        predicate: Optional[Callable[[int], bool]] = None,
    ) -> None:
        """Wrap ``store``; ``getter(row)`` produces values, ``predicate(row)``
        (when given) filters both iteration and lookup."""
        self._store = store
        self._getter = getter
        self._predicate = predicate

    def __iter__(self) -> Iterator[int]:
        """Active flow ids in admission order (predicate-filtered)."""
        flow_id = self._store.flow_id
        for row in self._store.active_rows().tolist():
            if self._predicate is None or self._predicate(row):
                yield int(flow_id[row])

    def __len__(self) -> int:
        """Number of flows the view exposes."""
        if self._predicate is None:
            return len(self._store)
        return sum(1 for _ in self)

    def __getitem__(self, flow_id: int) -> object:
        """The column value for ``flow_id`` (KeyError when filtered out)."""
        row = self._store.row(flow_id)
        if self._predicate is not None and not self._predicate(row):
            raise KeyError(flow_id)
        return self._getter(row)


class FlowStore:
    """Columnar per-flow simulation state over one topology's links.

    Rows are allocated in admission order and never recycled in place —
    completed rows are masked out and reclaimed by a *stable* compaction
    (triggered when at most half the high-water rows are still active),
    so ascending row order always equals admission order.  That keeps
    every argmin/iteration tie-break identical to the object path's
    insertion-ordered dicts.
    """

    def __init__(
        self, link_capacities: Mapping[Link, float], capacity: int = 1024
    ) -> None:
        """Create an empty store for a topology.

        Args:
            link_capacities: capacity per canonical link tuple; the
                mapping's iteration order fixes the dense link ids.
            capacity: initial row capacity (grows by doubling).
        """
        links = list(link_capacities)
        self._link_id: Dict[Link, int] = {
            link: index for index, link in enumerate(links)
        }
        self._link_tuple: List[Link] = links
        self.link_capacity = np.array(
            [link_capacities[link] for link in links], dtype=np.float64
        )
        self._path_arrays: Dict[Path, np.ndarray] = {}
        capacity = max(int(capacity), 16)
        self._cap = capacity
        self.flow_id = np.zeros(capacity, dtype=np.int64)
        self.remaining = np.zeros(capacity, dtype=np.float64)
        self.rate = np.zeros(capacity, dtype=np.float64)
        self.flags = np.zeros(capacity, dtype=np.uint8)
        self.blackholed_since = np.full(capacity, np.nan, dtype=np.float64)
        self._seg_start = np.zeros(capacity, dtype=np.int64)
        self._seg_len = np.zeros(capacity, dtype=np.int64)
        self._specs: List[Optional[object]] = [None] * capacity
        self._paths: List[Optional[Path]] = [None] * capacity
        self._seg_link = np.zeros(max(capacity * 4, 64), dtype=np.int32)
        self._seg_used = 0
        self._row_of: Dict[int, int] = {}
        self.size = 0  # high-water row count since the last compaction
        self._active_rows_cache: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def __contains__(self, flow_id: int) -> bool:
        """True while ``flow_id`` is active."""
        return flow_id in self._row_of

    def __len__(self) -> int:
        """Number of active flows."""
        return len(self._row_of)

    def row(self, flow_id: int) -> int:
        """The row index of an active flow.

        Raises:
            KeyError: for unknown/completed flows.
        """
        return self._row_of[flow_id]

    def active_rows(self) -> np.ndarray:
        """Ascending row indices of active flows (cached between churns)."""
        if self._active_rows_cache is None:
            self._active_rows_cache = np.flatnonzero(
                self.flags[: self.size] & FLAG_ACTIVE
            )
        return self._active_rows_cache

    def flow_ids(self) -> List[int]:
        """Active flow ids in admission order."""
        return [int(fid) for fid in self.flow_id[self.active_rows()]]

    # ------------------------------------------------------------------
    # Row lifecycle
    # ------------------------------------------------------------------
    def _links_of(self, path: Path) -> np.ndarray:
        """Dense link-id array for a path (memoized per path).

        Raises:
            KeyError: when the path uses a link outside the topology.
        """
        array = self._path_arrays.get(path)
        if array is None:
            ids = []
            for link in path_links_cached(path):
                link_id = self._link_id.get(link)
                if link_id is None:
                    raise KeyError(f"path {path!r} uses unknown link {link}")
                ids.append(link_id)
            array = np.asarray(ids, dtype=np.int64)
            self._path_arrays[path] = array
        return array

    def _grow_rows(self) -> None:
        new_cap = self._cap * 2
        for name in ("flow_id", "remaining", "rate", "flags",
                     "blackholed_since", "_seg_start", "_seg_len"):
            old = getattr(self, name)
            grown = np.zeros(new_cap, dtype=old.dtype)
            if name == "blackholed_since":
                grown.fill(np.nan)
            grown[: self._cap] = old
            setattr(self, name, grown)
        self._specs.extend([None] * (new_cap - self._cap))
        self._paths.extend([None] * (new_cap - self._cap))
        self._cap = new_cap

    def _write_segment(self, row: int, links: np.ndarray) -> None:
        need = int(links.size)
        while self._seg_used + need > self._seg_link.size:
            grown = np.zeros(self._seg_link.size * 2, dtype=np.int32)
            grown[: self._seg_used] = self._seg_link[: self._seg_used]
            self._seg_link = grown
        start = self._seg_used
        self._seg_link[start : start + need] = links
        self._seg_start[row] = start
        self._seg_len[row] = need
        self._seg_used = start + need

    def add(self, spec, path: Path, has_installed_rules: bool = False) -> int:
        """Admit a flow (remaining bytes = ``spec.size``); returns its row.

        Raises:
            ValueError: when the flow id is already active.
            KeyError: when the path uses an unknown link.
        """
        flow_id = spec.flow_id
        if flow_id in self._row_of:
            raise ValueError(f"flow {flow_id} is already active")
        links = self._links_of(path)
        if self.size == self._cap:
            if len(self._row_of) <= self.size // 2 and self.size >= 64:
                self.compact()
            else:
                self._grow_rows()
        row = self.size
        self.size = row + 1
        self.flow_id[row] = flow_id
        self.remaining[row] = float(spec.size)
        self.rate[row] = 0.0
        self.flags[row] = FLAG_ACTIVE | (
            FLAG_HAS_RULES if has_installed_rules else np.uint8(0)
        )
        self.blackholed_since[row] = np.nan
        self._write_segment(row, links)
        self._specs[row] = spec
        self._paths[row] = path
        self._row_of[flow_id] = row
        self._active_rows_cache = None
        return row

    def remove(self, flow_id: int) -> None:
        """Retire a completed flow (its row is reclaimed by compaction).

        Raises:
            KeyError: for unknown/completed flows.
        """
        row = self._row_of.pop(flow_id)
        self.flags[row] = np.uint8(0)
        self._specs[row] = None
        self._paths[row] = None
        self._active_rows_cache = None

    def compact(self) -> None:
        """Stable compaction: drop retired rows, keep admission order.

        Stability is load-bearing — argmin tie-breaks resolve to the
        lowest row, which must keep meaning "earliest admitted".
        """
        rows = self.active_rows()
        n = int(rows.size)
        lens = self._seg_len[rows]
        gathered = self._seg_link[_gather_indices(self._seg_start[rows], lens)]
        for name in ("flow_id", "remaining", "rate", "flags",
                     "blackholed_since"):
            column = getattr(self, name)
            column[:n] = column[rows]
        self._specs[:n] = [self._specs[row] for row in rows.tolist()]
        self._paths[:n] = [self._paths[row] for row in rows.tolist()]
        self._specs[n : self.size] = [None] * (self.size - n)
        self._paths[n : self.size] = [None] * (self.size - n)
        self.flags[n : self.size] = np.uint8(0)
        starts = np.zeros(n, dtype=np.int64)
        np.cumsum(lens[:-1], out=starts[1:])
        self._seg_start[:n] = starts
        self._seg_len[:n] = lens
        self._seg_link[: gathered.size] = gathered
        self._seg_used = int(gathered.size)
        self.size = n
        self._row_of = {
            int(self.flow_id[row]): row for row in range(n)
        }
        self._active_rows_cache = None

    def set_path(self, flow_id: int, path: Path) -> None:
        """Repoint a flow's incidence segment at a new path.

        Shrinking paths rewrite in place; growing ones append a fresh
        segment (the old one is reclaimed by the next compaction).
        """
        row = self._row_of[flow_id]
        links = self._links_of(path)
        if links.size <= self._seg_len[row]:
            start = int(self._seg_start[row])
            self._seg_link[start : start + links.size] = links
            self._seg_len[row] = links.size
        else:
            self._write_segment(row, links)
        self._paths[row] = path

    # ------------------------------------------------------------------
    # Column accessors (by flow id)
    # ------------------------------------------------------------------
    def spec(self, flow_id: int):
        """The flow's :class:`~repro.traffic.flows.FlowSpec`."""
        return self._specs[self._row_of[flow_id]]

    def path(self, flow_id: int) -> Path:
        """The flow's current path."""
        return self._paths[self._row_of[flow_id]]

    def _flag(self, flow_id: int, bit: np.uint8) -> bool:
        return bool(self.flags[self._row_of[flow_id]] & bit)

    def _set_flag(self, flow_id: int, bit: np.uint8, value: bool) -> None:
        row = self._row_of[flow_id]
        if value:
            self.flags[row] |= bit
        else:
            self.flags[row] &= ~bit

    def has_installed_rules(self, flow_id: int) -> bool:
        """True once the flow's own rules are installed."""
        return self._flag(flow_id, FLAG_HAS_RULES)

    def set_has_installed_rules(self, flow_id: int, value: bool) -> None:
        """Set/clear the installed-rules flag."""
        self._set_flag(flow_id, FLAG_HAS_RULES, value)

    def pending_activation(self, flow_id: int) -> bool:
        """True while a TE move's rules are still being installed."""
        return self._flag(flow_id, FLAG_PENDING)

    def set_pending_activation(self, flow_id: int, value: bool) -> None:
        """Set/clear the pending-activation flag."""
        self._set_flag(flow_id, FLAG_PENDING, value)

    def blackhole_start(self, flow_id: int) -> Optional[float]:
        """When the flow started blackholing, or None."""
        value = self.blackholed_since[self._row_of[flow_id]]
        return None if math.isnan(value) else float(value)

    def set_blackhole_start(
        self, flow_id: int, at_time: Optional[float]
    ) -> None:
        """Record (or clear, with None) the blackhole start instant."""
        self.blackholed_since[self._row_of[flow_id]] = (
            math.nan if at_time is None else at_time
        )

    # ------------------------------------------------------------------
    # Array physics
    # ------------------------------------------------------------------
    def advance(self, elapsed: float) -> None:
        """Drain ``rate * elapsed / 8`` bytes from every active flow."""
        rows = self.active_rows()
        if rows.size == 0:
            return
        drained = self.remaining[rows] - self.rate[rows] * elapsed / 8.0
        drained[drained < 0.0] = 0.0
        self.remaining[rows] = drained

    def next_completion(self, now: float) -> Tuple[float, Optional[int]]:
        """Earliest-finishing flow ``(eta, flow_id)`` — the vectorized ETA
        scan, tie-breaking to the earliest-admitted flow like the object
        scan's strict ``<``."""
        rows = self.active_rows()
        if rows.size == 0:
            return math.inf, None
        rates = self.rate[rows]
        positive = rates > 0.0
        if not positive.any():
            return math.inf, None
        selected = rows[positive]
        etas = now + self.remaining[selected] * 8.0 / rates[positive]
        best = int(np.argmin(etas))
        return float(etas[best]), int(self.flow_id[selected[best]])

    def _gather_active(self):
        """(rows, lens, gathered link ids) of the active incidence."""
        rows = self.active_rows()
        lens = self._seg_len[rows]
        gathered = self._seg_link[_gather_indices(self._seg_start[rows], lens)]
        return rows, lens, gathered

    def recompute(self) -> None:
        """Recompute the rate column: vectorized max-min fair share.

        Bit-identical to running the dict backend over the same flows —
        see the module docstring's exactness contract.
        """
        rows = self.active_rows()
        if rows.size == 0:
            return
        lens = self._seg_len[rows]
        empty = lens == 0
        if empty.any():
            self.rate[rows[empty]] = UNCONSTRAINED_RATE
            rows = rows[~empty]
            lens = lens[~empty]
            if rows.size == 0:
                return
        gathered = self._seg_link[_gather_indices(self._seg_start[rows], lens)]
        used, rank_pairs = _first_encounter_rank(gathered)
        # int32 pair columns: link ranks and row positions are tiny, and
        # the fill's radix sort and gathers are memory-bound — narrowing
        # roughly halves their traffic.
        pair_pos = np.repeat(np.arange(rows.size, dtype=np.int32), lens)
        rem = self.link_capacity[used].copy()
        self.rate[rows] = _progressive_fill(
            rank_pairs,
            pair_pos,
            int(rows.size),
            rem,
            int(used.size),
            row_len=lens,
        )

    def utilization(self) -> Dict[Link, float]:
        """Per-link utilization, bit-identical to the object path's
        :func:`~repro.simulator.fairshare.link_utilization` (values *and*
        dict insertion order, so TE planning tie-breaks don't move)."""
        rows, lens, gathered = self._gather_active()
        if gathered.size == 0:
            return {}
        weights = np.repeat(self.rate[rows], lens)
        load = np.zeros(self.link_capacity.size, dtype=np.float64)
        np.add.at(load, gathered, weights)
        used, _ranks = _first_encounter_rank(gathered)
        result: Dict[Link, float] = {}
        for link_id in used.tolist():
            capacity = float(self.link_capacity[link_id])
            if capacity > 0.0:
                result[self._link_tuple[link_id]] = float(load[link_id]) / capacity
        return result

    # ------------------------------------------------------------------
    # Link events
    # ------------------------------------------------------------------
    def fail_link(self, link: Link) -> None:
        """Zero a failed link's capacity in the column."""
        link_id = self._link_id.get(link)
        if link_id is not None:
            self.link_capacity[link_id] = 0.0

    def flows_on_link(self, link: Link) -> List[int]:
        """Active flow ids whose path traverses ``link``, admission order."""
        link_id = self._link_id.get(link)
        if link_id is None:
            return []
        rows, lens, gathered = self._gather_active()
        if gathered.size == 0:
            return []
        hits = np.unique(np.repeat(rows, lens)[gathered == link_id])
        return [int(fid) for fid in self.flow_id[hits]]

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def te_views(self):
        """``(flows, paths, eligible_paths, rates)`` mappings for the TE
        app — store-backed views in admission order, no dict builds."""
        flows = FlowColumnView(self, lambda row: self._specs[row])
        paths = FlowColumnView(self, lambda row: self._paths[row])
        eligible = FlowColumnView(
            self,
            lambda row: self._paths[row],
            predicate=lambda row: not (self.flags[row] & FLAG_PENDING),
        )
        rates = FlowColumnView(self, lambda row: float(self.rate[row]))
        return flows, paths, eligible, rates


def _gather_indices(starts: np.ndarray, lens: np.ndarray) -> np.ndarray:
    """Flat indices of per-row segments ``[starts[k], starts[k]+lens[k])``,
    concatenated in row order (the CSR row-gather trick)."""
    total = int(lens.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offsets = np.zeros(lens.size, dtype=np.int64)
    np.cumsum(lens[:-1], out=offsets[1:])
    return np.repeat(starts - offsets, lens) + np.arange(total, dtype=np.int64)


def _first_encounter_rank(gathered: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Rank links by first encounter in the gathered pair stream.

    Returns ``(used, ranks)``: the raw link ids in first-encounter order,
    and each pair's dense rank — the order the dict backend's
    ``flows_on_link`` insertion gives, which is what bottleneck ties
    break on.

    Sort-free over the pairs: fancy assignment with duplicate indices
    writes in index-array order (last wins), so scattering reversed
    positions through the reversed stream leaves each link id holding its
    *first* forward position — two O(pairs) passes plus an argsort over
    the handful of used links.
    """
    if not gathered.size:
        return gathered[:0], np.empty(0, dtype=np.int64)
    universe = int(gathered.max()) + 1
    present = np.zeros(universe, dtype=bool)
    present[gathered] = True
    first_index = np.empty(universe, dtype=np.int64)
    first_index[gathered[::-1]] = np.arange(
        gathered.size - 1, -1, -1, dtype=np.int64
    )
    ids = np.flatnonzero(present)
    used = ids[np.argsort(first_index[ids], kind="stable")]
    rank_of = np.empty(universe, dtype=np.int32)
    rank_of[used] = np.arange(used.size, dtype=np.int32)
    return used, rank_of[gathered]
