"""Varys: the flow-level network simulator (Section 8.1.1 of the paper).

An event-driven fluid simulator: active flows hold max-min fair rates over
their current paths; a proactive TE app reconfigures paths every epoch; and
every reconfiguration pays the *control-plane action latency* of the rule
installations it needs — the quantity Hermes bounds.  A rerouted flow keeps
draining over its congested path until the new path's rules are installed
on every switch, so slow TCAMs directly inflate FCT and JCT (Figures 1, 8,
and 9).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from ..engine.clock import Clock
from ..engine.scheduler import TIER_COMPLETION, EventScheduler
from ..faults.injector import FaultInjector
from ..faults.spec import FaultPlan
from ..obs.tracer import get_tracer
from ..switchsim.channel import ChannelConfig
from ..topology.routing import Path, PathProvider, path_links_cached
from ..traffic.flows import FlowSpec
from .controller import InstallerFactory, SdnController
from .fairshare import link_utilization, max_min_fair_rates
from .flowstate import FlowStore
from .metrics import MetricsCollector
from .sdnapp import ProactiveTeApp, TeAppConfig


@dataclass
class SimulationConfig:
    """Run-wide parameters.

    Attributes:
        control_rtt: controller<->switch RTT in seconds.
        te: the TE application's tunables.
        k_paths: candidate paths per OD pair.
        max_time: hard stop in simulated seconds (flows still active then
            are left incomplete).
        baseline_occupancy: background rules pre-installed per switch —
            production tables are never empty, and occupancy is what makes
            TCAM inserts slow (Table 1).
        channel: controller→switch delivery, ``"naive"`` (fire-and-forget,
            the seed behaviour) or ``"resilient"`` (retry/backoff/dedup).
        channel_config: resilient-channel tunables (None = defaults).
        fault_plan: optional :class:`~repro.faults.spec.FaultPlan` injected
            into every agent, table, and channel of the run.  None (or an
            all-zero plan with the naive channel) leaves results
            byte-identical to a fault-free run.
        fault_seed: seed of the fault injector's random stream.
        completion_mode: how the next flow completion is found.  ``"scan"``
            (the default) recomputes every active flow's ETA each loop
            iteration — the legacy behaviour, byte-identical to the
            pre-kernel simulator and the reference the parity digests pin.
            ``"event"`` schedules the earliest completion as a kernel event
            at each rate recompute and skips stale ones by rate-epoch —
            O(1) per iteration instead of O(active flows), the mode the
            10k-flow benchmark measures.  The two modes agree exactly
            whenever every dispatched event recomputes rates (pure
            arrival/completion workloads); interleaved non-recomputing
            events (TE epochs) can move completions by float-rounding ulps.
        flow_state: the per-flow data model.  ``"objects"`` (the default)
            keeps one :class:`_ActiveFlow` per flow — the parity
            reference.  ``"columnar"`` re-seats the run on a
            :class:`~repro.simulator.flowstate.FlowStore` (numpy columns
            + link×flow incidence arrays): the ``_advance_to`` drain, the
            ETA scan, rate recomputes, and the TE epoch's per-flow dicts
            all become array operations, and same-instant arrival bursts
            batch their rate recomputes.  The two backends agree exactly
            on pure arrival/completion workloads and within float-
            rounding ulps under TE (the ``completion_mode`` discipline;
            see ``docs/architecture.md``).
    """

    control_rtt: float = 0.25e-3
    te: TeAppConfig = field(default_factory=TeAppConfig)
    k_paths: int = 4
    max_time: float = math.inf
    baseline_occupancy: int = 500
    initial_path_policy: str = "ecmp-hash"
    routing_mode: str = "proactive"
    link_failures: tuple = ()  # ((time, (node_a, node_b)), ...)
    channel: str = "naive"
    channel_config: Optional[ChannelConfig] = None
    fault_plan: Optional[FaultPlan] = None
    fault_seed: int = 0
    completion_mode: str = "scan"
    flow_state: str = "objects"

    def __post_init__(self) -> None:
        if self.completion_mode not in ("scan", "event"):
            raise ValueError(
                "completion_mode must be 'scan' (legacy per-iteration ETA "
                "scan) or 'event' (kernel-scheduled completions): "
                f"{self.completion_mode!r}"
            )
        if self.flow_state not in ("objects", "columnar"):
            raise ValueError(
                "flow_state must be 'objects' (per-flow _ActiveFlow, the "
                "parity reference) or 'columnar' (array-backed FlowStore): "
                f"{self.flow_state!r}"
            )
        if self.channel not in ("naive", "resilient"):
            raise ValueError(
                f"channel must be 'naive' or 'resilient': {self.channel!r}"
            )
        if self.initial_path_policy not in ("ecmp-hash", "static"):
            raise ValueError(
                "initial_path_policy must be 'ecmp-hash' (hash flows over the "
                f"ECMP set) or 'static' (single default path): {self.initial_path_policy!r}"
            )
        if self.routing_mode not in ("proactive", "reactive"):
            raise ValueError(
                "routing_mode must be 'proactive' (default routing exists; "
                "only TE reconfigurations touch the control plane) or "
                "'reactive' (every new flow punts to the controller and "
                f"waits for its rules): {self.routing_mode!r}"
            )


@dataclass
class _ActiveFlow:
    """Mutable per-flow simulation state."""

    spec: FlowSpec
    remaining_bytes: float
    path: Path
    rate: float = 0.0
    has_installed_rules: bool = False
    pending_activation: bool = False
    blackholed_since: Optional[float] = None


class Simulation:
    """One simulation run: a topology, a flow workload, and an installer."""

    def __init__(
        self,
        graph: nx.Graph,
        flows: Sequence[FlowSpec],
        installer_factory: InstallerFactory,
        config: Optional[SimulationConfig] = None,
        injector: Optional[FaultInjector] = None,
        clock: Optional[Clock] = None,
    ) -> None:
        """Set up the run.

        Args:
            graph: topology with ``capacity`` on edges and ``kind`` on nodes.
            flows: the workload, in any order.
            installer_factory: per-switch TCAM-management scheme to test.
            config: run parameters (defaults are the data-center setup).
            injector: explicit fault injector (e.g. one the installer
                factory already shares); None builds one from
                ``config.fault_plan``/``fault_seed`` when needed.
            clock: explicit kernel :class:`~repro.engine.clock.Clock` to
                run on (share one to co-simulate with other components);
                None creates a private timeline starting at zero.
        """
        self.config = config if config is not None else SimulationConfig()
        self.graph = graph
        self.provider = PathProvider(graph, k_paths=self.config.k_paths)
        if injector is None and (
            self.config.fault_plan is not None or self.config.channel == "resilient"
        ):
            injector = FaultInjector(
                plan=self.config.fault_plan, seed=self.config.fault_seed
            )
        self.injector = injector
        self.clock = clock if clock is not None else Clock()
        self._scheduler = EventScheduler(self.clock)
        self.controller = SdnController(
            graph,
            installer_factory,
            control_rtt=self.config.control_rtt,
            injector=injector,
            channel=self.config.channel,
            channel_config=self.config.channel_config,
            clock=self.clock,
        )
        if self.config.baseline_occupancy > 0:
            self.controller.prefill_switches(self.config.baseline_occupancy)
        self.app = ProactiveTeApp(self.provider, self.config.te)
        self.metrics = MetricsCollector()
        self._capacities = {
            tuple(sorted((a, b))): data["capacity"]
            for a, b, data in graph.edges(data=True)
        }
        self._arrivals = sorted(flows, key=lambda flow: flow.start_time)
        self._arrival_index = 0
        self._active: Dict[int, _ActiveFlow] = {}
        self._store: Optional[FlowStore] = (
            FlowStore(self._capacities)
            if self.config.flow_state == "columnar"
            else None
        )
        self._rate_epoch = 0
        self._failed_links: set = set()
        self.blackhole_time = 0.0  # flow-seconds spent on failed paths
        for failure_time, link in self.config.link_failures:
            self._schedule(failure_time, "fail", tuple(sorted(link)))

    @property
    def now(self) -> float:
        """Current simulated time (read-only; the kernel clock owns it)."""
        return self.clock.now

    @property
    def fault_log(self):
        """The injector's fault log, or None on fault-free runs."""
        return self.injector.log if self.injector is not None else None

    def _record_outcome(self, outcome) -> None:
        """Fold one installation outcome into the metrics."""
        for rit in outcome.per_switch_rits:
            self.metrics.record_rit(rit)
        for delay in outcome.per_switch_queue_delays:
            self.metrics.record_queue_delay(delay)
        if outcome.retries:
            self.metrics.record_retries(outcome.retries)
        if outcome.undelivered:
            self.metrics.record_undelivered(outcome.undelivered)

    # ------------------------------------------------------------------
    # Event plumbing
    # ------------------------------------------------------------------
    def _schedule(self, time: float, kind: str, payload: object = None) -> None:
        self._scheduler.schedule(time, kind, payload)

    def _next_arrival_time(self) -> float:
        if self._arrival_index < len(self._arrivals):
            return self._arrivals[self._arrival_index].start_time
        return math.inf

    def _n_active(self) -> int:
        """Number of active flows, whichever backend holds them."""
        if self._store is not None:
            return len(self._store)
        return len(self._active)

    def _flow_active(self, flow_id: int) -> bool:
        """True while ``flow_id`` is an active flow."""
        if self._store is not None:
            return flow_id in self._store
        return flow_id in self._active

    def _next_completion(self) -> Tuple[float, Optional[int]]:
        """Earliest-finishing active flow by per-iteration ETA scan.

        Ties resolve to the first-inserted flow (strict ``<``) — the
        tie-break the event mode reproduces through scheduling order and
        the columnar backend through argmin over admission-ordered rows.
        """
        if self._store is not None:
            return self._store.next_completion(self.now)
        best_time, best_flow = math.inf, None
        for flow_id, state in self._active.items():
            if state.rate <= 0:
                continue
            eta = self.now + state.remaining_bytes * 8.0 / state.rate
            if eta < best_time:
                best_time, best_flow = eta, flow_id
        return best_time, best_flow

    def _schedule_completion(self) -> None:
        """Event mode: re-arm the earliest completion for the new rate epoch.

        Every rate recompute starts a new epoch; completion events carry
        the epoch they were computed under, and stale ones are skipped on
        pop.  Only the argmin is scheduled — when it fires, the resulting
        recompute re-arms the next one.
        """
        self._rate_epoch += 1
        best_time, best_flow = self._next_completion()
        if best_flow is not None:
            self._scheduler.schedule(
                best_time,
                "complete",
                (best_flow, self._rate_epoch),
                tier=TIER_COMPLETION,
            )

    def _advance_to(self, time: float) -> None:
        """Drain bytes at current rates up to ``time``."""
        elapsed = time - self.now
        if elapsed > 0:
            if self._store is not None:
                self._store.advance(elapsed)
            else:
                for state in self._active.values():
                    state.remaining_bytes -= state.rate * elapsed / 8.0
                    if state.remaining_bytes < 0:
                        state.remaining_bytes = 0.0
        self.clock.advance_to(time)

    def _recompute_rates(self) -> None:
        profiler = self._scheduler.profiler
        if profiler is not None:
            profiler.mark("sim.fairshare")
        if self._store is not None:
            self._store.recompute()
        else:
            paths = {
                flow_id: path_links_cached(state.path)
                for flow_id, state in self._active.items()
            }
            rates = max_min_fair_rates(paths, self._capacities)
            for flow_id, state in self._active.items():
                state.rate = rates.get(flow_id, 0.0)
        if self.config.completion_mode == "event":
            self._schedule_completion()

    def _recompute_after_admission(self, spec: FlowSpec) -> None:
        """Recompute rates after admitting ``spec``, batching same-instant
        arrival bursts on the columnar backend.

        When the *next* arrival shares this exact instant and no kernel
        event can fire in between, the next dispatch is provably that
        arrival — whose own recompute covers this one, so skipping here
        is unobservable (rates are only read at dispatches).  The one
        exception is a zero-size flow, which must complete before the
        next same-instant arrival and therefore keeps the eager
        recompute.  This turns an N-flow burst from N progressive
        fillings into one.
        """
        if (
            self._store is not None
            and spec.size > 0
            and self._arrival_index < len(self._arrivals)
            # det: allow(float-eq) -- batching exact same-instant arrivals
            and self._arrivals[self._arrival_index].start_time == self.now
            and self._scheduler.next_time() > self.now
        ):
            return
        self._recompute_rates()

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self) -> MetricsCollector:
        """Run to completion (or ``max_time``); returns the metrics."""
        self._schedule(self.config.te.epoch, "epoch")
        if self.config.completion_mode == "event":
            self._loop_event()
        else:
            self._loop_scan()
        if self.injector is not None:
            for kind, count in self.injector.log.counts().items():
                self.metrics.record_fault(kind, count)
        return self.metrics

    def _loop_scan(self) -> None:
        """Legacy loop: per-iteration completion scan (the parity reference)."""
        while True:
            completion_time, completing_flow = self._next_completion()
            event_time = self._scheduler.next_time()
            arrival_time = self._next_arrival_time()
            next_time = min(completion_time, event_time, arrival_time)
            if math.isinf(next_time):
                break  # no arrivals, no events, nothing draining
            if next_time > self.config.max_time:
                self._advance_to(self.config.max_time)
                break
            self._advance_to(next_time)
            # next_time is min() over these exact values, so the equality
            # tests below are identity dispatch (which event fires first),
            # not equality between independently computed floats.
            sanitizer = self._scheduler.sanitizer
            profiler = self._scheduler.profiler
            # det: allow(float-eq) -- identity dispatch against min()
            if completion_time == next_time and completing_flow is not None:
                if sanitizer is not None:
                    # Scan-mode completions are loop-ordered (the ETA scan
                    # picks them), not seq-ordered: not race material.
                    sanitizer.external("scan-completion")
                if profiler is not None:
                    profiler.mark("sim.completion")
                self._complete_flow(completing_flow)
            # det: allow(float-eq) -- identity dispatch against min()
            elif arrival_time == next_time:
                if sanitizer is not None:
                    sanitizer.external("arrival")
                if profiler is not None:
                    profiler.mark("sim.arrival")
                self._admit_next_flow()
            else:
                event = self._scheduler.pop()
                self._dispatch(event.kind, event.payload)
            if not self._n_active() and self._arrival_index >= len(self._arrivals):
                if not self._scheduler.pending(("activate", "start")):
                    break

    def _completion_is_live(self, event) -> bool:
        """True when a scheduled completion is current-epoch and the flow
        is still active (stale ones are discarded, never dispatched)."""
        flow_id, epoch = event.payload
        return epoch == self._rate_epoch and self._flow_active(flow_id)

    def _loop_event(self) -> None:
        """Kernel loop: completions are scheduled events, not scans.

        Stale completion events (superseded by a later rate epoch, or for
        an already-finished flow) are discarded on peek *without advancing
        time* — extra advance points would change the floating-point
        draining sequence and break exact agreement with the scan loop.
        Dispatch order at shared instants matches the scan loop:
        completions carry :data:`~repro.engine.scheduler.TIER_COMPLETION`
        so they sort first, arrivals beat all other same-time events.
        """
        while True:
            head = self._scheduler.peek()
            while (
                head is not None
                and head.tier == TIER_COMPLETION
                and not self._completion_is_live(head)
            ):
                self._scheduler.pop()
                head = self._scheduler.peek()
            event_time = head.time if head is not None else math.inf
            arrival_time = self._next_arrival_time()
            next_time = min(event_time, arrival_time)
            if math.isinf(next_time):
                break
            if next_time > self.config.max_time:
                self._advance_to(self.config.max_time)
                break
            self._advance_to(next_time)
            completion_first = (
                head is not None
                # det: allow(float-eq) -- identity dispatch against min()
                and head.time == next_time
                and head.tier == TIER_COMPLETION
            )
            # det: allow(float-eq) -- identity dispatch against min()
            if arrival_time == next_time and not completion_first:
                if self._scheduler.sanitizer is not None:
                    # Arrival order is fixed by the sorted workload and the
                    # loop's explicit arrival-vs-event rule, not by seq.
                    self._scheduler.sanitizer.external("arrival")
                if self._scheduler.profiler is not None:
                    self._scheduler.profiler.mark("sim.arrival")
                self._admit_next_flow()
            else:
                event = self._scheduler.pop()
                if event.kind == "complete":
                    # Live by construction: stale heads were discarded above.
                    self._complete_flow(event.payload[0])
                else:
                    self._dispatch(event.kind, event.payload)
            if not self._n_active() and self._arrival_index >= len(self._arrivals):
                if not self._scheduler.pending(("activate", "start")):
                    break

    def _dispatch(self, kind: str, payload) -> None:
        """Route one non-completion event to its handler."""
        if kind == "epoch":
            self._run_te_epoch()
        elif kind == "activate":
            self._activate_path(payload)
        elif kind == "start":
            self._start_reactive_flow(payload)
        elif kind == "fail":
            self._fail_link(payload)

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _admit_next_flow(self) -> None:
        spec = self._arrivals[self._arrival_index]
        self._arrival_index += 1
        ecmp = self.provider.ecmp_paths(spec.source, spec.destination)
        if self._failed_links:
            healthy = [
                path
                for path in ecmp
                if not any(
                    link in self._failed_links for link in path_links_cached(path)
                )
            ]
            if healthy:
                ecmp = healthy
            else:
                fallback = self._first_healthy_path(spec)
                if fallback is not None:
                    ecmp = [fallback]
        if self.config.initial_path_policy == "static":
            # Deterministic default routing: collisions are common, so the
            # TE app has real congestion to relieve (the paper's setting).
            path = ecmp[0]
        else:
            path = ecmp[spec.flow_id % len(ecmp)]
        self.metrics.flow_started(spec, self.now)
        if self.config.routing_mode == "reactive":
            # Packet-in: the first packet punts to the controller, which
            # must install the flow's rules before any byte moves — the
            # startup latency of reactive SDN applications.  The FCT clock
            # is already running.
            outcome = self.controller.install_path(spec, path, self.now)
            self._record_outcome(outcome)
            # det: allow(ambiguous-tier) -- start/activate collisions are seq-ordered on purpose; order pinned by parity digests
            self._schedule(
                max(outcome.ready_time, self.now), "start", (spec, path)
            )
            return
        if self._store is not None:
            self._store.add(spec, path)
        else:
            self._active[spec.flow_id] = _ActiveFlow(
                spec=spec, remaining_bytes=spec.size, path=path
            )
        self.metrics.record_active_peak(self._n_active())
        self._recompute_after_admission(spec)

    def _start_reactive_flow(self, payload) -> None:
        spec, path = payload
        if self._store is not None:
            self._store.add(spec, path, has_installed_rules=True)
        else:
            self._active[spec.flow_id] = _ActiveFlow(
                spec=spec,
                remaining_bytes=spec.size,
                path=path,
                has_installed_rules=True,
            )
        self.metrics.record_active_peak(self._n_active())
        self._recompute_rates()

    def _complete_flow(self, flow_id: int) -> None:
        if self._store is not None:
            spec = self._store.spec(flow_id)
            path = self._store.path(flow_id)
            had_rules = self._store.has_installed_rules(flow_id)
            self._store.remove(flow_id)
        else:
            state = self._active.pop(flow_id)
            spec, path, had_rules = state.spec, state.path, state.has_installed_rules
        self.metrics.flow_finished(flow_id, self.now)
        if had_rules:
            self.controller.remove_flow_rules(spec, path, self.now)
        self._recompute_rates()

    def _run_te_epoch(self) -> None:
        if self._n_active():
            if self._store is not None:
                flows, paths, eligible_paths, rates = self._store.te_views()
                utilization = self._store.utilization()
            else:
                paths = {
                    flow_id: state.path for flow_id, state in self._active.items()
                }
                rates = {
                    flow_id: state.rate for flow_id, state in self._active.items()
                }
                flows = {
                    flow_id: state.spec for flow_id, state in self._active.items()
                }
                link_paths = {
                    flow_id: path_links_cached(path)
                    for flow_id, path in paths.items()
                }
                utilization = link_utilization(
                    link_paths, rates, self._capacities
                )
                eligible_paths = {
                    flow_id: path
                    for flow_id, path in paths.items()
                    if not self._active[flow_id].pending_activation
                }
            moves = [
                move
                for move in self.app.plan(
                    flows, eligible_paths, rates, utilization, self._capacities,
                    now=self.now,
                )
                if self._flow_active(move.flow_id)
                and not any(
                    link in self._failed_links
                    for link in path_links_cached(move.new_path)
                )
            ]
            assignments = [
                (flows[move.flow_id], move.new_path) for move in moves
            ]
            # One reconfiguration round = one per-switch FlowMod batch —
            # the granularity at which ESPRES/Tango reorder and rewrite.
            outcomes = self.controller.install_paths(assignments, self.now)
            for move, outcome in zip(moves, outcomes):
                self._record_outcome(outcome)
                if self._store is not None:
                    self._store.set_pending_activation(move.flow_id, True)
                else:
                    self._active[move.flow_id].pending_activation = True
                # det: allow(ambiguous-tier) -- per-move activations are independent; seq order pinned by parity digests
                self._schedule(
                    max(outcome.ready_time, self.now),
                    "activate",
                    (move.flow_id, move.new_path),
                )
        if self._arrival_index < len(self._arrivals) or self._n_active():
            self._schedule(self.now + self.config.te.epoch, "epoch")

    def _activate_path(self, payload) -> None:
        flow_id, new_path = payload
        if not self._flow_active(flow_id):
            return  # completed while the rules were being installed
        if self._store is not None:
            store = self._store
            old_path = store.path(flow_id)
            had_rules = store.has_installed_rules(flow_id)
            spec = store.spec(flow_id)
            store.set_path(flow_id, new_path)
            store.set_pending_activation(flow_id, False)
            store.set_has_installed_rules(flow_id, True)
            blackholed_since = store.blackhole_start(flow_id)
            if blackholed_since is not None:
                self.blackhole_time += self.now - blackholed_since
                store.set_blackhole_start(flow_id, None)
        else:
            state = self._active[flow_id]
            old_path = state.path
            had_rules = state.has_installed_rules
            spec = state.spec
            state.path = new_path
            state.pending_activation = False
            state.has_installed_rules = True
            if state.blackholed_since is not None:
                # The flow was stranded on a failed path until this
                # activation: the whole window is control-plane-induced
                # blackhole time.
                self.blackhole_time += self.now - state.blackholed_since
                state.blackholed_since = None
        self.metrics.flow_rerouted(flow_id)
        if had_rules:
            self.controller.remove_flow_rules(spec, old_path, self.now)
        self._recompute_rates()

    # ------------------------------------------------------------------
    # Link failures
    # ------------------------------------------------------------------
    def _first_healthy_path(self, spec: FlowSpec) -> Optional[Path]:
        for candidate in self.provider.paths(spec.source, spec.destination):
            if not any(
                link in self._failed_links
                for link in path_links_cached(candidate)
            ):
                return candidate
        return None

    def _fail_link(self, link) -> None:
        """A link fails: affected flows blackhole until rerouted.

        The controller reacts immediately (failure notifications are
        cheap); what takes time is *installing the repair rules* — exactly
        the control-plane action latency Hermes bounds.
        """
        self._failed_links.add(link)
        self._capacities[link] = 0.0
        repairs = []
        if self._store is not None:
            self._store.fail_link(link)
            specs = {}
            for flow_id in self._store.flows_on_link(link):
                self._store.set_blackhole_start(flow_id, self.now)
                spec = self._store.spec(flow_id)
                specs[flow_id] = spec
                healthy = self._first_healthy_path(spec)
                if healthy is not None and healthy != self._store.path(flow_id):
                    repairs.append((flow_id, healthy))
        else:
            specs = {}
            for flow_id, state in self._active.items():
                if link not in path_links_cached(state.path):
                    continue
                state.blackholed_since = self.now
                specs[flow_id] = state.spec
                healthy = self._first_healthy_path(state.spec)
                if healthy is not None and healthy != state.path:
                    repairs.append((flow_id, healthy))
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "sim.link-fail", time=self.now, category="sim",
                link=f"{link[0]}-{link[1]}", repairs=len(repairs),
            )
        assignments = [
            (specs[flow_id], path) for flow_id, path in repairs
        ]
        outcomes = self.controller.install_paths(assignments, self.now)
        for (flow_id, path), outcome in zip(repairs, outcomes):
            self._record_outcome(outcome)
            if self._store is not None:
                self._store.set_pending_activation(flow_id, True)
            else:
                self._active[flow_id].pending_activation = True
            # det: allow(ambiguous-tier) -- repair activations are independent; seq order pinned by parity digests
            self._schedule(
                max(outcome.ready_time, self.now), "activate", (flow_id, path)
            )
        self._recompute_rates()
