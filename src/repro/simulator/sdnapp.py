"""The proactive traffic-engineering SDNApp (Section 8.1.1).

"[A] proactive traffic engineering SDNApp [33] that periodically
reconfigures the network by using control plane actions to move congested
flows away from congested links unto links with available capacity."

Every epoch the app inspects link utilizations, picks the most congested
links, and proposes moving their largest flows to the least-loaded of each
flow's k candidate paths.  It is *proactive*: no packet-in messages, so no
startup latency — the only control-plane cost is the reconfiguration
FlowMods, which is exactly the cost Hermes bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping

from ..obs.tracer import get_tracer
from ..topology.routing import Path, PathProvider, path_links_cached
from ..traffic.flows import FlowSpec
from .fairshare import Link


@dataclass(frozen=True)
class TeAppConfig:
    """Tunables of the TE application.

    Attributes:
        epoch: reconfiguration period in seconds.
        utilization_threshold: links above this are congestion candidates.
        max_moves_per_epoch: cap on reroutes issued per epoch.
        improvement_margin: a move must reduce the flow's bottleneck
            utilization by at least this much to be worth the FlowMods.
    """

    epoch: float = 1.0
    utilization_threshold: float = 0.7
    max_moves_per_epoch: int = 16
    improvement_margin: float = 0.05

    def __post_init__(self) -> None:
        if self.epoch <= 0:
            raise ValueError(f"epoch must be positive: {self.epoch}")
        if not 0 < self.utilization_threshold <= 1:
            raise ValueError(
                f"utilization_threshold must be in (0, 1]: {self.utilization_threshold}"
            )
        if self.max_moves_per_epoch < 0:
            raise ValueError("max_moves_per_epoch cannot be negative")


@dataclass(frozen=True)
class Reroute:
    """One proposed path change."""

    flow_id: int
    new_path: Path


class ProactiveTeApp:
    """Moves the biggest flows off the hottest links each epoch."""

    def __init__(self, provider: PathProvider, config: TeAppConfig = TeAppConfig()) -> None:
        self.provider = provider
        self.config = config

    def plan(
        self,
        flows: Mapping[int, FlowSpec],
        current_paths: Mapping[int, Path],
        rates: Mapping[int, float],
        utilization: Mapping[Link, float],
        capacities: Mapping[Link, float],
        now: float = 0.0,
    ) -> List[Reroute]:
        """Propose up to ``max_moves_per_epoch`` reroutes for this epoch.

        Utilization is updated incrementally as moves are chosen so one
        epoch's moves do not all pile onto the same cold link.  ``now`` is
        the sim time of the epoch, used only to timestamp trace events.
        """
        working_utilization: Dict[Link, float] = dict(utilization)
        congested = sorted(
            (
                link
                for link, value in working_utilization.items()
                if value > self.config.utilization_threshold
            ),
            key=lambda link: -working_utilization[link],
        )
        tracer = get_tracer()
        if not congested:
            if tracer.enabled:
                tracer.event(
                    "te.plan", time=now, category="controller",
                    congested=0, moves=0,
                )
            return []
        moves: List[Reroute] = []
        moved_flows: set = set()
        for hot_link in congested:
            if len(moves) >= self.config.max_moves_per_epoch:
                break
            # Largest flows first: moving them relieves the most load.
            candidates = sorted(
                (
                    flow_id
                    for flow_id, path in current_paths.items()
                    if hot_link in path_links_cached(path) and flow_id not in moved_flows
                ),
                key=lambda flow_id: -rates.get(flow_id, 0.0),
            )
            for flow_id in candidates:
                if len(moves) >= self.config.max_moves_per_epoch:
                    break
                flow = flows[flow_id]
                rate = rates.get(flow_id, 0.0)
                current_path = current_paths[flow_id]
                current_cost = self._path_cost(
                    current_path, working_utilization, exclude_rate=0.0, capacities=capacities
                )
                best_path = None
                best_cost = current_cost - self.config.improvement_margin
                for candidate in self.provider.paths(flow.source, flow.destination):
                    if candidate == current_path:
                        continue
                    cost = self._path_cost(
                        candidate,
                        working_utilization,
                        exclude_rate=0.0,
                        capacities=capacities,
                    )
                    if cost < best_cost:
                        best_cost = cost
                        best_path = candidate
                if best_path is None:
                    continue
                moves.append(Reroute(flow_id=flow_id, new_path=best_path))
                moved_flows.add(flow_id)
                self._shift_load(
                    working_utilization, current_path, best_path, rate, capacities
                )
                if working_utilization.get(hot_link, 0.0) <= self.config.utilization_threshold:
                    break
        if tracer.enabled:
            tracer.event(
                "te.plan", time=now, category="controller",
                congested=len(congested), moves=len(moves),
            )
        return moves

    @staticmethod
    def _path_cost(
        path: Path,
        utilization: Mapping[Link, float],
        exclude_rate: float,
        capacities: Mapping[Link, float],
    ) -> float:
        """A path's cost: the utilization of its hottest link."""
        del exclude_rate  # the flow's own share is symmetric across options
        return max(
            (utilization.get(link, 0.0) for link in path_links_cached(path)), default=0.0
        )

    @staticmethod
    def _shift_load(
        utilization: Dict[Link, float],
        old_path: Path,
        new_path: Path,
        rate: float,
        capacities: Mapping[Link, float],
    ) -> None:
        """Move ``rate`` worth of load from old_path to new_path in place."""
        for link in path_links_cached(old_path):
            capacity = capacities.get(link, 0.0)
            if capacity > 0:
                # det: allow(shared-state-mutation) -- planner scratch dict, local to one plan() call
                utilization[link] = utilization.get(link, 0.0) - rate / capacity
        for link in path_links_cached(new_path):
            capacity = capacities.get(link, 0.0)
            if capacity > 0:
                # det: allow(shared-state-mutation) -- planner scratch dict, local to one plan() call
                utilization[link] = utilization.get(link, 0.0) + rate / capacity
