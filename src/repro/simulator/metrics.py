"""Metrics collection: RIT, FCT, and JCT (Section 8.1.2 of the paper).

* **Rule installation time (RIT)** — time for a switch to install one rule,
  including queueing at the switch CPU.
* **Flow completion time (FCT)** — first packet sent to last packet
  received.
* **Job completion time (JCT)** — start of a job's first flow to end of its
  last flow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..traffic.flows import FlowSpec


@dataclass
class FlowRecord:
    """Lifecycle of one simulated flow."""

    spec: FlowSpec
    start_time: float
    finish_time: Optional[float] = None
    reroutes: int = 0

    @property
    def completed(self) -> bool:
        """True once the flow's last byte has been delivered."""
        return self.finish_time is not None

    @property
    def fct(self) -> float:
        """Flow completion time in seconds.

        Raises:
            ValueError: when the flow has not completed.
        """
        if self.finish_time is None:
            raise ValueError(f"flow {self.spec.flow_id} has not completed")
        return self.finish_time - self.start_time


class MetricsCollector:
    """Accumulates flow, job, and rule-installation metrics for one run."""

    def __init__(self) -> None:
        self._flows: Dict[int, FlowRecord] = {}
        self._rits: List[float] = []
        self._queue_delays: List[float] = []
        self._retries = 0
        self._undelivered = 0
        self._fault_counts: Dict[str, int] = {}
        self._peak_active = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def flow_started(self, spec: FlowSpec, at_time: float) -> None:
        """Register a flow's first byte."""
        self._flows[spec.flow_id] = FlowRecord(spec=spec, start_time=at_time)

    def flow_finished(self, flow_id: int, at_time: float) -> None:
        """Register a flow's last byte.

        Raises:
            KeyError: for unknown flows.
        """
        self._flows[flow_id].finish_time = at_time

    def flow_rerouted(self, flow_id: int) -> None:
        """Count one TE-driven path change for the flow."""
        self._flows[flow_id].reroutes += 1

    def record_rit(self, latency: float) -> None:
        """Record one rule installation time."""
        self._rits.append(latency)

    def record_queue_delay(self, delay: float) -> None:
        """Record one action's switch-CPU queueing delay (the RIT share
        spent waiting, as opposed to executing against the TCAM)."""
        self._queue_delays.append(delay)

    def record_retries(self, count: int) -> None:
        """Count control-channel redeliveries."""
        if count < 0:
            raise ValueError(f"retry count cannot be negative: {count}")
        self._retries += count

    def record_undelivered(self, count: int) -> None:
        """Count FlowMods that never took effect on their switch."""
        if count < 0:
            raise ValueError(f"undelivered count cannot be negative: {count}")
        self._undelivered += count

    def record_fault(self, kind: str, count: int = 1) -> None:
        """Count injected fault events by kind (mirrors the FaultLog)."""
        self._fault_counts[kind] = self._fault_counts.get(kind, 0) + count

    def record_active_peak(self, count: int) -> None:
        """Track the high-water mark of concurrently active flows.

        The simulator reports its backend's live count (``len`` of the
        columnar :class:`~repro.simulator.flowstate.FlowStore` or of the
        object dict) after each admission; the collector keeps the max —
        the concurrency the scaling curve reports against.
        """
        if count > self._peak_active:
            self._peak_active = count

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def flow_records(self) -> List[FlowRecord]:
        """All flow records, completed or not."""
        return list(self._flows.values())

    def fcts(self) -> List[float]:
        """FCTs of completed flows."""
        return [record.fct for record in self._flows.values() if record.completed]

    def rits(self) -> List[float]:
        """All recorded rule installation times."""
        return list(self._rits)

    def queue_delays(self) -> List[float]:
        """Per-action queueing delays (pairs with :meth:`rits`)."""
        return list(self._queue_delays)

    def jcts(self) -> Dict[int, float]:
        """Per-job completion times (only jobs whose flows all completed)."""
        starts: Dict[int, float] = {}
        ends: Dict[int, float] = {}
        incomplete: set = set()
        for record in self._flows.values():
            job_id = record.spec.job_id
            if job_id is None:
                continue
            starts[job_id] = min(starts.get(job_id, record.start_time), record.start_time)
            if record.completed:
                ends[job_id] = max(ends.get(job_id, record.finish_time), record.finish_time)
            else:
                incomplete.add(job_id)
        return {
            job_id: ends[job_id] - starts[job_id]
            for job_id in ends
            if job_id not in incomplete
        }

    def job_bytes(self) -> Dict[int, float]:
        """Total bytes per job (for the short/long split of Figure 1)."""
        totals: Dict[int, float] = {}
        for record in self._flows.values():
            job_id = record.spec.job_id
            if job_id is None:
                continue
            totals[job_id] = totals.get(job_id, 0.0) + record.spec.size
        return totals

    def total_reroutes(self) -> int:
        """TE path changes across all flows."""
        return sum(record.reroutes for record in self._flows.values())

    def retry_total(self) -> int:
        """Control-channel redeliveries across the run."""
        return self._retries

    def undelivered_total(self) -> int:
        """FlowMods that never took effect across the run."""
        return self._undelivered

    def fault_counts(self) -> Dict[str, int]:
        """Injected fault events by kind."""
        return dict(self._fault_counts)

    @property
    def peak_active(self) -> int:
        """Most flows simultaneously active across the run."""
        return self._peak_active
