"""Trace and metrics exporters.

Three output formats, all deterministic (sorted keys, fixed separators):

* **JSONL** (``hermes-trace/1``) — one JSON object per line: a header line
  carrying the format tag and the tracer's meta, then every record in
  emission order.  The canonical interchange format; versioned like the
  table snapshots (``hermes-table-snapshot/1``) so readers can refuse
  traces they do not understand.
* **Chrome trace-event JSON** — loadable in Perfetto / ``chrome://tracing``.
  Spans become complete (``ph: "X"``) events, events instants, samples
  counter tracks; each switch gets its own thread row.
* **Prometheus text** — the registry's text-exposition dump (see
  :meth:`repro.obs.metrics.MetricsRegistry.prometheus_text`).
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Tuple

from .metrics import MetricsRegistry
from .tracer import TRACE_FORMAT, RecordingTracer

_JSON_KWARGS = {"sort_keys": True, "separators": (",", ":")}


# ---------------------------------------------------------------------------
# JSONL (hermes-trace/1)
# ---------------------------------------------------------------------------

def trace_lines(tracer: RecordingTracer) -> List[str]:
    """The trace as JSONL lines: header first, then records in order."""
    header = {
        "format": TRACE_FORMAT,
        "meta": tracer.meta,
        "records": len(tracer.records),
    }
    lines = [json.dumps(header, **_JSON_KWARGS)]
    lines.extend(json.dumps(record, **_JSON_KWARGS) for record in tracer.records)
    return lines


def write_trace(tracer: RecordingTracer, path: str) -> None:
    """Write the JSONL trace to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        for line in trace_lines(tracer):
            handle.write(line + "\n")


def parse_trace_lines(lines: Iterable[str]) -> Tuple[dict, List[dict]]:
    """Parse JSONL lines into (header, records), validating the format tag.

    Raises:
        ValueError: on an empty stream, a missing/unknown format tag, or a
            malformed record line.
    """
    iterator = iter(lines)
    header_line = next(iterator, None)
    if header_line is None or not header_line.strip():
        raise ValueError("empty trace: no header line")
    header = json.loads(header_line)
    found = header.get("format") if isinstance(header, dict) else None
    if found != TRACE_FORMAT:
        raise ValueError(
            f"not a {TRACE_FORMAT} trace (format tag: {found!r})"
        )
    records: List[dict] = []
    for number, line in enumerate(iterator, start=2):
        if not line.strip():
            continue
        record = json.loads(line)
        if not isinstance(record, dict) or "type" not in record:
            raise ValueError(f"line {number}: not a trace record")
        records.append(record)
    return header, records


def read_trace(path: str) -> Tuple[dict, List[dict]]:
    """Load a JSONL trace file into (header, records)."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_trace_lines(handle)


# ---------------------------------------------------------------------------
# Chrome trace-event JSON (Perfetto)
# ---------------------------------------------------------------------------

def chrome_trace(records: Iterable[dict], meta: dict = None) -> dict:
    """Convert trace records to the Chrome trace-event JSON object.

    Sim-time seconds become microseconds (the trace-event unit).  Records
    carrying a ``switch`` attribute are grouped onto per-switch thread rows
    (tids assigned in first-appearance order, which is deterministic);
    everything else lands on tid 0 ("controller").
    """
    tids: Dict[str, int] = {}
    names: List[dict] = [
        {
            "ph": "M", "name": "thread_name", "pid": 0, "tid": 0,
            "args": {"name": "controller"},
        }
    ]

    def tid_for(attrs: dict) -> int:
        switch = attrs.get("switch")
        if switch is None:
            return 0
        if switch not in tids:
            tids[switch] = len(tids) + 1
            names.append(
                {
                    "ph": "M", "name": "thread_name", "pid": 0,
                    "tid": tids[switch], "args": {"name": str(switch)},
                }
            )
        return tids[switch]

    events: List[dict] = []
    for record in records:
        rtype = record.get("type")
        attrs = record.get("attrs", {})
        if rtype == "span":
            start_us = record["start"] * 1e6
            events.append(
                {
                    "ph": "X",
                    "name": record["name"],
                    "cat": record.get("cat") or "span",
                    "ts": start_us,
                    "dur": max(0.0, record["end"] * 1e6 - start_us),
                    "pid": 0,
                    "tid": tid_for(attrs),
                    "args": {"id": record["id"], "parent": record["parent"], **attrs},
                }
            )
        elif rtype == "event":
            events.append(
                {
                    "ph": "i",
                    "s": "t",
                    "name": record["name"],
                    "cat": record.get("cat") or "event",
                    "ts": record["time"] * 1e6,
                    "pid": 0,
                    "tid": tid_for(attrs),
                    "args": {"span": record.get("span", 0), **attrs},
                }
            )
        elif rtype == "sample":
            events.append(
                {
                    "ph": "C",
                    "name": record["name"],
                    "ts": record["time"] * 1e6,
                    "pid": 0,
                    "tid": 0,
                    "args": {"value": record["value"]},
                }
            )
    payload = {"traceEvents": names + events, "displayTimeUnit": "ms"}
    if meta:
        payload["otherData"] = dict(meta)
    return payload


def write_chrome_trace(tracer: RecordingTracer, path: str) -> None:
    """Write the Chrome trace-event JSON for a tracer's records."""
    payload = chrome_trace(tracer.records, meta=tracer.meta)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, **_JSON_KWARGS)
        handle.write("\n")


# ---------------------------------------------------------------------------
# Prometheus text
# ---------------------------------------------------------------------------

def write_prometheus(registry: MetricsRegistry, path: str) -> None:
    """Write the registry's Prometheus text-exposition dump."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(registry.prometheus_text())
