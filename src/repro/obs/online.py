"""Online verification: run the ruleset verifier *during* a traced run.

The post-hoc verifier (``repro.analysis.verifier``) can tell you that a run
ended with a priority inversion, but not when it appeared.  This hook rides
the tracer's listener stream instead: every Nth completed switch action it
re-verifies the switch's installer and records the first sim-instant at
which a violation exists.  The chaos harness attaches one per cell and
reports the result through ``ExperimentResult.extras``.

Checks default to the *incremental* atomic-predicate path
(:class:`repro.analysis.ap.IncrementalPairChecker`): installers exposing
``shadow``/``main`` tables with listener support get a live mirror updated
per rule event, so each sampled check costs O(current findings) instead of
re-verifying the whole pair.  Installers without that seam (monolithic
schemes, bare snapshots) silently fall back to full verification.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .tracer import RecordingTracer


class OnlineVerifier:
    """A tracer listener that periodically verifies installer state.

    Args:
        installers: mapping of switch name to the installer to verify.
        every: verify a switch after this many of its completed actions
            (1 = after every action; higher values sample).
        incremental: maintain per-installer incremental checkers where the
            installer supports it (False forces full verification on every
            sampled check — the pre-AP behavior, kept for differential
            tests).
    """

    def __init__(
        self,
        installers: Dict[str, object],
        every: int = 25,
        incremental: bool = True,
    ) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1: {every}")
        self.installers = dict(installers)
        self.every = every
        self.checks_run = 0
        self.violations_found = 0
        self.first_violation: Optional[dict] = None
        self._action_counts: Dict[str, int] = {}
        self._checkers: Dict[str, object] = {}
        if incremental:
            # Imported lazily for the same reason as verify_installer below.
            from ..analysis.ap import attach_incremental_checker

            for name, installer in self.installers.items():
                checker = attach_incremental_checker(installer)
                if checker is not None:
                    self._checkers[name] = checker

    def attach(self, tracer: RecordingTracer) -> "OnlineVerifier":
        """Subscribe to ``tracer``; returns self for chaining."""
        tracer.add_listener(self)
        return self

    def __call__(self, record: dict) -> None:
        if record.get("type") != "span" or record.get("name") != "agent.action":
            return
        switch = record["attrs"].get("switch")
        if switch not in self.installers:
            return
        count = self._action_counts.get(switch, 0) + 1
        self._action_counts[switch] = count
        if count % self.every == 0:
            self._check(switch, record["end"])

    def _check(self, switch: str, now: float) -> None:
        checker = self._checkers.get(switch)
        if checker is not None:
            violations = checker.violations()
        else:
            # Imported lazily: the verifier lives in repro.analysis, whose
            # package __init__ pulls plotting/scipy helpers this hot path
            # must not load unless verification actually runs.
            from ..analysis.verifier import verify_installer

            violations = verify_installer(self.installers[switch])
        self.checks_run += 1
        if violations:
            self.violations_found += len(violations)
            if self.first_violation is None:
                self.first_violation = {
                    "time": now,
                    "switch": switch,
                    "kinds": sorted({violation.kind for violation in violations}),
                }

    def report(self) -> dict:
        """Summary for ``ExperimentResult.extras``."""
        return {
            "checks_run": self.checks_run,
            "violations_found": self.violations_found,
            "first_violation": self.first_violation,
        }

    def violation_times(self) -> List[float]:
        """Sim-instants of violations seen so far (first only, today)."""
        return [self.first_violation["time"]] if self.first_violation else []
