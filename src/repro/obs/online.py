"""Online verification: run the ruleset verifier *during* a traced run.

The post-hoc verifier (``repro.analysis.verifier``) can tell you that a run
ended with a priority inversion, but not when it appeared.  This hook rides
the tracer's listener stream instead: every Nth completed switch action it
re-verifies the switch's installer and records the first sim-instant at
which a violation exists.  The chaos harness attaches one per cell and
reports the result through ``ExperimentResult.extras``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .tracer import RecordingTracer


class OnlineVerifier:
    """A tracer listener that periodically verifies installer state.

    Args:
        installers: mapping of switch name to the installer to verify.
        every: verify a switch after this many of its completed actions
            (1 = after every action; higher values sample).
    """

    def __init__(self, installers: Dict[str, object], every: int = 25) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1: {every}")
        self.installers = dict(installers)
        self.every = every
        self.checks_run = 0
        self.violations_found = 0
        self.first_violation: Optional[dict] = None
        self._action_counts: Dict[str, int] = {}

    def attach(self, tracer: RecordingTracer) -> "OnlineVerifier":
        """Subscribe to ``tracer``; returns self for chaining."""
        tracer.add_listener(self)
        return self

    def __call__(self, record: dict) -> None:
        if record.get("type") != "span" or record.get("name") != "agent.action":
            return
        switch = record["attrs"].get("switch")
        if switch not in self.installers:
            return
        count = self._action_counts.get(switch, 0) + 1
        self._action_counts[switch] = count
        if count % self.every == 0:
            self._check(switch, record["end"])

    def _check(self, switch: str, now: float) -> None:
        # Imported lazily: the verifier lives in repro.analysis, whose
        # package __init__ pulls plotting/scipy helpers this hot path
        # must not load unless verification actually runs.
        from ..analysis.verifier import verify_installer

        violations = verify_installer(self.installers[switch])
        self.checks_run += 1
        if violations:
            self.violations_found += len(violations)
            if self.first_violation is None:
                self.first_violation = {
                    "time": now,
                    "switch": switch,
                    "kinds": sorted({violation.kind for violation in violations}),
                }

    def report(self) -> dict:
        """Summary for ``ExperimentResult.extras``."""
        return {
            "checks_run": self.checks_run,
            "violations_found": self.violations_found,
            "first_violation": self.first_violation,
        }

    def violation_times(self) -> List[float]:
        """Sim-instants of violations seen so far (first only, today)."""
        return [self.first_violation["time"]] if self.first_violation else []
