"""The one audited wall-clock seam of the reproduction.

Everything else in ``repro`` runs on *simulated* time — the determinism
lint's ``wall-clock`` rule flags any direct ``time.time()`` /
``time.perf_counter()`` read, and its ``wallclock-seam`` rule flags them
*specifically* outside this module, pointing callers here.  Concentrating
the reads behind :func:`wallclock` keeps the ``det: allow(wall-clock)``
pragmas in one place that can be audited at a glance: a wall-clock value
obtained through this seam is a *measurement* (how long the host took),
never an input to simulation state, tracer timestamps, or RNG seeding.

Three reads are provided:

* :func:`wallclock` — monotonic seconds for interval timing (the
  profiler's and the benchmarks' stopwatch).
* :func:`unix_time` — epoch seconds, for artifact timestamps.
* :func:`timestamp` — an ISO-8601 UTC date string, for human-facing
  artifact metadata (``results/INDEX.md``, ``perf_history.jsonl``).
"""

from __future__ import annotations

import time
from datetime import datetime, timezone


def wallclock() -> float:
    """Monotonic wall-clock seconds (the process stopwatch).

    The only sanctioned way to time host execution: benchmarks and the
    :class:`~repro.obs.perf.profiler.Profiler` subtract two readings to
    measure real CPU cost.  Never feed the value into simulation state.
    """
    # det: allow(wall-clock) -- the audited seam: interval measurement only
    return time.perf_counter()


def unix_time() -> float:
    """Epoch seconds, for machine-readable artifact timestamps."""
    # det: allow(wall-clock) -- the audited seam: artifact timestamps only
    return time.time()


def timestamp() -> str:
    """ISO-8601 UTC date-time string (second precision), for artifacts."""
    # det: allow(wall-clock) -- the audited seam: artifact timestamps only
    stamp = datetime.now(timezone.utc)
    return stamp.strftime("%Y-%m-%dT%H:%M:%SZ")
