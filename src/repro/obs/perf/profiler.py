"""The wall-clock profiler: hotspot attribution over the kernel's seams.

``repro.obs`` answers *where the simulated milliseconds go*; this module
answers *where the wall-clock seconds go* — the question every scaling PR
(columnar fair share, million-flow runs) must be measured against.  The
profiler is opt-in instrumentation riding the same two seams the race
sanitizer uses, and with the same contract: detached, the hot-path cost
is a single ``is None`` test and runs are byte-identical to an
uninstrumented process.

* **Kernel dispatch** — :meth:`Profiler.on_dispatch` attaches via
  :meth:`repro.engine.scheduler.EventScheduler.attach_profiler`.  All
  wall time between two consecutive pops belongs to the first popped
  event (exactly how the sanitizer attributes state accesses), so every
  second of the run loop lands in a bucket keyed by event kind.  Work
  the loop drives *without* popping (arrival admission, scan-mode
  completions) is cut into its own bucket by the loop's
  :meth:`Profiler.mark` calls.
* **The tracer span stream** — :meth:`Profiler.watch_tracer` wraps a
  :class:`~repro.obs.tracer.RecordingTracer`'s span open/close path,
  stamping wall-clock at both ends.  Because every control-plane layer
  already emits spans (``agent.action``, ``flowmod``, ``install.path``,
  ``hermes.migration``), this yields per-span-name **self** and
  **cumulative** wall time with no per-subsystem instrumentation at all.

Both accumulations roll up into *subsystems* (kernel dispatch, fair
share, TCAM/switch CPU, channel, installers, verifier, Rule Manager) via
:func:`subsystem_of`, and :meth:`Profiler.finish` freezes everything
into a :class:`ProfileReport` — renderable as a table, serializable for
the ``hermes-bench/1`` artifact stream, and exportable as collapsed
stacks for speedscope.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .wallclock import wallclock

#: Buckets that measure the harness rather than the simulation: excluded
#: from the *attributed* fraction the acceptance gate checks.
UNATTRIBUTED_LABELS = frozenset({"setup", "shutdown"})

#: ``(prefix, subsystem)`` pairs, first match wins.  Dispatch labels are
#: ``event:<kind>``; span labels are ``span:<name>``; loop marks are
#: ``sim.<what>``.
_SUBSYSTEM_PREFIXES: Tuple[Tuple[str, str], ...] = (
    ("event:epoch", "fairshare"),
    ("event:complete", "completion"),
    ("event:activate", "installer"),
    ("event:start", "installer"),
    ("event:fail", "installer"),
    ("event:flowmod", "channel"),
    ("event:", "kernel-dispatch"),
    ("sim.arrival", "arrival"),
    ("sim.completion", "completion"),
    ("sim.fairshare", "fairshare"),
    ("span:flowmod", "channel"),
    ("span:channel", "channel"),
    ("span:agent.", "switch-cpu"),
    ("span:install.", "installer"),
    ("span:hermes.migration", "rule-manager"),
    ("span:hermes.", "gatekeeper"),
    ("span:verify", "verifier"),
    ("span:fairshare", "fairshare"),
)


def subsystem_of(label: str) -> str:
    """Map a profiler label to its subsystem (first matching prefix).

    Unknown labels map to themselves, so new event kinds or span names
    show up in reports immediately instead of vanishing into "other".
    """
    for prefix, subsystem in _SUBSYSTEM_PREFIXES:
        if label.startswith(prefix):
            return subsystem
    return label


@dataclass
class SpanCost:
    """Wall-clock cost of one span name across a profiled run."""

    count: int = 0
    self_seconds: float = 0.0
    cumulative_seconds: float = 0.0


@dataclass
class ProfileReport:
    """A finished profile: where the wall-clock seconds went.

    Attributes:
        total_seconds: wall time between :meth:`Profiler.begin` and
            :meth:`Profiler.finish`.
        segments: per-label ``(count, seconds)`` of dispatch-timeline
            segments (labels: ``event:<kind>``, ``sim.arrival``, ...).
        spans: per-span-name wall-clock costs from the tracer stream.
        subsystems: roll-up of ``segments`` by :func:`subsystem_of`.
        attributed_seconds: total segment time outside
            :data:`UNATTRIBUTED_LABELS`.
        meta: free-form context (scenario name, scheme, seed).
    """

    total_seconds: float = 0.0
    segments: Dict[str, Tuple[int, float]] = field(default_factory=dict)
    spans: Dict[str, SpanCost] = field(default_factory=dict)
    subsystems: Dict[str, float] = field(default_factory=dict)
    attributed_seconds: float = 0.0
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def attributed_fraction(self) -> float:
        """Share of measured wall time attributed to named subsystems."""
        if self.total_seconds <= 0:
            return 0.0
        return min(1.0, self.attributed_seconds / self.total_seconds)

    def to_dict(self) -> dict:
        """JSON-ready payload (sorted keys, plain types)."""
        return {
            "total_seconds": self.total_seconds,
            "attributed_seconds": self.attributed_seconds,
            "attributed_fraction": self.attributed_fraction,
            "segments": {
                label: {"count": count, "seconds": seconds}
                for label, (count, seconds) in sorted(self.segments.items())
            },
            "spans": {
                name: {
                    "count": cost.count,
                    "self_seconds": cost.self_seconds,
                    "cumulative_seconds": cost.cumulative_seconds,
                }
                for name, cost in sorted(self.spans.items())
            },
            "subsystems": dict(sorted(self.subsystems.items())),
            "meta": dict(self.meta),
        }

    def collapsed(self) -> List[str]:
        """Collapsed-stack lines (``subsystem;label weight_us``) of the
        dispatch timeline — loadable by speedscope / flamegraph.pl."""
        lines = []
        for label in sorted(self.segments):
            _count, seconds = self.segments[label]
            weight = int(round(seconds * 1e6))
            if weight > 0:
                lines.append(f"{subsystem_of(label)};{label} {weight}")
        return lines

    def render(self, top: int = 12) -> str:
        """The CLI's text report for one profile."""
        lines = [
            f"profiled {self.total_seconds * 1e3:.1f} ms wall-clock, "
            f"{self.attributed_fraction * 100:.1f}% attributed to named "
            f"subsystems"
        ]
        if self.meta:
            rendered = ", ".join(
                f"{key}={self.meta[key]}" for key in sorted(self.meta)
            )
            lines.append(f"meta: {rendered}")
        lines.append("")
        lines.append(f"{'subsystem':<18}{'wall (ms)':>12}{'share':>9}")
        for name, seconds in sorted(
            self.subsystems.items(), key=lambda item: -item[1]
        ):
            share = seconds / self.total_seconds if self.total_seconds else 0.0
            lines.append(f"{name:<18}{seconds * 1e3:>12.3f}{share * 100:>8.1f}%")
        ranked_segments = sorted(
            self.segments.items(), key=lambda item: -item[1][1]
        )[:top]
        if ranked_segments:
            lines.append("")
            lines.append(
                f"{'dispatch label':<22}{'count':>8}{'wall (ms)':>12}"
                f"{'ms/event':>10}"
            )
            for label, (count, seconds) in ranked_segments:
                per = seconds / count * 1e3 if count else 0.0
                lines.append(
                    f"{label:<22}{count:>8}{seconds * 1e3:>12.3f}{per:>10.4f}"
                )
        ranked_spans = sorted(
            self.spans.items(), key=lambda item: -item[1].self_seconds
        )[:top]
        if ranked_spans:
            lines.append("")
            lines.append(
                f"{'span name':<22}{'count':>8}{'self (ms)':>12}{'cum (ms)':>12}"
            )
            for name, cost in ranked_spans:
                lines.append(
                    f"{name:<22}{cost.count:>8}"
                    f"{cost.self_seconds * 1e3:>12.3f}"
                    f"{cost.cumulative_seconds * 1e3:>12.3f}"
                )
        return "\n".join(lines)


class Profiler:
    """Accumulates wall-clock time per event kind and span name.

    Life cycle: construct, attach (:meth:`watch_scheduler` and/or
    :meth:`watch_tracer`), :meth:`begin` right before the run,
    :meth:`finish` right after — everything between lands in a named
    bucket.  The object is single-use; profile a second run with a
    fresh instance.
    """

    def __init__(self, meta: Optional[Dict[str, object]] = None) -> None:
        self.meta: Dict[str, object] = dict(meta or {})
        self._segments: Dict[str, List[float]] = {}  # label -> [count, sec]
        self._spans: Dict[str, SpanCost] = {}
        # Parallel stack of open profiled spans: [span_id, name,
        # opened_at_wall, child_seconds].
        self._span_stack: List[List[object]] = []
        self._t0: Optional[float] = None
        self._t1: Optional[float] = None
        self._cursor: float = 0.0
        self._label: str = "setup"
        self.events_seen = 0

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def watch_scheduler(self, scheduler) -> "Profiler":
        """Attach to an :class:`~repro.engine.scheduler.EventScheduler`."""
        scheduler.attach_profiler(self)
        return self

    def watch_tracer(self, tracer) -> "Profiler":
        """Wrap a :class:`~repro.obs.tracer.RecordingTracer`'s span path.

        The wrappers stamp wall-clock at span open and close; they call
        straight through to the tracer, so the recorded (sim-time) trace
        is unchanged — the profiler is a pure observer of the stream.
        """
        original_start = tracer.start_span
        original_finish = tracer._finish_span

        def start_span(name, start, category="", **attrs):
            span = original_start(name, start, category, **attrs)
            self._span_stack.append([span.span_id, name, wallclock(), 0.0])
            return span

        def _finish_span(span, end, attrs):
            was_open = any(open_span is span for open_span in tracer._open)
            original_finish(span, end, attrs)
            if was_open:
                self._close_span(span.span_id)

        tracer.start_span = start_span
        tracer._finish_span = _finish_span
        return self

    def watch_simulation(self, simulation) -> "Profiler":
        """Attach to a simulation's scheduler (the usual entry point)."""
        return self.watch_scheduler(simulation._scheduler)

    # ------------------------------------------------------------------
    # The dispatch timeline
    # ------------------------------------------------------------------
    def begin(self) -> None:
        """Start the stopwatch; time before the first event is ``setup``."""
        self._t0 = self._cursor = wallclock()
        self._label = "setup"

    def _cut(self, new_label: str) -> None:
        now = wallclock()
        if self._t0 is None:  # attached but never begun: auto-begin
            self._t0 = now
        else:
            bucket = self._segments.get(self._label)
            if bucket is None:
                bucket = self._segments[self._label] = [0, 0.0]
            bucket[1] += now - self._cursor
        bucket = self._segments.get(new_label)
        if bucket is None:
            bucket = self._segments[new_label] = [0, 0.0]
        bucket[0] += 1
        self._cursor = now
        self._label = new_label

    def on_dispatch(self, event) -> None:
        """Scheduler hook: a kernel event was popped for dispatch."""
        self.events_seen += 1
        self._cut(f"event:{event.kind}")

    def mark(self, label: str) -> None:
        """Loop hook: work driven outside the scheduler starts here
        (arrival admission, scan-mode completion handling)."""
        self._cut(label)

    # ------------------------------------------------------------------
    # Span accounting
    # ------------------------------------------------------------------
    def _close_span(self, span_id: int) -> None:
        for index in range(len(self._span_stack) - 1, -1, -1):
            if self._span_stack[index][0] == span_id:
                _sid, name, opened, child_seconds = self._span_stack.pop(index)
                elapsed = wallclock() - opened
                cost = self._spans.get(name)
                if cost is None:
                    cost = self._spans[name] = SpanCost()
                cost.count += 1
                cost.cumulative_seconds += elapsed
                cost.self_seconds += max(0.0, elapsed - child_seconds)
                if self._span_stack:
                    self._span_stack[-1][3] += elapsed
                return

    # ------------------------------------------------------------------
    # Finishing
    # ------------------------------------------------------------------
    def finish(self) -> ProfileReport:
        """Stop the stopwatch and freeze the report (idempotent)."""
        if self._t1 is None:
            self._t1 = wallclock()
            if self._t0 is None:
                self._t0 = self._t1
            else:
                bucket = self._segments.get(self._label)
                if bucket is None:
                    bucket = self._segments[self._label] = [0, 0.0]
                bucket[1] += self._t1 - self._cursor
        segments = {
            label: (int(count), seconds)
            for label, (count, seconds) in self._segments.items()
        }
        subsystems: Dict[str, float] = {}
        attributed = 0.0
        for label, (_count, seconds) in segments.items():
            subsystems[subsystem_of(label)] = (
                subsystems.get(subsystem_of(label), 0.0) + seconds
            )
            if label not in UNATTRIBUTED_LABELS:
                attributed += seconds
        return ProfileReport(
            total_seconds=self._t1 - self._t0,
            segments=segments,
            spans={name: cost for name, cost in self._spans.items()},
            subsystems=subsystems,
            attributed_seconds=attributed,
            meta=dict(self.meta),
        )

    def __repr__(self) -> str:
        return (
            f"Profiler(events={self.events_seen}, "
            f"segments={len(self._segments)}, spans={len(self._spans)})"
        )


def profile_simulation(simulation, tracer=None, meta=None) -> ProfileReport:
    """Run ``simulation`` under a fresh profiler; returns the report.

    Attaches to the simulation's scheduler (and to ``tracer``'s span
    stream when given), begins right before ``run()`` and finishes right
    after, so the ``setup`` bucket stays negligible.  Callers that also
    need the run's metrics should run the simulation themselves and
    drive a :class:`Profiler` by hand.
    """
    profiler = Profiler(meta=meta)
    profiler.watch_simulation(simulation)
    if tracer is not None and getattr(tracer, "enabled", False):
        profiler.watch_tracer(tracer)
    profiler.begin()
    simulation.run()
    return profiler.finish()
