"""Collapsed-stack ("folded") flamegraph output from traces and profiles.

One line per unique stack, ``frame;frame;frame weight`` — the format
Brendan Gregg's ``flamegraph.pl`` and speedscope both ingest directly,
so the repo needs no visualization dependency of its own.

Two sources fold into the same format:

* a ``hermes-trace/1`` span stream (**sim time**): each finished span
  contributes its *self* time — duration minus the time covered by its
  child spans — under the stack of span names from the root down.  A
  flowmod → agent.batch → agent.action nest renders as three frames.
* a :class:`~repro.obs.perf.profiler.ProfileReport` (**wall time**):
  each dispatch segment contributes under ``subsystem;label`` (the
  report's own :meth:`collapsed`).

Weights are integer microseconds — collapsed-stack consumers expect
integer sample counts, and a microsecond is fine-grained enough that
rounding never hides a segment that mattered.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


def _span_paths(spans: Sequence[dict]) -> Dict[int, str]:
    """Map span id → semicolon-joined name path from the root down.

    A span whose parent never finished (an orphan: parent id missing
    from the record stream) roots its own stack — the trace is still
    renderable, just shallower than the live nesting was.
    """
    by_id = {span["id"]: span for span in spans}
    paths: Dict[int, str] = {}

    def path_of(span_id: int) -> str:
        cached = paths.get(span_id)
        if cached is not None:
            return cached
        span = by_id[span_id]
        parent_id = span.get("parent", 0)
        if parent_id and parent_id in by_id:
            path = f"{path_of(parent_id)};{span['name']}"
        else:
            path = span["name"]
        paths[span_id] = path
        return path

    for span in spans:
        path_of(span["id"])
    return paths


def trace_collapsed(records: Sequence[dict]) -> List[str]:
    """Fold a ``hermes-trace/1`` record stream into collapsed stacks.

    Only span records participate; identical stacks merge (weights sum);
    output is sorted by stack for deterministic artifacts.  Self time is
    clamped at zero — children finishing after their parent (error-path
    out-of-order finishes) cannot produce negative weights.
    """
    spans = [record for record in records if record.get("type") == "span"]
    child_time: Dict[int, float] = {}
    for span in spans:
        parent_id = span.get("parent", 0)
        if parent_id:
            child_time[parent_id] = child_time.get(parent_id, 0.0) + (
                span["end"] - span["start"]
            )
    paths = _span_paths(spans)
    weights: Dict[str, int] = {}
    for span in spans:
        duration = span["end"] - span["start"]
        self_time = max(0.0, duration - child_time.get(span["id"], 0.0))
        micros = int(round(self_time * 1e6))
        if micros <= 0:
            continue
        stack = paths[span["id"]]
        weights[stack] = weights.get(stack, 0) + micros
    return [f"{stack} {weight}" for stack, weight in sorted(weights.items())]


def write_collapsed(lines: Sequence[str], path: str) -> str:
    """Write collapsed-stack lines to ``path`` (trailing newline included)."""
    with open(path, "w", encoding="utf-8") as handle:
        for line in lines:
            handle.write(line + "\n")
    return path
