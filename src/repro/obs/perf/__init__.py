"""``repro.obs.perf`` — the wall-clock performance observatory.

Three concerns, one package:

* :mod:`~repro.obs.perf.profiler` — opt-in hotspot attribution over the
  kernel dispatch path and the tracer span stream (off-path cost: one
  ``is None`` test; off = byte-identical runs).
* :mod:`~repro.obs.perf.burn` — the guarantee-burn ledger: SLO
  compliance, violation windows, and per-layer budget attribution from
  an existing sim-time trace.
* :mod:`~repro.obs.perf.bench` — the ``hermes-bench/1`` artifact layer
  every benchmark suite writes through, plus the regression comparator
  and the ``results/`` index/history generators.

:mod:`~repro.obs.perf.wallclock` is the repo's single audited seam to
the host clock — the determinism lint's ``wallclock-seam`` rule keeps
every other ``src/repro`` module off ``time.perf_counter`` and friends.
"""

from .bench import (
    BENCH_FORMAT,
    HeadlineDelta,
    bench_artifact,
    compare,
    load_artifact,
    machine_fingerprint,
    metric_direction,
    read_history,
    write_bench_artifact,
    write_index,
)
from .burn import (
    DEFAULT_GUARANTEE_SECONDS,
    GuaranteeBurnReport,
    LayerBurn,
    ViolationWindow,
    guarantee_burn,
)
from .cli import PERF_FORMAT
from .flame import trace_collapsed, write_collapsed
from .profiler import (
    ProfileReport,
    Profiler,
    SpanCost,
    profile_simulation,
    subsystem_of,
)
from .wallclock import timestamp, unix_time, wallclock

__all__ = [
    "BENCH_FORMAT",
    "DEFAULT_GUARANTEE_SECONDS",
    "GuaranteeBurnReport",
    "HeadlineDelta",
    "LayerBurn",
    "PERF_FORMAT",
    "ProfileReport",
    "Profiler",
    "SpanCost",
    "ViolationWindow",
    "bench_artifact",
    "compare",
    "guarantee_burn",
    "load_artifact",
    "machine_fingerprint",
    "metric_direction",
    "profile_simulation",
    "read_history",
    "subsystem_of",
    "timestamp",
    "trace_collapsed",
    "unix_time",
    "wallclock",
    "write_bench_artifact",
    "write_collapsed",
    "write_index",
]
