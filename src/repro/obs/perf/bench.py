"""The unified benchmark artifact layer: ``hermes-bench/1``.

Before this module the repo's 19 benchmark suites printed tables and two
of them wrote ad-hoc JSON files; nothing recorded *when* a number was
measured, *on what machine*, or *at which commit* — so there was no perf
trajectory, only snapshots.  Every suite now funnels through one writer:

* :func:`bench_artifact` builds the versioned document — format tag,
  suite name, a **machine fingerprint** (CPU count, Python, platform,
  git commit), a flat numeric ``headline`` (the comparison surface), and
  a free-form suite ``payload``;
* :func:`write_bench_artifact` writes ``BENCH_<suite>.json``, appends a
  trajectory point to ``results/perf_history.jsonl`` (one JSON line per
  bench run: the curve the ROADMAP's scaling item needs), and
  regenerates ``results/INDEX.md``;
* :func:`compare` diffs two artifacts' headlines under per-direction
  regression thresholds — ``python -m repro.obs perf bench-compare``
  exits nonzero when a metric regressed, which is what lets CI gate.

Headline direction is inferred from the metric name: names carrying
``speedup`` / ``rate`` / ``per_s`` / ``throughput`` / ``ops`` count as
higher-is-better; everything else (seconds, ms, MiB, counts of work)
as lower-is-better.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .wallclock import timestamp, unix_time

#: Versioned artifact format tag (the ``hermes-trace/1`` convention).
BENCH_FORMAT = "hermes-bench/1"

#: Default regression threshold: worse by >20% fails the comparison.
DEFAULT_THRESHOLD = 0.2

#: Headline-name fragments marking a metric as higher-is-better.
_HIGHER_IS_BETTER = ("speedup", "rate", "per_s", "throughput", "ops")


def metric_direction(name: str) -> str:
    """``"higher"`` or ``"lower"`` — which way ``name`` should move."""
    lowered = name.lower()
    if any(fragment in lowered for fragment in _HIGHER_IS_BETTER):
        return "higher"
    return "lower"


def git_commit() -> str:
    """The repo's short commit hash, or ``"unknown"`` outside a checkout."""
    try:
        result = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    if result.returncode != 0:
        return "unknown"
    return result.stdout.strip() or "unknown"


def machine_fingerprint() -> Dict[str, object]:
    """Where a measurement was taken: the context a wall-clock number
    is meaningless without."""
    return {
        "cpu_count": os.cpu_count() or 1,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "commit": git_commit(),
    }


def bench_artifact(
    suite: str,
    headline: Dict[str, float],
    payload: Optional[dict] = None,
    meta: Optional[dict] = None,
) -> dict:
    """Build one ``hermes-bench/1`` document (pure; writes nothing).

    Args:
        suite: short suite name (``fig15``, ``engine``, ``verifier``...).
        headline: flat name→number dict — the comparison surface.
        payload: suite-specific detail (tables, sub-timings), free-form.
        meta: extra context merged next to the fingerprint.

    Raises:
        ValueError: on an empty suite name or a non-numeric headline.
    """
    if not suite:
        raise ValueError("suite name must be non-empty")
    for name, value in headline.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ValueError(
                f"headline values must be numbers: {name}={value!r}"
            )
    document = {
        "format": BENCH_FORMAT,
        "suite": suite,
        "date": timestamp(),
        "unix_time": unix_time(),
        "fingerprint": machine_fingerprint(),
        "headline": dict(headline),
    }
    if meta:
        document["meta"] = dict(meta)
    if payload is not None:
        document["payload"] = payload
    return document


def load_artifact(path: str) -> dict:
    """Load and validate a ``hermes-bench/1`` artifact.

    Raises:
        ValueError: on a missing/foreign format tag or a missing headline.
    """
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    found = document.get("format") if isinstance(document, dict) else None
    if found != BENCH_FORMAT:
        raise ValueError(
            f"{path}: not a {BENCH_FORMAT} artifact (format tag: {found!r})"
        )
    if not isinstance(document.get("headline"), dict):
        raise ValueError(f"{path}: artifact carries no headline dict")
    return document


# ---------------------------------------------------------------------------
# Writing: artifact + history + index, one call
# ---------------------------------------------------------------------------

def default_results_dir() -> str:
    """``$HERMES_BENCH_DIR`` or the repo's ``results/`` directory."""
    override = os.environ.get("HERMES_BENCH_DIR")
    if override:
        return override
    return "results"


def write_bench_artifact(
    suite: str,
    headline: Dict[str, float],
    payload: Optional[dict] = None,
    meta: Optional[dict] = None,
    out: Optional[str] = None,
    results_dir: Optional[str] = None,
    history: bool = True,
    index: bool = True,
) -> str:
    """Write one suite's artifact; append history; refresh the index.

    ``out`` overrides the artifact path (the ``BENCH_*_OUT`` env-var
    convention); history and the index still land in ``results_dir``.
    Returns the artifact path.
    """
    directory = results_dir if results_dir is not None else default_results_dir()
    os.makedirs(directory, exist_ok=True)
    document = bench_artifact(suite, headline, payload=payload, meta=meta)
    path = out if out else os.path.join(directory, f"BENCH_{suite}.json")
    out_dir = os.path.dirname(path)
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    if history:
        append_history(document, directory)
    if index:
        write_index(directory)
    return path


def append_history(document: dict, results_dir: str) -> str:
    """Append one trajectory point for ``document`` to the history file.

    The point is deliberately small — suite, date, commit, headline — so
    the JSONL stays greppable and plottable after thousands of runs.
    """
    path = os.path.join(results_dir, "perf_history.jsonl")
    point = {
        "suite": document["suite"],
        "date": document["date"],
        "unix_time": document["unix_time"],
        "commit": document["fingerprint"]["commit"],
        "cpu_count": document["fingerprint"]["cpu_count"],
        "python": document["fingerprint"]["python"],
        "headline": document["headline"],
    }
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(point, sort_keys=True) + "\n")
    return path


def read_history(results_dir: Optional[str] = None) -> List[dict]:
    """Parse ``perf_history.jsonl`` (empty list when absent)."""
    directory = results_dir if results_dir is not None else default_results_dir()
    path = os.path.join(directory, "perf_history.jsonl")
    if not os.path.exists(path):
        return []
    points = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                points.append(json.loads(line))
    return points


def _fmt_number(value: float) -> str:
    if isinstance(value, int) or float(value).is_integer():
        return f"{int(value)}"
    return f"{value:.4g}"


def write_index(results_dir: Optional[str] = None) -> str:
    """Regenerate ``INDEX.md`` from the artifacts present in the dir.

    One line per artifact: suite, measurement date, commit, and the
    headline numbers — the generated replacement for the hand-pasted
    ``artifacts.txt`` grab-bag.
    """
    directory = results_dir if results_dir is not None else default_results_dir()
    entries = []
    for name in sorted(os.listdir(directory)):
        if not (name.startswith("BENCH_") and name.endswith(".json")):
            continue
        try:
            document = load_artifact(os.path.join(directory, name))
        except (ValueError, json.JSONDecodeError, OSError):
            continue  # legacy or foreign JSON: listed nowhere
        headline = ", ".join(
            f"{key}={_fmt_number(value)}"
            for key, value in sorted(document["headline"].items())
        )
        entries.append(
            (
                document["suite"],
                f"| {document['suite']} | {document['date']} | "
                f"{document['fingerprint']['commit']} | `{name}` | "
                f"{headline} |"
            )
        )
    history = read_history(directory)
    lines = [
        "# Benchmark artifacts",
        "",
        "Generated by `repro.obs.perf.bench.write_index` — do not edit by",
        "hand; every benchmark run through the shared helper refreshes it.",
        "Each artifact is a `hermes-bench/1` JSON document; the full",
        f"trajectory ({len(history)} points) lives in `perf_history.jsonl`.",
        "",
        "| suite | date | commit | artifact | headline |",
        "| --- | --- | --- | --- | --- |",
    ]
    lines.extend(line for _suite, line in sorted(entries))
    path = os.path.join(directory, "INDEX.md")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")
    return path


# ---------------------------------------------------------------------------
# Comparison: the regression gate
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class HeadlineDelta:
    """One headline metric compared across two artifacts.

    ``ratio`` is ``b / a`` (guarded against zero); ``regressed`` is True
    when the metric moved the wrong way by more than the threshold.
    """

    metric: str
    direction: str
    a: float
    b: float
    ratio: float
    regressed: bool

    def __str__(self) -> str:
        arrow = {"lower": "↓ better", "higher": "↑ better"}[self.direction]
        verdict = "REGRESSED" if self.regressed else "ok"
        return (
            f"{self.metric:<28} {self.a:>12.6g} -> {self.b:>12.6g} "
            f"({self.ratio:.3f}x, {arrow}): {verdict}"
        )


def compare(
    artifact_a: dict,
    artifact_b: dict,
    threshold: float = DEFAULT_THRESHOLD,
) -> Tuple[List[HeadlineDelta], List[str]]:
    """Compare two artifacts' shared headline metrics.

    Returns ``(deltas, notes)`` — notes flag metrics present on only one
    side and suite mismatches.  A metric regresses when it is worse than
    ``1 + threshold`` times the baseline (lower-is-better) or below
    ``1 / (1 + threshold)`` of it (higher-is-better).
    """
    if threshold < 0:
        raise ValueError(f"threshold must be non-negative: {threshold}")
    notes: List[str] = []
    suite_a = artifact_a.get("suite")
    suite_b = artifact_b.get("suite")
    if suite_a != suite_b:
        notes.append(
            f"comparing different suites: {suite_a!r} vs {suite_b!r}"
        )
    head_a: Dict[str, float] = artifact_a["headline"]
    head_b: Dict[str, float] = artifact_b["headline"]
    for missing in sorted(set(head_a) ^ set(head_b)):
        side = "baseline" if missing in head_a else "candidate"
        notes.append(f"metric {missing!r} present only in the {side}")
    deltas: List[HeadlineDelta] = []
    for metric in sorted(set(head_a) & set(head_b)):
        a, b = float(head_a[metric]), float(head_b[metric])
        direction = metric_direction(metric)
        ratio = b / a if a != 0 else (1.0 if b == 0 else float("inf"))
        if direction == "lower":
            regressed = ratio > 1.0 + threshold
        else:
            regressed = ratio < 1.0 / (1.0 + threshold)
        deltas.append(
            HeadlineDelta(
                metric=metric,
                direction=direction,
                a=a,
                b=b,
                ratio=ratio,
                regressed=regressed,
            )
        )
    return deltas, notes
