"""The ``perf`` subcommand group of ``python -m repro.obs``.

* ``perf profile SCENARIO`` — run a canned scenario (demo / fig01 /
  fig08 / chaos) under the wall-clock profiler with tracing on; print
  the hotspot report and the guarantee-burn ledger; optionally write the
  ``hermes-perf/1`` JSON artifact, a wall-clock flamegraph, and the
  trace itself.
* ``perf report TRACE`` — the guarantee-burn ledger of an existing
  trace (``--json`` for the structured form).
* ``perf flamegraph TRACE`` — sim-time collapsed stacks from a trace's
  span tree (load the output in speedscope or flamegraph.pl).
* ``perf bench-compare A B`` — diff two ``hermes-bench/1`` artifacts;
  exits nonzero when a headline metric regressed past the threshold
  (CI's perf gate).
* ``perf index [DIR]`` — regenerate ``results/INDEX.md`` from the
  artifacts on disk.

Heavy imports stay inside the command functions: ``bench-compare`` and
``index`` must work without numpy.
"""

from __future__ import annotations

import argparse
import json

#: Versioned profile-artifact format tag.
PERF_FORMAT = "hermes-perf/1"


def _cmd_profile(args: argparse.Namespace) -> int:
    from ...experiments.common import canned_scenario
    from ..export import write_trace
    from ..tracer import RecordingTracer, use_tracer
    from .bench import machine_fingerprint
    from .burn import guarantee_burn
    from .flame import write_collapsed
    from .profiler import Profiler

    tracer = RecordingTracer(meta={"scenario": args.scenario})
    with use_tracer(tracer):
        simulation, meta = canned_scenario(args.scenario)
        profiler = Profiler(meta=meta)
        profiler.watch_simulation(simulation)
        profiler.watch_tracer(tracer)
        profiler.begin()
        metrics = simulation.run()
    report = profiler.finish()
    burn = guarantee_burn(tracer.records, guarantee=args.guarantee_ms * 1e-3)
    print(report.render())
    print()
    print(burn.render())
    print()
    print(
        f"{len(metrics.rits())} installs, {len(tracer.records)} trace "
        f"records, {profiler.events_seen} kernel events"
    )
    if args.out:
        document = {
            "format": PERF_FORMAT,
            "scenario": args.scenario,
            "fingerprint": machine_fingerprint(),
            "profile": report.to_dict(),
            "burn": burn.to_dict(),
        }
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.out}")
    if args.flame:
        write_collapsed(report.collapsed(), args.flame)
        print(f"wrote {args.flame} (wall-clock collapsed stacks)")
    if args.trace_out:
        write_trace(tracer, args.trace_out)
        print(f"wrote {args.trace_out}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from ..export import read_trace
    from .burn import guarantee_burn

    _header, records = read_trace(args.trace)
    burn = guarantee_burn(
        records,
        guarantee=args.guarantee_ms * 1e-3,
        window_gap=args.window_gap,
    )
    if args.json:
        print(json.dumps(burn.to_dict(), indent=2, sort_keys=True))
    else:
        print(burn.render())
    return 0


def _cmd_flamegraph(args: argparse.Namespace) -> int:
    from ..export import read_trace
    from .flame import trace_collapsed, write_collapsed

    _header, records = read_trace(args.trace)
    lines = trace_collapsed(records)
    if args.out:
        write_collapsed(lines, args.out)
        print(f"wrote {args.out} ({len(lines)} stacks, sim-time weights)")
    else:
        for line in lines:
            print(line)
    return 0


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    from .bench import compare, load_artifact

    artifact_a = load_artifact(args.baseline)
    artifact_b = load_artifact(args.candidate)
    deltas, notes = compare(artifact_a, artifact_b, threshold=args.threshold)
    print(
        f"comparing {args.baseline} -> {args.candidate} "
        f"(threshold {args.threshold * 100:.0f}%)"
    )
    for note in notes:
        print(f"  note: {note}")
    for delta in deltas:
        print(f"  {delta}")
    regressed = [delta for delta in deltas if delta.regressed]
    if regressed:
        print(f"FAIL: {len(regressed)} metric(s) regressed")
        return 1
    print(f"ok: {len(deltas)} metric(s) within threshold")
    return 0


def _cmd_index(args: argparse.Namespace) -> int:
    from .bench import write_index

    path = write_index(args.dir)
    print(f"wrote {path}")
    return 0


def register(subparsers) -> None:
    """Mount the ``perf`` group on ``python -m repro.obs``'s subparsers."""
    parser = subparsers.add_parser(
        "perf", help="wall-clock profiling, guarantee burn, bench artifacts"
    )
    perf_sub = parser.add_subparsers(dest="perf_command", required=True)

    p_profile = perf_sub.add_parser(
        "profile", help="profile a canned scenario (hotspots + burn)"
    )
    p_profile.add_argument(
        "scenario", help="canned scenario: demo, fig01, fig08, or chaos"
    )
    p_profile.add_argument(
        "--out", help="write the hermes-perf/1 JSON artifact here"
    )
    p_profile.add_argument(
        "--flame", help="write wall-clock collapsed stacks here"
    )
    p_profile.add_argument(
        "--trace-out", help="write the recorded hermes-trace/1 JSONL here"
    )
    p_profile.add_argument(
        "--guarantee-ms",
        type=float,
        default=5.0,
        help="guarantee for the burn ledger (default 5 ms)",
    )
    p_profile.set_defaults(func=_cmd_profile)

    p_report = perf_sub.add_parser(
        "report", help="guarantee-burn ledger of an existing trace"
    )
    p_report.add_argument("trace", help="path to a hermes-trace/1 JSONL file")
    p_report.add_argument(
        "--guarantee-ms",
        type=float,
        default=5.0,
        help="guarantee budget (default 5 ms)",
    )
    p_report.add_argument(
        "--window-gap",
        type=float,
        default=0.05,
        help="merge violations closer than this (sim s) into one window",
    )
    p_report.add_argument(
        "--json", action="store_true", help="emit the structured report"
    )
    p_report.set_defaults(func=_cmd_report)

    p_flame = perf_sub.add_parser(
        "flamegraph", help="sim-time collapsed stacks from a trace"
    )
    p_flame.add_argument("trace", help="path to a hermes-trace/1 JSONL file")
    p_flame.add_argument(
        "--out", help="write here instead of stdout"
    )
    p_flame.set_defaults(func=_cmd_flamegraph)

    p_compare = perf_sub.add_parser(
        "bench-compare",
        help="diff two hermes-bench/1 artifacts; nonzero exit on regression",
    )
    p_compare.add_argument("baseline", help="baseline artifact (A)")
    p_compare.add_argument("candidate", help="candidate artifact (B)")
    p_compare.add_argument(
        "--threshold",
        type=float,
        default=0.2,
        help="allowed relative slowdown before failing (default 0.2)",
    )
    p_compare.set_defaults(func=_cmd_bench_compare)

    p_index = perf_sub.add_parser(
        "index", help="regenerate INDEX.md from the artifacts on disk"
    )
    p_index.add_argument(
        "dir",
        nargs="?",
        default=None,
        help="results directory (default: results/ or $HERMES_BENCH_DIR)",
    )
    p_index.set_defaults(func=_cmd_index)
