"""The guarantee-burn ledger: SLO compliance from a trace.

Hermes's product is a *latency guarantee* — the paper's default is 5 ms
per rule installation.  The summarizer already splits every installed
FlowMod's latency into the four layers of the control path
(:data:`repro.obs.summary.STAGES`: gatekeeper → queue → tcam → channel);
this module joins those breakdowns against the configured guarantee and
reports, as one structured object:

* **compliance** — how many installs landed inside the budget, the
  violation rate, and the burn-fraction distribution (latency divided by
  guarantee: 1.0 = the budget exactly spent);
* **violation windows** — contiguous sim-time intervals holding the
  violations, merged when closer than ``window_gap`` (a burst of
  violations reads as one incident, the way an SLO postmortem slices
  time);
* **per-layer budget attribution** — how much of the budget each layer
  burned on average and at the tail, over compliant and violating
  installs separately, so "the channel ate the budget" and "the TCAM ate
  the budget" are distinguishable at a glance.

The ledger is pure sim-time arithmetic over an existing trace — it never
reads the wall clock and never perturbs a run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..summary import STAGES, FlowModBreakdown, flowmod_breakdowns, percentile

#: The paper's headline guarantee: 5 ms per rule installation.
DEFAULT_GUARANTEE_SECONDS = 5e-3

#: Violations closer together than this (sim seconds) merge into one window.
DEFAULT_WINDOW_GAP = 0.05


@dataclass(frozen=True)
class ViolationWindow:
    """One contiguous burst of guarantee violations.

    Attributes:
        start: sim time of the first violating install's start.
        end: sim time of the last violating install's end.
        count: violating installs inside the window.
        worst_seconds: the slowest install's attributed latency.
        worst_layer: the layer that burned the most budget in the window.
    """

    start: float
    end: float
    count: int
    worst_seconds: float
    worst_layer: str

    def to_dict(self) -> dict:
        return {
            "start": self.start,
            "end": self.end,
            "count": self.count,
            "worst_seconds": self.worst_seconds,
            "worst_layer": self.worst_layer,
        }


@dataclass
class LayerBurn:
    """One layer's share of the guarantee budget across installs."""

    mean_seconds: float = 0.0
    p99_seconds: float = 0.0
    mean_budget_share: float = 0.0  # mean(layer / guarantee)
    share_of_latency: float = 0.0  # layer total / all-layer total

    def to_dict(self) -> dict:
        return {
            "mean_seconds": self.mean_seconds,
            "p99_seconds": self.p99_seconds,
            "mean_budget_share": self.mean_budget_share,
            "share_of_latency": self.share_of_latency,
        }


@dataclass
class GuaranteeBurnReport:
    """Everything the ledger derives from one trace + one guarantee."""

    guarantee_seconds: float
    installed: int
    compliant: int
    violations: int
    violation_rate: float
    burn_p50: float
    burn_p99: float
    burn_max: float
    layers: Dict[str, LayerBurn] = field(default_factory=dict)
    windows: List[ViolationWindow] = field(default_factory=list)
    worst: List[FlowModBreakdown] = field(default_factory=list)

    def to_dict(self) -> dict:
        """JSON-ready payload for artifacts and the CLI's ``--json``."""
        return {
            "guarantee_seconds": self.guarantee_seconds,
            "installed": self.installed,
            "compliant": self.compliant,
            "violations": self.violations,
            "violation_rate": self.violation_rate,
            "burn_p50": self.burn_p50,
            "burn_p99": self.burn_p99,
            "burn_max": self.burn_max,
            "layers": {
                name: layer.to_dict() for name, layer in self.layers.items()
            },
            "windows": [window.to_dict() for window in self.windows],
            "worst": [
                {
                    "span_id": item.span_id,
                    "switch": item.switch,
                    "start": item.start,
                    "total_seconds": item.total,
                    "burn": item.total / self.guarantee_seconds,
                }
                for item in self.worst
            ],
        }

    def render(self) -> str:
        """The CLI's text report for one ledger."""
        g_ms = self.guarantee_seconds * 1e3
        lines = [
            f"guarantee-burn ledger against a {g_ms:g} ms guarantee:",
            f"  {self.installed} installed FlowMods, "
            f"{self.compliant} compliant, {self.violations} violations "
            f"({self.violation_rate * 100:.2f}%)",
            f"  budget burn: p50={self.burn_p50 * 100:.1f}%  "
            f"p99={self.burn_p99 * 100:.1f}%  max={self.burn_max * 100:.1f}%",
            "",
            f"  {'layer':<12}{'mean (ms)':>11}{'p99 (ms)':>11}"
            f"{'of budget':>11}{'of latency':>12}",
        ]
        for name in STAGES:
            layer = self.layers.get(name, LayerBurn())
            lines.append(
                f"  {name:<12}{layer.mean_seconds * 1e3:>11.4f}"
                f"{layer.p99_seconds * 1e3:>11.4f}"
                f"{layer.mean_budget_share * 100:>10.1f}%"
                f"{layer.share_of_latency * 100:>11.1f}%"
            )
        if self.windows:
            lines.append("")
            lines.append(f"  {len(self.windows)} violation window(s):")
            for window in self.windows:
                lines.append(
                    f"    t={window.start:8.3f}-{window.end:8.3f}  "
                    f"{window.count:>4} violations  worst "
                    f"{window.worst_seconds * 1e3:.3f} ms "
                    f"(dominated by {window.worst_layer})"
                )
        else:
            lines.append("")
            lines.append("  no violation windows: every install met the budget")
        if self.worst:
            lines.append("")
            lines.append("  worst offenders:")
            for item in self.worst:
                lines.append(
                    f"    t={item.start:8.3f} {item.switch:<14} "
                    f"total={item.total * 1e3:8.3f} ms "
                    f"({item.total / self.guarantee_seconds * 100:.0f}% of "
                    f"budget)  gk={item.gatekeeper * 1e3:.3f} "
                    f"queue={item.queue * 1e3:.3f} tcam={item.tcam * 1e3:.3f} "
                    f"chan={item.channel * 1e3:.3f}"
                )
        return "\n".join(lines)


def _dominant_layer(item: FlowModBreakdown) -> str:
    return max(STAGES, key=lambda stage: item.stage(stage))


def _merge_windows(
    violating: Sequence[FlowModBreakdown], gap: float
) -> List[ViolationWindow]:
    windows: List[ViolationWindow] = []
    current: List[FlowModBreakdown] = []
    for item in violating:  # breakdowns arrive sorted by start
        if current and item.start - current[-1].end > gap:
            windows.append(_freeze_window(current))
            current = []
        current.append(item)
    if current:
        windows.append(_freeze_window(current))
    return windows


def _freeze_window(items: Sequence[FlowModBreakdown]) -> ViolationWindow:
    worst = max(items, key=lambda item: item.total)
    return ViolationWindow(
        start=items[0].start,
        end=max(item.end for item in items),
        count=len(items),
        worst_seconds=worst.total,
        worst_layer=_dominant_layer(worst),
    )


def guarantee_burn(
    source,
    guarantee: float = DEFAULT_GUARANTEE_SECONDS,
    window_gap: float = DEFAULT_WINDOW_GAP,
    top: int = 5,
) -> GuaranteeBurnReport:
    """Build the ledger from trace records or ready-made breakdowns.

    Args:
        source: either a sequence of raw ``hermes-trace/1`` records or a
            sequence of :class:`~repro.obs.summary.FlowModBreakdown`.
        guarantee: the per-install budget in sim seconds.
        window_gap: merge violations closer than this into one window.
        top: worst offenders to keep on the report.

    Raises:
        ValueError: on a non-positive guarantee.
    """
    if guarantee <= 0:
        raise ValueError(f"guarantee must be positive: {guarantee!r}")
    items: Sequence[FlowModBreakdown]
    if source and isinstance(source[0], FlowModBreakdown):
        items = list(source)
    else:
        items = flowmod_breakdowns(source)
    violating = [item for item in items if item.total > guarantee]
    burns = [item.total / guarantee for item in items]
    total_latency = sum(item.total for item in items)
    layers: Dict[str, LayerBurn] = {}
    for name in STAGES:
        values = [item.stage(name) for item in items]
        layer_total = sum(values)
        layers[name] = LayerBurn(
            mean_seconds=layer_total / len(values) if values else 0.0,
            p99_seconds=percentile(values, 99),
            mean_budget_share=(
                layer_total / (len(values) * guarantee) if values else 0.0
            ),
            share_of_latency=(
                layer_total / total_latency if total_latency > 0 else 0.0
            ),
        )
    worst = sorted(violating or items, key=lambda item: -item.total)[:top]
    return GuaranteeBurnReport(
        guarantee_seconds=guarantee,
        installed=len(items),
        compliant=len(items) - len(violating),
        violations=len(violating),
        violation_rate=len(violating) / len(items) if items else 0.0,
        burn_p50=percentile(burns, 50),
        burn_p99=percentile(burns, 99),
        burn_max=max(burns, default=0.0),
        layers=layers,
        windows=_merge_windows(violating, window_gap),
        worst=worst,
    )
