"""Observability for the control plane: tracing, metrics, exporters.

``repro.obs`` is zero-dependency (stdlib only) and built around sim time:

* :mod:`~repro.obs.tracer` — spans, events, gauge samples; a no-op global
  tracer by default so untraced runs stay byte-identical to the seed.
* :mod:`~repro.obs.metrics` — counters, gauges, fixed-bucket histograms.
* :mod:`~repro.obs.export` — JSONL (``hermes-trace/1``), Chrome
  trace-event JSON, Prometheus text.
* :mod:`~repro.obs.summary` — per-stage FlowMod breakdowns and trace diffs
  (the engine behind ``python -m repro.obs``).
* :mod:`~repro.obs.online` — the tracer-listener verification hook.
* :mod:`~repro.obs.perf` — the wall-clock performance observatory:
  opt-in hotspot profiler, guarantee-burn ledger, and the
  ``hermes-bench/1`` benchmark artifact layer.

See ``docs/observability.md`` for the span taxonomy and trace schema.
"""

from .export import (
    chrome_trace,
    parse_trace_lines,
    read_trace,
    trace_lines,
    write_chrome_trace,
    write_prometheus,
    write_trace,
)
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .online import OnlineVerifier
from .summary import (
    FlowModBreakdown,
    TraceSummary,
    flowmod_breakdowns,
    percentile,
    render_diff,
    render_summary,
    summarize,
)
from .tracer import (
    NULL_SPAN,
    TRACE_FORMAT,
    RecordingTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "TRACE_FORMAT",
    "NULL_SPAN",
    "Tracer",
    "RecordingTracer",
    "Span",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS",
    "trace_lines",
    "write_trace",
    "parse_trace_lines",
    "read_trace",
    "chrome_trace",
    "write_chrome_trace",
    "write_prometheus",
    "OnlineVerifier",
    "FlowModBreakdown",
    "TraceSummary",
    "flowmod_breakdowns",
    "summarize",
    "percentile",
    "render_summary",
    "render_diff",
]
