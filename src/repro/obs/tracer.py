"""The tracing core: sim-time spans, typed events, and gauge samples.

Three record types, all timestamped in *simulated* seconds (the determinism
lint's ``tracer-wall-clock`` rule enforces that callers never feed a
wall-clock read into one):

* **span** — a named interval with attributes, e.g. one FlowMod's trip
  through a channel or one Rule Manager migration.  Spans nest: a span
  started while another is open records it as its parent, which is how the
  trace ties a TCAM write to the channel send that caused it.
* **event** — a named instant (a GateKeeper verdict, a channel timeout, an
  injected fault), attached to the innermost open span.
* **sample** — a named gauge reading (shadow occupancy, bucket tokens),
  recorded only when the value changes.

The process-global tracer defaults to a no-op :class:`Tracer` whose methods
return immediately — instrumented code paths perform no recording and no
extra randomness, so untraced runs stay byte-identical to the seed.  Tests
and experiments install a :class:`RecordingTracer` with
:func:`use_tracer`/:func:`set_tracer`, or inject one explicitly into the
components that accept a ``tracer`` argument.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Dict, List, Optional

from .metrics import MetricsRegistry

#: Versioned trace format tag, carried in the JSONL header line (the same
#: convention as ``hermes-table-snapshot/1``).
TRACE_FORMAT = "hermes-trace/1"


class _NullSpan:
    """The span handle the no-op tracer returns: absorbs all calls."""

    __slots__ = ()
    span_id = 0

    def annotate(self, **attrs) -> "_NullSpan":
        return self

    def finish(self, end: float, **attrs) -> None:
        return None


NULL_SPAN = _NullSpan()


class Tracer:
    """The no-op tracer: the default, and the interface.

    Every method is safe to call unconditionally from instrumented code;
    hot paths may still guard expensive attribute computation behind
    :attr:`enabled`.
    """

    enabled = False

    def start_span(
        self, name: str, start: float, category: str = "", **attrs
    ) -> "_NullSpan":
        """Open a span at sim time ``start``; finish it via the handle."""
        return NULL_SPAN

    def event(self, name: str, time: float, category: str = "", **attrs) -> None:
        """Record a named instant at sim time ``time``."""
        return None

    def sample(self, name: str, time: float, value: float, **attrs) -> None:
        """Record a gauge reading at sim time ``time``."""
        return None

    def add_listener(self, listener: Callable[[dict], None]) -> None:
        """No-op: a tracer that records nothing has nothing to deliver."""
        return None


class Span:
    """Handle for an open span of a :class:`RecordingTracer`."""

    __slots__ = ("_tracer", "span_id", "parent_id", "name", "category", "start", "attrs")

    def __init__(
        self,
        tracer: "RecordingTracer",
        span_id: int,
        parent_id: int,
        name: str,
        category: str,
        start: float,
        attrs: Dict[str, object],
    ) -> None:
        self._tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.start = start
        self.attrs = attrs

    def annotate(self, **attrs) -> "Span":
        """Merge attributes into the span (last write wins per key)."""
        self.attrs.update(attrs)
        return self

    def finish(self, end: float, **attrs) -> None:
        """Close the span at sim time ``end``, emitting its record.

        Idempotent: a second finish is ignored, so error paths can finish
        defensively without double-recording.
        """
        self._tracer._finish_span(self, end, attrs)

    def __repr__(self) -> str:
        return f"Span(#{self.span_id} {self.name!r} start={self.start:.6f})"


class RecordingTracer(Tracer):
    """A tracer that records, folds into a metrics registry, and notifies.

    Records are plain JSON-ready dicts appended to :attr:`records` in
    emission order (a span emits when it *finishes*).  Span ids come from a
    per-tracer counter, so two processes tracing the same deterministic run
    produce identical records.  Listeners registered with
    :meth:`add_listener` see every record as it is emitted — the online
    verification hook of the chaos harness rides on this.
    """

    enabled = True

    def __init__(
        self,
        meta: Optional[Dict[str, object]] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.meta: Dict[str, object] = dict(meta or {})
        self.records: List[dict] = []
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._listeners: List[Callable[[dict], None]] = []
        self._next_id = 1
        self._open: List[Span] = []
        self._last_sample: Dict[tuple, float] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    @property
    def current_span_id(self) -> int:
        """Id of the innermost open span (0 when none is open)."""
        return self._open[-1].span_id if self._open else 0

    def start_span(self, name: str, start: float, category: str = "", **attrs) -> Span:
        span = Span(
            tracer=self,
            span_id=self._next_id,
            parent_id=self.current_span_id,
            name=name,
            category=category,
            start=start,
            attrs=dict(attrs),
        )
        self._next_id += 1
        self._open.append(span)
        return span

    def _finish_span(self, span: Span, end: float, attrs: Dict[str, object]) -> None:
        # Remove from the open stack wherever it sits (normally the top;
        # error paths may finish out of order) — and make finish idempotent.
        for index in range(len(self._open) - 1, -1, -1):
            if self._open[index] is span:
                del self._open[index]
                break
        else:
            return  # already finished
        span.attrs.update(attrs)
        self._emit(
            {
                "type": "span",
                "id": span.span_id,
                "parent": span.parent_id,
                "name": span.name,
                "cat": span.category,
                "start": span.start,
                "end": end,
                "attrs": span.attrs,
            }
        )

    def event(self, name: str, time: float, category: str = "", **attrs) -> None:
        self._emit(
            {
                "type": "event",
                "name": name,
                "cat": category,
                "time": time,
                "span": self.current_span_id,
                "attrs": dict(attrs),
            }
        )

    def sample(self, name: str, time: float, value: float, **attrs) -> None:
        # Sampled on change: consecutive identical readings of one series
        # collapse.  A series is (name, attrs) — per-switch gauges with the
        # same name dedup independently.
        key = (name, tuple(sorted((k, str(v)) for k, v in attrs.items())))
        last = self._last_sample.get(key)
        if last is not None and last == value:
            return
        self._last_sample[key] = value
        self._emit(
            {
                "type": "sample",
                "name": name,
                "time": time,
                "value": value,
                "attrs": dict(attrs),
            }
        )

    def _emit(self, record: dict) -> None:
        self.records.append(record)
        _fold_into_metrics(record, self.metrics)
        for listener in self._listeners:
            listener(record)

    # ------------------------------------------------------------------
    # Subscription
    # ------------------------------------------------------------------
    def add_listener(self, listener: Callable[[dict], None]) -> None:
        """Call ``listener(record)`` for every record emitted from now on."""
        self._listeners.append(listener)

    def open_spans(self) -> List[Span]:
        """Spans started but not yet finished (diagnostic)."""
        return list(self._open)

    def __repr__(self) -> str:
        return f"RecordingTracer(records={len(self.records)}, open={len(self._open)})"


# ---------------------------------------------------------------------------
# Metric folding
# ---------------------------------------------------------------------------

#: Migration durations run longer than per-rule latencies: 1 ms .. 10 s.
MIGRATION_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)


def _fold_into_metrics(record: dict, metrics: MetricsRegistry) -> None:
    """Fold one trace record into the registry.

    This single mapping is the contract between the instrumentation sites
    and the experiments that consume the registry: the chaos harness reads
    ``hermes_channel_retries_total`` and ``hermes_fault_events_total``
    instead of summing per-channel stats or fault-log counts.
    """
    rtype = record["type"]
    if rtype == "span":
        name = record["name"]
        attrs = record["attrs"]
        duration = record["end"] - record["start"]
        if name == "agent.action":
            metrics.counter(
                "hermes_agent_actions_total", help="FlowMods executed, by command"
            ).inc(command=attrs.get("command", "?"))
            metrics.histogram(
                "hermes_rit_seconds", help="rule installation time (queue + execute)"
            ).observe(duration)
            if "queue_delay" in attrs:
                metrics.histogram(
                    "hermes_queue_delay_seconds", help="switch-CPU queueing delay"
                ).observe(attrs["queue_delay"])
            if "exec_latency" in attrs:
                metrics.histogram(
                    "hermes_exec_seconds", help="installer execution latency"
                ).observe(attrs["exec_latency"])
            shifts = attrs.get("shifts")
            if shifts:
                metrics.counter(
                    "hermes_tcam_shifts_total", help="TCAM entry shifts performed"
                ).inc(shifts)
            if attrs.get("guaranteed"):
                metrics.counter(
                    "hermes_guaranteed_actions_total",
                    help="actions that took the guaranteed (shadow) path",
                ).inc()
        elif name == "agent.batch":
            # Per-action spans carry everything except shifts, which the
            # agent can only measure batch-wide.
            shifts = attrs.get("shifts")
            if shifts:
                metrics.counter(
                    "hermes_tcam_shifts_total", help="TCAM entry shifts performed"
                ).inc(shifts)
        elif name == "flowmod":
            metrics.counter(
                "hermes_channel_sends_total", help="channel sends, by delivery"
            ).inc(delivered="true" if attrs.get("delivered") else "false")
            metrics.counter(
                "hermes_channel_attempts_total", help="delivery attempts made"
            ).inc(attrs.get("attempts", 1))
        elif name == "hermes.migration":
            metrics.counter(
                "hermes_migrations_total", help="Rule Manager migrations run"
            ).inc()
            metrics.histogram(
                "hermes_migration_seconds",
                buckets=MIGRATION_BUCKETS,
                help="migration duration (copy + optimize + write + clear)",
            ).observe(duration)
    elif rtype == "event":
        name = record["name"]
        if name.startswith("fault."):
            kind = name[len("fault."):]
            metrics.counter(
                "hermes_fault_events_total",
                help="fault-log events (injections and recoveries), by kind",
            ).inc(kind=kind)
            if kind == "retry":
                metrics.counter(
                    "hermes_channel_retries_total", help="channel redeliveries"
                ).inc()
        elif name == "hermes.gatekeeper":
            metrics.counter(
                "hermes_gatekeeper_decisions_total",
                help="GateKeeper routing decisions, by reason",
            ).inc(reason=record["attrs"].get("reason", "?"))
        elif name == "agent.dedup":
            metrics.counter(
                "hermes_agent_dedup_total", help="redeliveries absorbed by xid cache"
            ).inc()
        elif name == "channel.timeout":
            metrics.counter(
                "hermes_channel_timeouts_total", help="send attempts that timed out"
            ).inc()
    elif rtype == "sample":
        metric_name = "".join(
            ch if ch.isalnum() or ch == "_" else "_" for ch in record["name"]
        )
        metrics.gauge(metric_name).set(record["value"], **record["attrs"])


# ---------------------------------------------------------------------------
# The process-global tracer
# ---------------------------------------------------------------------------

_GLOBAL_TRACER: Tracer = Tracer()


def get_tracer() -> Tracer:
    """The process-global tracer (the no-op :class:`Tracer` by default)."""
    return _GLOBAL_TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` globally; returns the previous one."""
    global _GLOBAL_TRACER
    previous = _GLOBAL_TRACER
    _GLOBAL_TRACER = tracer
    return previous


@contextmanager
def use_tracer(tracer: Tracer):
    """Install ``tracer`` globally for the duration of a ``with`` block."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
