"""``python -m repro.obs`` — trace summarizer, differ, and demo scenario.

Subcommands:

* ``summary TRACE`` — per-stage latency percentiles (gatekeeper / queue /
  tcam / channel), top-k slowest FlowMods, gauge timelines.
* ``diff A B`` — stage-by-stage comparison of two traces.
* ``scenario --out-dir DIR`` — run a small traced simulation and export
  all three formats (JSONL trace, Chrome trace-event JSON, Prometheus
  text); what the CI ``obs`` job round-trips.
* ``perf ...`` — the wall-clock performance observatory: scenario
  profiling, guarantee-burn reports, flamegraphs, and the
  ``hermes-bench/1`` regression comparator (see :mod:`repro.obs.perf.cli`).
"""

from __future__ import annotations

import argparse
import os
import sys

from .export import read_trace
from .summary import render_diff, render_summary, summarize


def _cmd_summary(args: argparse.Namespace) -> int:
    header, records = read_trace(args.trace)
    summary = summarize(header, records)
    print(render_summary(summary, top=args.top, per_flowmod=args.per_flowmod))
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    header_a, records_a = read_trace(args.trace_a)
    header_b, records_b = read_trace(args.trace_b)
    print(
        render_diff(
            summarize(header_a, records_a),
            summarize(header_b, records_b),
            args.trace_a,
            args.trace_b,
        )
    )
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    # Heavy imports stay local: `summary`/`diff` must work without numpy.
    import numpy as np

    from ..baselines import make_installer
    from ..experiments.common import default_hermes_config
    from ..faults import FaultInjector, FaultPlan, FlowModFault
    from ..simulator import Simulation, SimulationConfig, TeAppConfig
    from ..switchsim import ChannelConfig
    from ..tcam import get_switch_model
    from ..topology import FatTreeSpec, build_fat_tree, hosts
    from ..traffic import flows_of, generate_jobs
    from .export import write_chrome_trace, write_prometheus, write_trace
    from .tracer import RecordingTracer, use_tracer

    graph = build_fat_tree(FatTreeSpec(k=4, link_capacity=1e9))
    flows = flows_of(
        generate_jobs(
            hosts(graph),
            job_count=args.jobs,
            arrival_rate=6.0,
            rng=np.random.default_rng(args.seed),
        )
    )
    plan = FaultPlan(
        flowmod=FlowModFault(drop=args.drop, ack_loss_fraction=0.3, duplicate=0.02)
    )
    injector = FaultInjector(plan=plan, seed=args.seed)
    sim_config = SimulationConfig(
        te=TeAppConfig(epoch=0.25),
        baseline_occupancy=200,
        max_time=args.max_time,
        channel="resilient",
        channel_config=ChannelConfig(),
        fault_plan=plan,
        fault_seed=args.seed,
    )
    timing = get_switch_model(args.switch)
    hermes_config = default_hermes_config() if args.scheme == "hermes" else None

    def factory(name):
        return make_installer(
            args.scheme, timing, hermes_config=hermes_config, injector=injector
        )

    tracer = RecordingTracer(
        meta={
            "scenario": "obs-demo",
            "scheme": args.scheme,
            "switch": args.switch,
            "drop": args.drop,
            "seed": args.seed,
        }
    )
    with use_tracer(tracer):
        simulation = Simulation(graph, flows, factory, sim_config, injector=injector)
        metrics = simulation.run()

    os.makedirs(args.out_dir, exist_ok=True)
    trace_path = os.path.join(args.out_dir, "trace.jsonl")
    chrome_path = os.path.join(args.out_dir, "trace.chrome.json")
    prom_path = os.path.join(args.out_dir, "metrics.prom")
    write_trace(tracer, trace_path)
    write_chrome_trace(tracer, chrome_path)
    write_prometheus(tracer.metrics, prom_path)
    print(
        f"scenario: {args.scheme} on {args.switch}, drop={args.drop}, "
        f"{len(metrics.rits())} installs, {len(tracer.records)} trace records"
    )
    for path in (trace_path, chrome_path, prom_path):
        print(f"wrote {path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Summarize, diff, or generate hermes-trace/1 traces.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    p_summary = subparsers.add_parser("summary", help="summarize one trace")
    p_summary.add_argument("trace", help="path to a hermes-trace/1 JSONL file")
    p_summary.add_argument(
        "--top", type=int, default=5, help="slowest FlowMods to list (default 5)"
    )
    p_summary.add_argument(
        "--per-flowmod",
        action="store_true",
        help="print the stage breakdown of every installed FlowMod",
    )
    p_summary.set_defaults(func=_cmd_summary)

    p_diff = subparsers.add_parser("diff", help="compare two traces")
    p_diff.add_argument("trace_a", help="baseline trace")
    p_diff.add_argument("trace_b", help="candidate trace")
    p_diff.set_defaults(func=_cmd_diff)

    p_scenario = subparsers.add_parser(
        "scenario", help="run a small traced simulation and export all formats"
    )
    p_scenario.add_argument("--out-dir", required=True, help="output directory")
    p_scenario.add_argument("--scheme", default="hermes", help="installer scheme")
    p_scenario.add_argument(
        "--switch", default="pica8-p3290", help="switch-model registry key"
    )
    p_scenario.add_argument(
        "--drop", type=float, default=0.1, help="FlowMod drop rate"
    )
    p_scenario.add_argument("--jobs", type=int, default=6, help="job count")
    p_scenario.add_argument(
        "--max-time", type=float, default=6.0, help="sim horizon (s)"
    )
    p_scenario.add_argument("--seed", type=int, default=11, help="workload seed")
    p_scenario.set_defaults(func=_cmd_scenario)

    from .perf.cli import register as register_perf

    register_perf(subparsers)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
