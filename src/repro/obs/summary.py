"""Trace analysis: per-stage FlowMod breakdowns, summaries, and diffs.

The summarizer joins a trace's spans back into per-FlowMod lifecycles and
splits each installed FlowMod's controller-observed latency into the four
stages of the control path:

* **gatekeeper** — Hermes's admission decision plus Algorithm 1's overlap
  scan (the ``latency`` attribute of the ``hermes.gatekeeper`` event; zero
  for non-Hermes schemes);
* **queue** — time the FlowMod waited for the switch CPU
  (``agent.action``'s ``queue_delay`` attribute);
* **tcam** — installer execution minus the gatekeeper share: the physical
  TCAM write/shift cost;
* **channel** — everything the network added on top: propagation,
  timeouts, backoff, and redeliveries (the enclosing ``flowmod`` span's
  duration minus the switch-side window).

Stage values are clamped at zero, so a trace produced by any installer
scheme summarizes sensibly even where a stage does not apply.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: The per-FlowMod stages, in presentation order.
STAGES: Tuple[str, ...] = ("gatekeeper", "queue", "tcam", "channel")

_PERCENTILES: Tuple[int, ...] = (50, 90, 99)


@dataclass
class FlowModBreakdown:
    """One installed FlowMod's per-stage latency split."""

    span_id: int
    switch: str
    command: str
    start: float
    end: float
    gatekeeper: float
    queue: float
    tcam: float
    channel: float
    attempts: int = 1
    delivered: bool = True
    shifts: Optional[int] = None
    xid: Optional[int] = None

    @property
    def total(self) -> float:
        """Sum of the four stages — the attributed response time."""
        return self.gatekeeper + self.queue + self.tcam + self.channel

    def stage(self, name: str) -> float:
        return getattr(self, name)


@dataclass
class TraceSummary:
    """Everything the CLI renders about one trace."""

    header: dict
    breakdowns: List[FlowModBreakdown]
    samples: Dict[str, List[Tuple[float, float]]]
    record_counts: Dict[str, int]
    event_counts: Dict[str, int] = field(default_factory=dict)
    span_range: Tuple[float, float] = (0.0, 0.0)


def percentile(values: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, min(len(ordered), math.ceil(pct / 100.0 * len(ordered))))
    return ordered[rank - 1]


# ---------------------------------------------------------------------------
# Joining records into breakdowns
# ---------------------------------------------------------------------------

def _span_children(spans: Iterable[dict]) -> Dict[int, List[dict]]:
    children: Dict[int, List[dict]] = {}
    for span in spans:
        children.setdefault(span["parent"], []).append(span)
    return children


def _descendants(children: Dict[int, List[dict]], root_id: int) -> List[dict]:
    found: List[dict] = []
    frontier = [root_id]
    while frontier:
        node = frontier.pop()
        for child in children.get(node, ()):
            found.append(child)
            frontier.append(child["id"])
    return found


def flowmod_breakdowns(records: Sequence[dict]) -> List[FlowModBreakdown]:
    """Join spans and events into one breakdown per installed FlowMod.

    ``agent.action`` spans reached through a ``flowmod`` channel span get
    the channel residual; actions submitted without a channel (direct
    ``SwitchAgent.submit`` calls, e.g. in replay harnesses) appear with a
    zero channel stage.  Undelivered sends carry no agent span and are
    excluded — they never installed anything.
    """
    spans = [r for r in records if r["type"] == "span"]
    gatekeeper_by_span: Dict[int, float] = {}
    for record in records:
        if record["type"] == "event" and record["name"] == "hermes.gatekeeper":
            gatekeeper_by_span[record.get("span", 0)] = record["attrs"].get(
                "latency", 0.0
            )
    children = _span_children(spans)
    by_id = {span["id"]: span for span in spans}
    breakdowns: List[FlowModBreakdown] = []
    claimed: set = set()

    def action_breakdown(action: dict, channel_time: float, outer: Optional[dict]) -> FlowModBreakdown:
        attrs = action["attrs"]
        gatekeeper = max(0.0, gatekeeper_by_span.get(action["id"], 0.0))
        queue = max(0.0, attrs.get("queue_delay", 0.0))
        exec_latency = max(0.0, attrs.get("exec_latency", action["end"] - action["start"]))
        tcam = max(0.0, exec_latency - gatekeeper)
        return FlowModBreakdown(
            span_id=action["id"],
            switch=str(attrs.get("switch", "?")),
            command=str(attrs.get("command", "?")),
            start=action["start"],
            end=action["end"],
            gatekeeper=gatekeeper,
            queue=queue,
            tcam=tcam,
            channel=max(0.0, channel_time),
            attempts=int(outer["attrs"].get("attempts", 1)) if outer else 1,
            delivered=bool(outer["attrs"].get("delivered", True)) if outer else True,
            shifts=attrs.get("shifts"),
            xid=attrs.get("xid"),
        )

    for flowmod in spans:
        if flowmod["name"] != "flowmod":
            continue
        actions = [
            span
            for span in _descendants(children, flowmod["id"])
            if span["name"] == "agent.action"
        ]
        if not actions:
            continue  # undelivered: nothing was installed
        duration = flowmod["end"] - flowmod["start"]
        # The switch-side window: the batch span when the actions ran as a
        # batch, else the actions themselves.  What the channel "cost" is
        # the send duration minus the time the switch was doing the work.
        window_start = min(span["start"] for span in actions)
        window_end = max(span["end"] for span in actions)
        parent = by_id.get(actions[0]["parent"])
        if parent is not None and parent["name"] == "agent.batch":
            window_start = parent["start"]
            window_end = max(window_end, parent["end"])
        channel_time = max(0.0, duration - (window_end - window_start))
        for action in actions:
            claimed.add(action["id"])
            breakdowns.append(action_breakdown(action, channel_time, flowmod))
    # Channel-less actions (direct submits).
    for span in spans:
        if span["name"] == "agent.action" and span["id"] not in claimed:
            breakdowns.append(action_breakdown(span, 0.0, None))
    breakdowns.sort(key=lambda item: (item.start, item.span_id))
    return breakdowns


def summarize(header: dict, records: Sequence[dict]) -> TraceSummary:
    """Compute the full summary of one parsed trace."""
    record_counts: Dict[str, int] = {}
    event_counts: Dict[str, int] = {}
    samples: Dict[str, List[Tuple[float, float]]] = {}
    lo, hi = math.inf, -math.inf
    for record in records:
        rtype = record["type"]
        record_counts[rtype] = record_counts.get(rtype, 0) + 1
        if rtype == "span":
            lo = min(lo, record["start"])
            hi = max(hi, record["end"])
        elif rtype == "event":
            event_counts[record["name"]] = event_counts.get(record["name"], 0) + 1
            lo = min(lo, record["time"])
            hi = max(hi, record["time"])
        elif rtype == "sample":
            attrs = record.get("attrs", {})
            series_key = record["name"]
            if attrs:
                rendered = ",".join(f"{k}={attrs[k]}" for k in sorted(attrs))
                series_key = f"{series_key}[{rendered}]"
            samples.setdefault(series_key, []).append(
                (record["time"], record["value"])
            )
            lo = min(lo, record["time"])
            hi = max(hi, record["time"])
    if lo > hi:
        lo = hi = 0.0
    return TraceSummary(
        header=header,
        breakdowns=flowmod_breakdowns(records),
        samples=samples,
        record_counts=record_counts,
        event_counts=event_counts,
        span_range=(lo, hi),
    )


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------

def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:9.3f}"


def stage_table(breakdowns: Sequence[FlowModBreakdown]) -> str:
    """The per-stage percentile table over installed FlowMods."""
    lines = [
        f"{'stage':<12}" + "".join(f"{'p' + str(p):>10}" for p in _PERCENTILES)
        + f"{'max':>10}{'mean (ms)':>12}"
    ]
    rows = list(STAGES) + ["total"]
    for stage_name in rows:
        if stage_name == "total":
            values = [item.total for item in breakdowns]
        else:
            values = [item.stage(stage_name) for item in breakdowns]
        mean = sum(values) / len(values) if values else 0.0
        lines.append(
            f"{stage_name:<12}"
            + "".join(_fmt_ms(percentile(values, p)) + " " for p in _PERCENTILES)
            + _fmt_ms(max(values) if values else 0.0)
            + " "
            + f"{mean * 1e3:10.4f}"
        )
    return "\n".join(lines)


def slowest_table(breakdowns: Sequence[FlowModBreakdown], top: int) -> str:
    """The top-k slowest FlowMods with their stage splits."""
    ranked = sorted(breakdowns, key=lambda item: (-item.total, item.span_id))[:top]
    lines = []
    for item in ranked:
        lines.append(
            f"  t={item.start:8.4f}  {item.switch:<14} {item.command:<7}"
            f" total={item.total * 1e3:8.3f}ms"
            f"  gk={item.gatekeeper * 1e3:.3f}"
            f" queue={item.queue * 1e3:.3f}"
            f" tcam={item.tcam * 1e3:.3f}"
            f" chan={item.channel * 1e3:.3f}"
            f"  attempts={item.attempts}"
            + (f" shifts={item.shifts}" if item.shifts is not None else "")
        )
    return "\n".join(lines)


def occupancy_timeline(
    samples: Dict[str, List[Tuple[float, float]]],
    span_range: Tuple[float, float],
    bins: int = 24,
) -> str:
    """ASCII timeline of every gauge series, binned over the trace window.

    Each bin shows the last reading falling in it, scaled 0-9 against the
    series maximum (``.`` = no reading in that bin).
    """
    lines: List[str] = []
    lo, hi = span_range
    width = (hi - lo) or 1.0
    for name in sorted(samples):
        series = samples[name]
        values = [value for _, value in series]
        peak = max(values) if values else 0.0
        cells = ["."] * bins
        for stamp, value in series:
            index = min(bins - 1, max(0, int((stamp - lo) / width * bins)))
            level = 0 if peak <= 0 else int(round(value / peak * 9))
            cells[index] = str(min(9, max(0, level)))
        lines.append(
            f"  {name:<28} [{''.join(cells)}]  last={values[-1]:g} peak={peak:g}"
            if values
            else f"  {name:<28} (no readings)"
        )
    return "\n".join(lines)


def render_summary(summary: TraceSummary, top: int = 5, per_flowmod: bool = False) -> str:
    """The CLI's text report for one trace."""
    header = summary.header
    counts = summary.record_counts
    lo, hi = summary.span_range
    lines = [
        f"{header.get('format', '?')}: {sum(counts.values())} records "
        f"({counts.get('span', 0)} spans, {counts.get('event', 0)} events, "
        f"{counts.get('sample', 0)} samples), sim window "
        f"{lo:.3f}-{hi:.3f} s",
    ]
    meta = header.get("meta") or {}
    if meta:
        rendered = ", ".join(f"{key}={meta[key]}" for key in sorted(meta))
        lines.append(f"meta: {rendered}")
    installed = summary.breakdowns
    lines.append("")
    lines.append(f"per-stage latency over {len(installed)} installed FlowMods (ms):")
    lines.append(stage_table(installed))
    if installed and top > 0:
        lines.append("")
        lines.append(f"top {min(top, len(installed))} slowest FlowMods:")
        lines.append(slowest_table(installed, top))
    if summary.samples:
        lines.append("")
        lines.append("gauge timelines:")
        lines.append(occupancy_timeline(summary.samples, summary.span_range))
    if summary.event_counts:
        lines.append("")
        lines.append("events:")
        for name in sorted(summary.event_counts):
            lines.append(f"  {name:<28} {summary.event_counts[name]}")
    if per_flowmod and installed:
        lines.append("")
        lines.append("per-FlowMod breakdown (ms):")
        for item in installed:
            lines.append(
                f"  #{item.span_id:<6} t={item.start:8.4f} {item.switch:<14}"
                f" {item.command:<7}"
                f" gk={item.gatekeeper * 1e3:8.4f} queue={item.queue * 1e3:8.4f}"
                f" tcam={item.tcam * 1e3:8.4f} chan={item.channel * 1e3:8.4f}"
                f" total={item.total * 1e3:8.4f}"
            )
    return "\n".join(lines)


def render_diff(
    summary_a: TraceSummary, summary_b: TraceSummary, label_a: str, label_b: str
) -> str:
    """Compare two traces stage-by-stage (counts, p50/p99, gauge peaks)."""
    a, b = summary_a.breakdowns, summary_b.breakdowns
    lines = [
        f"A = {label_a}: {len(a)} installed FlowMods",
        f"B = {label_b}: {len(b)} installed FlowMods",
        "",
        f"{'stage':<12}{'A p50':>10}{'B p50':>10}{'Δp50':>10}"
        f"{'A p99':>10}{'B p99':>10}{'Δp99':>10}   (ms)",
    ]
    for stage_name in list(STAGES) + ["total"]:
        if stage_name == "total":
            va = [item.total for item in a]
            vb = [item.total for item in b]
        else:
            va = [item.stage(stage_name) for item in a]
            vb = [item.stage(stage_name) for item in b]
        a50, b50 = percentile(va, 50), percentile(vb, 50)
        a99, b99 = percentile(va, 99), percentile(vb, 99)
        lines.append(
            f"{stage_name:<12}"
            f"{a50 * 1e3:10.3f}{b50 * 1e3:10.3f}{(b50 - a50) * 1e3:+10.3f}"
            f"{a99 * 1e3:10.3f}{b99 * 1e3:10.3f}{(b99 - a99) * 1e3:+10.3f}"
        )
    event_names = sorted(
        set(summary_a.event_counts) | set(summary_b.event_counts)
    )
    if event_names:
        lines.append("")
        lines.append(f"{'event':<28}{'A':>8}{'B':>8}{'Δ':>8}")
        for name in event_names:
            ca = summary_a.event_counts.get(name, 0)
            cb = summary_b.event_counts.get(name, 0)
            lines.append(f"{name:<28}{ca:>8}{cb:>8}{cb - ca:>+8}")
    gauge_names = sorted(set(summary_a.samples) | set(summary_b.samples))
    if gauge_names:
        lines.append("")
        lines.append(f"{'gauge peak':<28}{'A':>10}{'B':>10}")
        for name in gauge_names:
            pa = max((v for _, v in summary_a.samples.get(name, [])), default=0.0)
            pb = max((v for _, v in summary_b.samples.get(name, [])), default=0.0)
            lines.append(f"{name:<28}{pa:>10g}{pb:>10g}")
    return "\n".join(lines)
