"""The metrics registry: counters, gauges, and fixed-bucket histograms.

Zero-dependency and deterministic by construction: histogram bucket
boundaries are fixed at creation (never derived from the data), label sets
are stored as sorted tuples, and every export walks metrics and labels in
sorted order — two processes recording the same series dump byte-identical
text.

The registry is the aggregate side of :mod:`repro.obs`: the
:class:`~repro.obs.tracer.RecordingTracer` folds every span/event/sample it
records into one (see ``_fold_into_metrics``), and experiments consume the
folded counters instead of reaching into per-component stats objects.
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, Iterable, List, Optional, Tuple

LabelKey = Tuple[Tuple[str, str], ...]

#: Default latency buckets in seconds: 100 us .. 1 s, a 1-2.5-5 ladder.
#: Fixed (never data-derived) so two runs bucket identically.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
)


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((name, str(value)) for name, value in labels.items()))


def _render_labels(key: LabelKey, extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    pairs = tuple(sorted(key + extra))
    if not pairs:
        return ""
    body = ",".join(f'{name}="{value}"' for name, value in pairs)
    return "{" + body + "}"


class Counter:
    """A monotonically increasing value, optionally split by labels."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Add ``amount`` (default 1) to the labelled series."""
        if amount < 0:
            raise ValueError(f"{self.name}: counters cannot decrease ({amount})")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        """Current value of one labelled series (0 when never incremented)."""
        return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum across all labelled series."""
        return sum(self._values.values())

    def series(self) -> List[Tuple[LabelKey, float]]:
        """All (labels, value) pairs in sorted label order."""
        return sorted(self._values.items())

    def as_dict(self) -> dict:
        return {
            "type": self.kind,
            "values": {_render_labels(key) or "": value for key, value in self.series()},
            "total": self.total(),
        }

    def prometheus_lines(self) -> List[str]:
        lines = self._header_lines()
        for key, value in self.series() or [((), 0.0)]:
            lines.append(f"{self.name}{_render_labels(key)} {_format_number(value)}")
        return lines

    def _header_lines(self) -> List[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        return lines


class Gauge(Counter):
    """A value that can go up and down (last write wins per label set)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        """Set the labelled series to ``value``."""
        self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def total(self) -> float:
        """For gauges this is the sum of current values, not a rate."""
        return sum(self._values.values())


class Histogram:
    """Cumulative histogram over fixed, ascending bucket boundaries.

    Boundaries are upper-inclusive (Prometheus ``le`` semantics) and fixed
    at creation so the bucketing of a value never depends on what else was
    observed — the determinism requirement of the golden-trace tests.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
        help: str = "",
    ) -> None:
        self.name = name
        self.help = help
        self.buckets: Tuple[float, ...] = tuple(buckets)
        if not self.buckets:
            raise ValueError(f"{name}: a histogram needs at least one bucket")
        if any(nxt <= prev for prev, nxt in zip(self.buckets, self.buckets[1:])):
            raise ValueError(f"{name}: bucket boundaries must strictly ascend")
        # One count per finite bucket plus the +Inf overflow bucket.
        self._counts: List[int] = [0] * (len(self.buckets) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        index = bisect.bisect_left(self.buckets, value)
        self._counts[index] += 1
        self._sum += value
        self._count += 1

    @property
    def count(self) -> int:
        """Total observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of observed values."""
        return self._sum

    def mean(self) -> float:
        """Average observation (0 when empty)."""
        return self._sum / self._count if self._count else 0.0

    def bucket_counts(self) -> List[Tuple[float, int]]:
        """Cumulative (upper_bound, count) pairs, ending with +Inf."""
        cumulative = 0
        pairs: List[Tuple[float, int]] = []
        for boundary, count in zip(self.buckets, self._counts):
            cumulative += count
            pairs.append((boundary, cumulative))
        pairs.append((float("inf"), self._count))
        return pairs

    def quantile(self, fraction: float) -> float:
        """Bucket-resolution quantile: the upper bound of the bucket that
        contains the requested fraction of observations (conservative)."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1]: {fraction}")
        if self._count == 0:
            return 0.0
        target = fraction * self._count
        cumulative = 0
        for boundary, count in zip(self.buckets, self._counts):
            cumulative += count
            if cumulative >= target:
                return boundary
        return float("inf")

    def as_dict(self) -> dict:
        return {
            "type": self.kind,
            "count": self._count,
            "sum": self._sum,
            "buckets": [
                [_format_number(boundary), count]
                for boundary, count in self.bucket_counts()
            ],
        }

    def prometheus_lines(self) -> List[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        for boundary, cumulative in self.bucket_counts():
            le = "+Inf" if boundary == float("inf") else _format_number(boundary)
            lines.append(f'{self.name}_bucket{{le="{le}"}} {cumulative}')
        lines.append(f"{self.name}_sum {_format_number(self._sum)}")
        lines.append(f"{self.name}_count {self._count}")
        return lines


def _format_number(value: float) -> str:
    """Render a number without float noise: integers stay integral."""
    if not math.isfinite(value):
        return repr(float(value))  # 'inf', '-inf', 'nan'
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class MetricsRegistry:
    """A named collection of counters, gauges, and histograms.

    ``counter``/``gauge``/``histogram`` are get-or-create: the first call
    fixes the metric's type (and a histogram's buckets); later calls return
    the existing instance and raise on a type mismatch.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, Counter, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, Gauge, help=help)

    def histogram(
        self,
        name: str,
        buckets: Optional[Iterable[float]] = None,
        help: str = "",
    ) -> Histogram:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, Histogram):
                raise TypeError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            return existing
        metric = Histogram(
            name, buckets=buckets if buckets is not None else DEFAULT_LATENCY_BUCKETS,
            help=help,
        )
        self._metrics[name] = metric
        return metric

    def _get_or_create(self, name: str, factory, help: str):
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not factory:
                raise TypeError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            return existing
        metric = factory(name, help=help)
        self._metrics[name] = metric
        return metric

    def get(self, name: str):
        """The registered metric, or None."""
        return self._metrics.get(name)

    def names(self) -> List[str]:
        """All registered metric names, sorted."""
        return sorted(self._metrics)

    def as_dict(self) -> Dict[str, dict]:
        """Deterministic nested-dict dump (sorted names and labels)."""
        return {name: self._metrics[name].as_dict() for name in self.names()}

    def prometheus_text(self) -> str:
        """Prometheus text-exposition dump of every metric, sorted by name."""
        lines: List[str] = []
        for name in self.names():
            lines.extend(self._metrics[name].prometheus_lines())
        return "\n".join(lines) + ("\n" if lines else "")
