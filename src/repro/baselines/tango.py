"""Tango: switch-property inference + rule optimization [Lazaris et al., CoNEXT'14].

Tango goes one step beyond ESPRES: besides reordering each batch into the
switch's cheapest insertion order, it *rewrites* the rules — exploiting the
structure of IP allocation (sibling subnets pointing at the same next hop)
to aggregate several rules into one before they ever reach the TCAM.  Fewer
physical entries mean fewer shifts now and a smaller table (hence cheaper
inserts) later, which is why Tango beats ESPRES at the tail in the paper's
Figure 10/11 while both remain best-effort.

Aggregation bookkeeping: every logical rule id maps to the physical entry
carrying it.  Deleting one member of an aggregate splits the aggregate —
the physical entry is removed and the surviving members are re-installed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..switchsim.installer import DirectInstaller, RuleInstaller
from ..switchsim.messages import FlowMod, FlowModCommand, FlowModResult
from ..tcam.rule import Rule
from ..tcam.ternary import TernaryMatch
from ..tcam.timing import EmpiricalTimingModel


class TangoInstaller(RuleInstaller):
    """Batch reordering plus sibling-prefix aggregation."""

    def __init__(
        self,
        timing: EmpiricalTimingModel,
        capacity: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        """Wrap a monolithic table behind the Tango optimizer."""
        self._direct = DirectInstaller(timing, capacity=capacity, rng=rng)
        # logical rule id -> physical rule id carrying it (identity for
        # unaggregated rules).
        self._physical_of: Dict[int, int] = {}
        # physical rule id -> logical member rules it carries.
        self._members_of: Dict[int, List[Rule]] = {}

    @property
    def table(self):
        """The underlying monolithic TCAM table."""
        return self._direct.table

    def tables(self):
        """The single physical table (aggregates included as installed)."""
        return self._direct.tables()

    def shift_count(self) -> int:
        """Cumulative entry shifts of the underlying table."""
        return self._direct.shift_count()

    # ------------------------------------------------------------------
    # RuleInstaller interface
    # ------------------------------------------------------------------
    def apply(self, flow_mod: FlowMod) -> FlowModResult:
        """Apply a single FlowMod (aggregation needs a batch; none here)."""
        if flow_mod.command is FlowModCommand.ADD:
            return self._install_physical(flow_mod.rule, members=[flow_mod.rule])
        if flow_mod.command is FlowModCommand.DELETE:
            return self._delete_logical(flow_mod.rule_id)
        return self._modify_logical(flow_mod)

    def apply_batch(self, flow_mods: Sequence[FlowMod]) -> List[FlowModResult]:
        """Aggregate, reorder, and apply a batch.

        ADDs in the batch are grouped by (priority, action); sibling
        prefixes within a group coalesce into their parent, recursively.
        The batch is then applied deletions-first, insertions in descending
        priority.  Results align with the input order; members folded into
        an aggregate report zero incremental latency (they complete with
        the aggregate's single TCAM write).
        """
        results: List[Optional[FlowModResult]] = [None] * len(flow_mods)
        adds: List[int] = []
        others: List[int] = []
        for index, flow_mod in enumerate(flow_mods):
            (adds if flow_mod.command is FlowModCommand.ADD else others).append(index)
        for index in others:
            results[index] = self.apply(flow_mods[index])

        aggregates = self._aggregate([flow_mods[index].rule for index in adds])
        # Descending priority: each physical insert appends without shifting.
        ordered = sorted(aggregates, key=lambda pair: -pair[0].priority)
        latency_of: Dict[int, float] = {}
        for physical, members in ordered:
            result = self._install_physical(physical, members)
            for position, member in enumerate(members):
                latency_of[member.rule_id] = result.latency if position == 0 else 0.0
        for index in adds:
            rule = flow_mods[index].rule
            results[index] = FlowModResult(
                latency=latency_of.get(rule.rule_id, 0.0),
                installed_rule_ids=(self._physical_of.get(rule.rule_id, rule.rule_id),),
            )
        return [result for result in results if result is not None]

    def lookup(self, key: int) -> Optional[Rule]:
        """Monolithic lookup (aggregates match on behalf of their members)."""
        return self._direct.lookup(key)

    def occupancy(self) -> int:
        """Physical entries installed (after aggregation)."""
        return self._direct.occupancy()

    def logical_rule_count(self) -> int:
        """Logical rules currently represented."""
        return len(self._physical_of)

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    @staticmethod
    def _aggregate(rules: List[Rule]) -> List[tuple]:
        """Coalesce sibling prefixes with equal (priority, action).

        Returns a list of ``(physical_rule, members)`` pairs; unaggregatable
        rules map to themselves.
        """
        groups: Dict[tuple, Dict] = {}
        passthrough: List[tuple] = []
        for rule in rules:
            prefix = rule.match.to_prefix()
            if prefix is None:
                passthrough.append((rule, [rule]))
                continue
            groups.setdefault((rule.priority, rule.action), {})[prefix] = [rule]
        aggregated: List[tuple] = list(passthrough)
        for (priority, action), by_prefix in groups.items():
            changed = True
            while changed:
                changed = False
                for prefix in sorted(by_prefix, key=lambda p: -p.length):
                    if prefix not in by_prefix or prefix.length == 0:
                        continue
                    sibling = prefix.sibling()
                    if sibling in by_prefix:
                        members = by_prefix.pop(prefix) + by_prefix.pop(sibling)
                        by_prefix[prefix.parent()] = members
                        changed = True
            for prefix, members in by_prefix.items():
                physical = Rule(
                    match=TernaryMatch.from_prefix(prefix),
                    priority=priority,
                    action=action,
                )
                if len(members) == 1:
                    physical = members[0]
                aggregated.append((physical, members))
        return aggregated

    # ------------------------------------------------------------------
    # Physical bookkeeping
    # ------------------------------------------------------------------
    def _install_physical(self, physical: Rule, members: List[Rule]) -> FlowModResult:
        result = self._direct.apply(FlowMod.add(physical))
        self._members_of[physical.rule_id] = list(members)
        for member in members:
            self._physical_of[member.rule_id] = physical.rule_id
        return result

    def _delete_logical(self, logical_id: int) -> FlowModResult:
        physical_id = self._physical_of.pop(logical_id, None)
        if physical_id is None:
            raise KeyError(f"Tango: no rule #{logical_id} installed")
        members = self._members_of.pop(physical_id)
        survivors = [member for member in members if member.rule_id != logical_id]
        latency = self._direct.apply(FlowMod.delete(physical_id)).latency
        # Splitting an aggregate: surviving members are re-installed as
        # stand-alone entries (re-aggregating just the survivors).
        for survivor_physical, survivor_members in self._aggregate(survivors):
            latency += self._install_physical(
                survivor_physical, survivor_members
            ).latency
        return FlowModResult(latency=latency)

    def _modify_logical(self, flow_mod: FlowMod) -> FlowModResult:
        physical_id = self._physical_of.get(flow_mod.rule_id)
        if physical_id is None:
            raise KeyError(f"Tango: no rule #{flow_mod.rule_id} installed")
        members = self._members_of[physical_id]
        if len(members) == 1 and not flow_mod.changes_priority and flow_mod.new_match is None:
            # Unaggregated, in-place: delegate directly.
            result = self._direct.apply(
                FlowMod.modify(physical_id, action=flow_mod.new_action)
            )
            self._members_of[physical_id] = [
                Rule(
                    match=member.match,
                    priority=member.priority,
                    action=flow_mod.new_action,
                    rule_id=member.rule_id,
                    origin_id=member.origin_id,
                )
                for member in members
            ]
            return result
        # Aggregated or repositioning: split into delete + re-add.
        original = next(m for m in members if m.rule_id == flow_mod.rule_id)
        replacement = Rule(
            match=flow_mod.new_match if flow_mod.new_match is not None else original.match,
            priority=(
                flow_mod.new_priority
                if flow_mod.new_priority is not None
                else original.priority
            ),
            action=(
                flow_mod.new_action if flow_mod.new_action is not None else original.action
            ),
            rule_id=original.rule_id,
            origin_id=original.origin_id,
        )
        delete_result = self._delete_logical(flow_mod.rule_id)
        add_result = self._install_physical(replacement, [replacement])
        return FlowModResult(
            latency=delete_result.latency + add_result.latency,
            installed_rule_ids=(replacement.rule_id,),
        )
