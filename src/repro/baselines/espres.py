"""ESPRES: transparent SDN update scheduling [Perešíni et al., HotSDN'14].

ESPRES improves rule-installation latency *without touching the switch*: it
reorders and paces the updates the controller sends so that each switch
receives them in its cheapest order.  It is a best-effort technique — the
paper's Figure 10/11 comparison point that reduces, but cannot bound,
installation latency.

In our switch model the cheap order is descending priority: each subsequent
rule lands at the bottom of the occupied region and shifts nothing.  (Real
switches differ in which order they prefer — Tango's measurements found some
prefer ascending — but the modelling point is identical: a schedule exists
that avoids most entry shifting, and ESPRES finds it.)
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..switchsim.installer import DirectInstaller, RuleInstaller
from ..switchsim.messages import FlowMod, FlowModCommand, FlowModResult
from ..tcam.rule import Rule
from ..tcam.timing import EmpiricalTimingModel


class EspresInstaller(RuleInstaller):
    """Reorders each FlowMod batch into the switch's cheapest order.

    Single (non-batch) FlowMods pass straight through — with a batch of one
    there is nothing to schedule, which is exactly ESPRES's limitation.
    """

    def __init__(
        self,
        timing: EmpiricalTimingModel,
        capacity: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        """Wrap a monolithic table behind the ESPRES scheduler."""
        self._direct = DirectInstaller(timing, capacity=capacity, rng=rng)

    @property
    def table(self):
        """The underlying monolithic TCAM table."""
        return self._direct.table

    def tables(self):
        """The single physical table (scheduling never splits it)."""
        return self._direct.tables()

    def shift_count(self) -> int:
        """Cumulative entry shifts of the underlying table."""
        return self._direct.shift_count()

    def apply(self, flow_mod: FlowMod) -> FlowModResult:
        """Apply a single FlowMod (no scheduling opportunity)."""
        return self._direct.apply(flow_mod)

    def apply_batch(self, flow_mods: Sequence[FlowMod]) -> List[FlowModResult]:
        """Apply a batch in the scheduled (cheapest) order.

        Deletions run first (they free space and never shift), then
        insertions in descending priority so each append shifts nothing.
        Results are returned aligned with the *input* order.
        """
        schedule = sorted(
            range(len(flow_mods)),
            key=lambda index: self._sort_key(flow_mods[index]),
        )
        results: List[Optional[FlowModResult]] = [None] * len(flow_mods)
        for index in schedule:
            results[index] = self._direct.apply(flow_mods[index])
        return [result for result in results if result is not None]

    @staticmethod
    def _sort_key(flow_mod: FlowMod):
        if flow_mod.command is FlowModCommand.DELETE:
            return (0, 0)
        if flow_mod.command is FlowModCommand.MODIFY:
            return (1, 0)
        return (2, -flow_mod.rule.priority)

    def lookup(self, key: int) -> Optional[Rule]:
        """Monolithic lookup."""
        return self._direct.lookup(key)

    def occupancy(self) -> int:
        """Rules installed in the monolithic table."""
        return self._direct.occupancy()
