"""Baseline TCAM-management schemes the paper compares Hermes against.

* :class:`NaiveInstaller` — an unmodified commodity switch (alias of the
  switchsim :class:`~repro.switchsim.installer.DirectInstaller`).
* :class:`EspresInstaller` — batch reordering/scheduling (ESPRES).
* :class:`TangoInstaller` — reordering + rule aggregation (Tango).
* :class:`ShadowSwitchInstaller` — software shadow table (ShadowSwitch).

All are drop-in :class:`~repro.switchsim.installer.RuleInstaller`
implementations, interchangeable with Hermes in the simulator and benches.
"""

from ..switchsim.installer import DirectInstaller as NaiveInstaller
from .espres import EspresInstaller
from .shadowswitch import ShadowSwitchInstaller
from .tango import TangoInstaller

INSTALLER_NAMES = ("naive", "espres", "tango", "shadowswitch", "hermes")


def make_installer(name, timing, rng=None, hermes_config=None, injector=None):
    """Build an installer by name over the given switch timing model.

    ``hermes_config`` is only consulted for ``name="hermes"``.  ``injector``
    (a :class:`~repro.faults.injector.FaultInjector`) routes TCAM writes
    through the fault model for the schemes that support it — naive and
    Hermes, the pair the chaos experiments compare.
    """
    key = name.strip().lower()
    if key == "naive":
        return NaiveInstaller(timing, rng=rng, injector=injector)
    if key == "espres":
        return EspresInstaller(timing, rng=rng)
    if key == "tango":
        return TangoInstaller(timing, rng=rng)
    if key == "shadowswitch":
        return ShadowSwitchInstaller(timing, rng=rng)
    if key == "hermes":
        from ..core.hermes import HermesInstaller

        return HermesInstaller(timing, config=hermes_config, rng=rng, injector=injector)
    raise KeyError(
        f"unknown installer {name!r}; known: {', '.join(INSTALLER_NAMES)}"
    )


__all__ = [
    "EspresInstaller",
    "INSTALLER_NAMES",
    "NaiveInstaller",
    "ShadowSwitchInstaller",
    "TangoInstaller",
    "make_installer",
]
