"""ShadowSwitch: a software shadow table [Bifulco & Matsiuk, SIGCOMM CCR'15].

The closest related system to Hermes (Section 9 of the paper): new rules are
absorbed instantly by a *software* table on the switch CPU while a background
process installs them into the TCAM.  Control-plane latency is excellent —
a software hash-table insert — but packets matching software-resident rules
are forwarded by the switch CPU at a fraction of line rate until the TCAM
catches up.  Hermes's hardware shadow slice avoids that data-plane penalty,
which is the design-space distinction the paper draws.

The model exposes both sides of the trade-off: ``apply`` returns the tiny
software insertion latency, while :meth:`software_resident_fraction` and the
per-rule ``time_in_software`` ledger quantify how much traffic would have
been CPU-forwarded.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..engine.clock import Clock
from ..switchsim.installer import RuleInstaller
from ..switchsim.messages import FlowMod, FlowModCommand, FlowModResult
from ..tcam.rule import Rule
from ..tcam.table import TcamTable
from ..tcam.timing import EmpiricalTimingModel


class ShadowSwitchInstaller(RuleInstaller):
    """Software table in front of the hardware TCAM."""

    def __init__(
        self,
        timing: EmpiricalTimingModel,
        capacity: Optional[int] = None,
        software_insert_latency: float = 5e-5,
        sync_batch: int = 64,
        sync_interval: float = 0.05,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        """Create the two-level installer.

        Args:
            timing: hardware TCAM timing model.
            capacity: TCAM size; defaults to the model's capacity.
            software_insert_latency: seconds to insert into the CPU table.
            sync_batch: max rules moved to TCAM per background sync.
            sync_interval: seconds between background syncs.
            rng: optional generator for latency noise.
        """
        self.tcam = TcamTable(timing, capacity=capacity, name="tcam", rng=rng)
        self.software_insert_latency = software_insert_latency
        self.sync_batch = sync_batch
        self.sync_interval = sync_interval
        self._software: Dict[int, Rule] = {}
        self._entered_software_at: Dict[int, float] = {}
        self.time_in_software: List[float] = []
        self._clock = Clock()
        self._last_sync = 0.0

    @property
    def _now(self) -> float:
        """The installer's virtual-time high-water mark (kernel clock)."""
        return self._clock.now

    # ------------------------------------------------------------------
    # RuleInstaller interface
    # ------------------------------------------------------------------
    def apply(self, flow_mod: FlowMod) -> FlowModResult:
        """Apply one FlowMod; ADDs land in the software table instantly."""
        if flow_mod.command is FlowModCommand.ADD:
            rule = flow_mod.rule
            self._software[rule.rule_id] = rule
            self._entered_software_at[rule.rule_id] = self._now
            return FlowModResult(
                latency=self.software_insert_latency,
                installed_rule_ids=(rule.rule_id,),
            )
        if flow_mod.command is FlowModCommand.DELETE:
            if flow_mod.rule_id in self._software:
                self._software.pop(flow_mod.rule_id)
                self._entered_software_at.pop(flow_mod.rule_id, None)
                return FlowModResult(latency=self.software_insert_latency)
            return FlowModResult(latency=self.tcam.delete(flow_mod.rule_id).latency)
        return self._modify(flow_mod)

    def advance_time(self, now: float) -> float:
        """Run due background syncs; returns background seconds consumed."""
        self._clock.advance_to(max(self._clock.now, now))
        background = 0.0
        while self._now - self._last_sync >= self.sync_interval and self._software:
            self._last_sync += self.sync_interval
            background += self._sync_once(self._last_sync)
        if self._now - self._last_sync >= self.sync_interval:
            self._last_sync = self._now
        return background

    def lookup(self, key: int) -> Optional[Rule]:
        """Software table first (it holds the newest rules), then TCAM.

        Mirrors ShadowSwitch's lookup: the software table must win so that
        freshly-inserted higher-priority rules take effect immediately.
        """
        software_hits = [
            rule for rule in self._software.values() if rule.match.matches(key)
        ]
        hardware_hit = self.tcam.lookup(key)
        candidates = software_hits + ([hardware_hit] if hardware_hit else [])
        if not candidates:
            return None
        return max(candidates, key=lambda rule: rule.priority)

    def tables(self) -> dict:
        """Hardware table plus the software staging level.

        ShadowSwitch resolves software/hardware conflicts by priority (not
        by table precedence), so there is no cross-table inversion hazard;
        the hardware table is exposed as ``"monolithic"`` and the software
        level informationally as ``"software"``.
        """
        return {
            "monolithic": self.tcam.rules(),
            "software": [
                self._software[rule_id] for rule_id in sorted(self._software)
            ],
        }

    def occupancy(self) -> int:
        """Rules across both levels."""
        return len(self._software) + self.tcam.occupancy

    def shift_count(self) -> int:
        """Cumulative entry shifts of the hardware table."""
        return self.tcam.stats.total_shifts

    def prefill(self, rules) -> None:
        """Background rules go straight to the TCAM (their steady state)."""
        for rule in rules:
            self.tcam.insert(rule)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def software_occupancy(self) -> int:
        """Rules currently pending in the software table."""
        return len(self._software)

    def software_resident_fraction(self) -> float:
        """Fraction of installed rules still being CPU-forwarded."""
        total = self.occupancy()
        return len(self._software) / total if total else 0.0

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _sync_once(self, at_time: float) -> float:
        """Move up to ``sync_batch`` rules into the TCAM."""
        moved = 0
        spent = 0.0
        # Highest priority first: they benefit most from hardware speeds.
        pending = sorted(
            self._software.values(), key=lambda rule: -rule.priority
        )
        for rule in pending:
            if moved >= self.sync_batch or self.tcam.is_full:
                break
            spent += self.tcam.insert(rule).latency
            self._software.pop(rule.rule_id)
            entered = self._entered_software_at.pop(rule.rule_id, at_time)
            self.time_in_software.append(max(0.0, at_time - entered))
            moved += 1
        return spent

    def _modify(self, flow_mod: FlowMod) -> FlowModResult:
        rule_id = flow_mod.rule_id
        if rule_id in self._software:
            original = self._software[rule_id]
            self._software[rule_id] = Rule(
                match=(
                    flow_mod.new_match
                    if flow_mod.new_match is not None
                    else original.match
                ),
                priority=(
                    flow_mod.new_priority
                    if flow_mod.new_priority is not None
                    else original.priority
                ),
                action=(
                    flow_mod.new_action
                    if flow_mod.new_action is not None
                    else original.action
                ),
                rule_id=rule_id,
                origin_id=original.origin_id,
            )
            return FlowModResult(
                latency=self.software_insert_latency, installed_rule_ids=(rule_id,)
            )
        if flow_mod.changes_priority or flow_mod.new_match is not None:
            original = self.tcam.get(rule_id)
            latency = self.tcam.delete(rule_id).latency
            replacement = Rule(
                match=(
                    flow_mod.new_match
                    if flow_mod.new_match is not None
                    else original.match
                ),
                priority=(
                    flow_mod.new_priority
                    if flow_mod.new_priority is not None
                    else original.priority
                ),
                action=(
                    flow_mod.new_action
                    if flow_mod.new_action is not None
                    else original.action
                ),
                rule_id=rule_id,
                origin_id=original.origin_id,
            )
            latency += self.tcam.insert(replacement).latency
            return FlowModResult(latency=latency, installed_rule_ids=(rule_id,))
        result = self.tcam.modify(rule_id, action=flow_mod.new_action)
        return FlowModResult(latency=result.latency, installed_rule_ids=(rule_id,))
