"""Flow and job records, plus Poisson flow synthesis from traffic matrices.

The paper generates individual flows from coarse traffic matrices "by
assuming flow inter-arrivals follow a Poisson process and that flow sizes
are partitioned evenly according to the total data given in the traffic
matrices" (Section 8.1.3).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from .matrices import TrafficMatrix

_flow_counter = itertools.count(1)


@dataclass
class FlowSpec:
    """One flow to simulate.

    Attributes:
        flow_id: unique id.
        source / destination: endpoint node names.
        size: bytes to transfer.
        start_time: arrival time in seconds.
        job_id: owning job for JCT accounting (None for standalone flows).
    """

    source: str
    destination: str
    size: float
    start_time: float
    job_id: Optional[int] = None
    flow_id: int = field(default_factory=lambda: next(_flow_counter))

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"flow size must be positive, got {self.size}")
        if self.start_time < 0:
            raise ValueError(f"start_time cannot be negative: {self.start_time}")
        if self.source == self.destination:
            raise ValueError("flow endpoints must differ")


@dataclass(frozen=True)
class JobSpec:
    """A job (e.g. one MapReduce shuffle): a set of flows measured together."""

    job_id: int
    flows: Tuple[FlowSpec, ...]

    @property
    def total_bytes(self) -> float:
        """Sum of the job's flow sizes."""
        return sum(flow.size for flow in self.flows)

    @property
    def start_time(self) -> float:
        """Arrival of the job's first flow."""
        return min(flow.start_time for flow in self.flows)


def flows_from_matrix(
    matrix: TrafficMatrix,
    duration: float,
    mean_flow_size: float = 10e6,
    rng: Optional[np.random.Generator] = None,
) -> List[FlowSpec]:
    """Synthesize Poisson flow arrivals realizing a traffic matrix.

    For each OD pair carrying volume ``v`` bits/second, flows of
    ``mean_flow_size`` bytes arrive as a Poisson process with rate
    ``v / (8 * mean_flow_size)`` per second over ``duration`` seconds, with
    per-flow sizes drawn exponentially around the mean (sizes are
    "partitioned evenly" in expectation).

    Returns flows sorted by start time.
    """
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    if mean_flow_size <= 0:
        raise ValueError(f"mean_flow_size must be positive, got {mean_flow_size}")
    generator = rng if rng is not None else np.random.default_rng(0)
    flows: List[FlowSpec] = []
    for (source, destination), volume in sorted(matrix.items()):
        if volume <= 0:
            continue
        rate = volume / (8.0 * mean_flow_size)
        if rate <= 0:
            continue
        time = float(generator.exponential(1.0 / rate))
        while time < duration:
            size = float(generator.exponential(mean_flow_size))
            flows.append(
                FlowSpec(
                    source=source,
                    destination=destination,
                    size=max(1500.0, size),  # at least one MTU
                    start_time=time,
                )
            )
            time += float(generator.exponential(1.0 / rate))
    flows.sort(key=lambda flow: flow.start_time)
    return flows
