"""Traffic matrices: gravity and tomo-gravity models.

The paper synthesizes ISP traffic matrices with the tomo-gravity model of
Zhang et al. [65] (Section 8.1.3): a *gravity* prior — traffic between two
PoPs proportional to the product of their total volumes — refined by a
least-squares fit against observed link loads (the "tomographic" step).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import networkx as nx
import numpy as np

TrafficMatrix = Dict[Tuple[str, str], float]


def gravity_matrix(
    nodes: List[str],
    total_traffic: float,
    weights: Optional[Dict[str, float]] = None,
    rng: Optional[np.random.Generator] = None,
) -> TrafficMatrix:
    """Build a gravity-model traffic matrix.

    Args:
        nodes: the PoPs.
        total_traffic: the matrix's total volume (bits/second).
        weights: per-PoP attraction weight; sampled log-normally (the
            empirically observed PoP-size distribution) when omitted.
        rng: generator used when sampling weights.

    Returns:
        A dense matrix keyed by (source, destination), zero on the diagonal,
        summing to ``total_traffic``.
    """
    if total_traffic < 0:
        raise ValueError(f"total_traffic cannot be negative: {total_traffic}")
    if len(nodes) < 2:
        raise ValueError("a traffic matrix needs at least two nodes")
    if weights is None:
        generator = rng if rng is not None else np.random.default_rng(0)
        weights = {node: float(generator.lognormal(0.0, 1.0)) for node in nodes}
    weight_sum = sum(weights[node] for node in nodes)
    if weight_sum <= 0:
        raise ValueError("weights must sum to a positive value")
    matrix: TrafficMatrix = {}
    normalizer = 0.0
    for source in nodes:
        for destination in nodes:
            if source == destination:
                continue
            share = weights[source] * weights[destination]
            matrix[(source, destination)] = share
            normalizer += share
    scale = total_traffic / normalizer if normalizer > 0 else 0.0
    return {pair: volume * scale for pair, volume in matrix.items()}


def routing_matrix(
    graph: nx.Graph, pairs: List[Tuple[str, str]]
) -> Tuple[np.ndarray, List[Tuple[str, str]]]:
    """Build the 0/1 link-over-OD-pair routing matrix A (shortest paths).

    Returns (A, links) where A[l, p] is 1 when pair p's shortest path uses
    link l.  Used by the tomo-gravity estimator: link loads y = A @ x.
    """
    links = [tuple(sorted(edge)) for edge in graph.edges]
    link_index = {link: index for index, link in enumerate(links)}
    matrix = np.zeros((len(links), len(pairs)))
    for pair_index, (source, destination) in enumerate(pairs):
        path = nx.shortest_path(graph, source, destination)
        for left, right in zip(path, path[1:]):
            matrix[link_index[tuple(sorted((left, right)))], pair_index] = 1.0
    return matrix, links


def link_loads_from_matrix(graph: nx.Graph, matrix: TrafficMatrix) -> Dict[Tuple[str, str], float]:
    """Route a TM over shortest paths and accumulate per-link loads."""
    pairs = list(matrix)
    routing, links = routing_matrix(graph, pairs)
    demands = np.array([matrix[pair] for pair in pairs])
    loads = routing @ demands
    return {link: float(load) for link, load in zip(links, loads)}


def tomogravity_matrix(
    graph: nx.Graph,
    link_loads: Dict[Tuple[str, str], float],
    total_traffic: Optional[float] = None,
    regularization: float = 0.01,
) -> TrafficMatrix:
    """Estimate a TM from link loads with the tomo-gravity method [65].

    Solves ``min ||A x - y||^2 + lambda ||x - g||^2`` where ``g`` is the
    gravity prior scaled to the observed total, then clips negatives.

    Args:
        graph: the topology whose links were measured.
        link_loads: observed load per (canonically ordered) link.
        total_traffic: total volume for the gravity prior; inferred from
            the link loads when omitted.
        regularization: weight pulling the solution toward the prior.
    """
    nodes = sorted(graph.nodes)
    pairs = [(s, d) for s in nodes for d in nodes if s != d]
    routing, links = routing_matrix(graph, pairs)
    observed = np.array([link_loads.get(link, 0.0) for link in links])
    if total_traffic is None:
        # Average path length relates total link load to total traffic.
        mean_hops = max(1.0, routing.sum() / len(pairs))
        total_traffic = float(observed.sum() / mean_hops)
    prior_matrix = gravity_matrix(nodes, total_traffic)
    prior = np.array([prior_matrix[pair] for pair in pairs])
    # Stacked least squares: [A; sqrt(l) I] x ~= [y; sqrt(l) g].
    weight = np.sqrt(regularization)
    design = np.vstack([routing, weight * np.eye(len(pairs))])
    target = np.concatenate([observed, weight * prior])
    solution, *_ = np.linalg.lstsq(design, target, rcond=None)
    solution = np.clip(solution, 0.0, None)
    return {pair: float(volume) for pair, volume in zip(pairs, solution)}


def scale_matrix(matrix: TrafficMatrix, factor: float) -> TrafficMatrix:
    """Uniformly scale a TM (utilization sweeps)."""
    if factor < 0:
        raise ValueError(f"scale factor cannot be negative: {factor}")
    return {pair: volume * factor for pair, volume in matrix.items()}


def matrix_total(matrix: TrafficMatrix) -> float:
    """Total volume of a TM."""
    return float(sum(matrix.values()))
