"""MicroBench rule-insertion traces (Section 8.1.3).

"For microbenchmarks, we generated a stream of rule insertions in a
systematic manner, varying ... the arrival rate (to understand the impact of
bursts), overlap rate (to understand the impact of partitioning), and
priorities (to understand the impact of TCAM moving/rearrangement)."

A trace is a time-stamped stream of ADD FlowMods against one switch.  The
*overlap rate* is realized against a pre-seeded set of high-priority rules:
with probability ``overlap_rate`` a generated rule is a lower-priority
super-prefix of one (or, at 100%, a wildcard-like cover of many) seed rules,
forcing Hermes's partitioner to cut it.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import List

import numpy as np

from ..switchsim.messages import FlowMod
from ..tcam.prefix import Prefix
from ..tcam.rule import Action, Rule


class PriorityMode(enum.Enum):
    """How the trace assigns priorities (the "priorities" dimension)."""

    ASCENDING = "ascending"
    DESCENDING = "descending"
    RANDOM = "random"
    UNIFORM = "uniform"


@dataclass(frozen=True)
class MicrobenchConfig:
    """Parameters of one microbench trace.

    Attributes:
        arrival_rate: rule insertions per second.
        overlap_rate: fraction in [0, 1] of rules that overlap seeded
            higher-priority rules (1.0 reproduces the paper's "100% overlap"
            — every new rule overlaps resident rules).
        priority_mode: priority assignment pattern.
        duration: trace length in seconds.
        seed_rules: high-priority rules pre-installed before the trace.
        seed: RNG seed for reproducibility.
    """

    arrival_rate: float = 1000.0
    overlap_rate: float = 0.0
    priority_mode: PriorityMode = PriorityMode.RANDOM
    duration: float = 1.0
    seed_rules: int = 64
    seed: int = 7

    def __post_init__(self) -> None:
        if self.arrival_rate <= 0:
            raise ValueError(f"arrival_rate must be positive: {self.arrival_rate}")
        if not 0.0 <= self.overlap_rate <= 1.0:
            raise ValueError(f"overlap_rate must be in [0, 1]: {self.overlap_rate}")
        if self.duration <= 0:
            raise ValueError(f"duration must be positive: {self.duration}")
        if self.seed_rules < 0:
            raise ValueError(f"seed_rules cannot be negative: {self.seed_rules}")


@dataclass(frozen=True)
class TimedFlowMod:
    """A FlowMod with its arrival time."""

    time: float
    flow_mod: FlowMod


def seed_rules(config: MicrobenchConfig) -> List[Rule]:
    """The high-priority /24 rules pre-installed before the trace runs.

    Seeds live inside 172.16.0.0/12 so that fresh (non-overlapping) trace
    rules, which are drawn from 10.0.0.0/8, never collide with them.  They
    are spaced eight /24s apart so that a /21-/23 super-prefix overlaps
    exactly one seed — cutting it yields fragments instead of consuming
    the whole rule.
    """
    rules = []
    for index in range(config.seed_rules):
        slot = index * 8
        third = slot % 256
        second = 16 + (slot // 256) % 16
        rules.append(
            Rule.from_prefix(
                f"172.{second}.{third}.0/24", 10_000 + index, Action.output(1)
            )
        )
    return rules


def generate_trace(config: MicrobenchConfig) -> List[TimedFlowMod]:
    """Generate the timed ADD stream for one microbench configuration."""
    rng = np.random.default_rng(config.seed)
    seeds = seed_rules(config)
    count = max(1, int(round(config.arrival_rate * config.duration)))
    interval = 1.0 / config.arrival_rate
    priorities = _priorities(config, count, rng)
    trace: List[TimedFlowMod] = []
    fresh_counter = itertools.count(0)
    for index in range(count):
        time = (index + 1) * interval
        priority = priorities[index]
        if seeds and rng.random() < config.overlap_rate:
            rule = _overlapping_rule(seeds, priority, rng)
        else:
            rule = _fresh_rule(next(fresh_counter), priority)
        trace.append(TimedFlowMod(time=time, flow_mod=FlowMod.add(rule)))
    return trace


def _priorities(
    config: MicrobenchConfig, count: int, rng: np.random.Generator
) -> List[int]:
    if config.priority_mode is PriorityMode.ASCENDING:
        return list(range(1, count + 1))
    if config.priority_mode is PriorityMode.DESCENDING:
        return list(range(count, 0, -1))
    if config.priority_mode is PriorityMode.UNIFORM:
        return [100] * count
    return [int(rng.integers(1, 1000)) for _ in range(count)]


def _fresh_rule(index: int, priority: int) -> Rule:
    """A /24 from virgin space (10.0.0.0/8): overlaps nothing seeded."""
    second = (index // 256) % 256
    third = index % 256
    return Rule.from_prefix(
        f"10.{second}.{third}.0/24", priority, Action.output(2)
    )


def _overlapping_rule(
    seeds: List[Rule], priority: int, rng: np.random.Generator
) -> Rule:
    """A lower-priority super-prefix of a random seed rule.

    Its priority is forced below every seed's, and its prefix (a /21-/23
    parent of a seed /24) guarantees the partitioner has cutting to do —
    one to three fragments per rule, the regime where 1000 updates/s sits
    at the edge of Equation 2's sustainable rate (the paper's stress case).
    """
    target = seeds[int(rng.integers(0, len(seeds)))]
    seed_prefix = target.match.to_prefix()
    length = int(rng.integers(21, 24))  # /21 .. /23 parents of the /24 seed
    mask = ((1 << length) - 1) << (32 - length)
    parent = Prefix(seed_prefix.network & mask, length)
    low_priority = min(priority, 9_000)  # strictly below every seed priority
    return Rule.from_prefix(parent, low_priority, Action.output(3))
