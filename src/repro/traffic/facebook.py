"""Facebook MapReduce workload generator.

The paper's data-center experiments replay "Facebook's large-scale Map
Reduce deployment consisting of 24402 Map Reduce jobs run over 1 day on a
600-machine cluster" [29] (Section 8.1.3).  The trace itself is not
redistributable; this generator reproduces its published statistical shape
(the SWIM/Chowdhury characterizations):

* job arrivals are Poisson;
* job *sizes* (total shuffle bytes) are heavy-tailed: the majority of jobs
  move well under 1 GB while the tail reaches terabytes — we use a lognormal
  body with a Pareto tail;
* each job is a map->reduce shuffle: m mappers send to r reducers (m x r
  flows), with small jobs having few tasks and big jobs many.

The paper splits jobs at 1 GB into "short" and "long" for Figure 1; the
:func:`is_short_job` helper applies the same cut.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence

import numpy as np

from .flows import FlowSpec, JobSpec

SHORT_JOB_BYTES = 1e9  # the paper's short/long cut: 1 GB

_job_counter = itertools.count(1)


def sample_job_size(rng: np.random.Generator) -> float:
    """Draw one job's total shuffle bytes from the heavy-tailed mix.

    90% of jobs come from a lognormal body (median ~64 MB), 10% from a
    Pareto tail (>= 1 GB, alpha 1.2) — matching the published shape where
    most jobs are small but the tail dominates total bytes.
    """
    if rng.random() < 0.9:
        return float(rng.lognormal(mean=np.log(64e6), sigma=1.6))
    return float(1e9 * (1.0 + rng.pareto(1.2)))


def task_counts_for(size: float) -> tuple:
    """(mappers, reducers) scaled to the job size, as in SWIM."""
    if size < 100e6:
        return 2, 1
    if size < SHORT_JOB_BYTES:
        return 4, 2
    if size < 10e9:
        return 8, 4
    return 16, 8


def generate_jobs(
    hosts: Sequence[str],
    job_count: int = 200,
    arrival_rate: float = 2.0,
    rng: Optional[np.random.Generator] = None,
) -> List[JobSpec]:
    """Generate a MapReduce job stream over the given hosts.

    Args:
        hosts: candidate endpoints (the fat tree's servers).
        job_count: jobs to generate (the full trace has 24402; experiments
            default to a scaled-down count and note the scale in their
            reports).
        arrival_rate: jobs per second (Poisson).
        rng: generator; a fixed default seed keeps runs reproducible.

    Returns:
        Jobs sorted by start time, each holding its shuffle flows.
    """
    if job_count < 1:
        raise ValueError(f"job_count must be >= 1, got {job_count}")
    if arrival_rate <= 0:
        raise ValueError(f"arrival_rate must be positive, got {arrival_rate}")
    if len(hosts) < 2:
        raise ValueError("need at least two hosts")
    generator = rng if rng is not None else np.random.default_rng(42)
    jobs: List[JobSpec] = []
    time = 0.0
    for _ in range(job_count):
        time += float(generator.exponential(1.0 / arrival_rate))
        size = sample_job_size(generator)
        mappers_count, reducers_count = task_counts_for(size)
        participants = generator.choice(
            len(hosts), size=mappers_count + reducers_count, replace=False
        )
        mappers = [hosts[i] for i in participants[:mappers_count]]
        reducers = [hosts[i] for i in participants[mappers_count:]]
        job_id = next(_job_counter)
        per_flow = size / (mappers_count * reducers_count)
        flows = []
        for mapper in mappers:
            for reducer in reducers:
                if mapper == reducer:
                    continue
                flows.append(
                    FlowSpec(
                        source=mapper,
                        destination=reducer,
                        size=max(1500.0, per_flow),
                        start_time=time,
                        job_id=job_id,
                    )
                )
        jobs.append(JobSpec(job_id=job_id, flows=tuple(flows)))
    return jobs


def is_short_job(job: JobSpec) -> bool:
    """The paper's Figure 1 split: short jobs move less than 1 GB."""
    return job.total_bytes < SHORT_JOB_BYTES


def flows_of(jobs: Sequence[JobSpec]) -> List[FlowSpec]:
    """Flatten a job list into a start-time-ordered flow list."""
    flows = [flow for job in jobs for flow in job.flows]
    flows.sort(key=lambda flow: flow.start_time)
    return flows
