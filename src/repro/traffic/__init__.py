"""Workload generators: traffic matrices, flows, MapReduce jobs, microbench."""

from .facebook import (
    SHORT_JOB_BYTES,
    flows_of,
    generate_jobs,
    is_short_job,
    sample_job_size,
    task_counts_for,
)
from .flows import FlowSpec, JobSpec, flows_from_matrix
from .matrices import (
    TrafficMatrix,
    gravity_matrix,
    link_loads_from_matrix,
    matrix_total,
    routing_matrix,
    scale_matrix,
    tomogravity_matrix,
)
from .microbench import (
    MicrobenchConfig,
    PriorityMode,
    TimedFlowMod,
    generate_trace,
    seed_rules,
)

__all__ = [
    "FlowSpec",
    "JobSpec",
    "MicrobenchConfig",
    "PriorityMode",
    "SHORT_JOB_BYTES",
    "TimedFlowMod",
    "TrafficMatrix",
    "flows_from_matrix",
    "flows_of",
    "generate_jobs",
    "generate_trace",
    "gravity_matrix",
    "is_short_job",
    "link_loads_from_matrix",
    "matrix_total",
    "routing_matrix",
    "sample_job_size",
    "scale_matrix",
    "seed_rules",
    "task_counts_for",
    "tomogravity_matrix",
]
