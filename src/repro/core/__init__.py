"""Hermes core: the paper's primary contribution.

Gate Keeper + Rule Manager + Algorithm 1 partitioning + predictive
migration, exposed as a drop-in :class:`~repro.switchsim.installer.RuleInstaller`
and through the paper's operator API (:class:`HermesService`).
"""

from .api import HermesService, QoSHandle
from .autotune import AutoTuneConfig, SlackAutoTuner
from .correction import (
    CORRECTOR_NAMES,
    Corrector,
    DeadzoneCorrector,
    NoCorrection,
    SlackCorrector,
    make_corrector,
)
from .gatekeeper import (
    GateDecision,
    GateKeeper,
    MatchPredicate,
    TokenBucket,
    match_all,
    priority_at_least,
)
from .guarantees import (
    GuaranteeSpec,
    asic_overhead,
    estimate_migration_time,
    max_insertion_rate,
    shadow_capacity_for,
)
from .hermes import HermesConfig, HermesInstaller
from .multitable import LogicalTableSpec, MultiTableHermes
from .partition import (
    PartitionMap,
    PartitionOutcome,
    detect_overlaps,
    eliminate_overlap,
    merge_matches,
    partition_new_rule,
)
from .predicates import (
    Predicate,
    action_kind,
    everything,
    nothing,
    output_port_in,
    overlapping_prefix,
    priority_band,
    within_prefix,
)
from .prediction import (
    PREDICTOR_NAMES,
    ArmaPredictor,
    CubicSplinePredictor,
    EwmaPredictor,
    Predictor,
    make_predictor,
)
from .rule_manager import (
    MigrationReport,
    MigrationTrigger,
    PredictiveTrigger,
    RuleManager,
    ThresholdTrigger,
)

__all__ = [
    "ArmaPredictor",
    "AutoTuneConfig",
    "CORRECTOR_NAMES",
    "Corrector",
    "CubicSplinePredictor",
    "DeadzoneCorrector",
    "EwmaPredictor",
    "GateDecision",
    "GateKeeper",
    "GuaranteeSpec",
    "HermesConfig",
    "HermesInstaller",
    "HermesService",
    "LogicalTableSpec",
    "MatchPredicate",
    "MigrationReport",
    "MigrationTrigger",
    "MultiTableHermes",
    "NoCorrection",
    "PREDICTOR_NAMES",
    "PartitionMap",
    "PartitionOutcome",
    "Predicate",
    "PredictiveTrigger",
    "Predictor",
    "QoSHandle",
    "RuleManager",
    "SlackAutoTuner",
    "SlackCorrector",
    "ThresholdTrigger",
    "TokenBucket",
    "action_kind",
    "asic_overhead",
    "detect_overlaps",
    "eliminate_overlap",
    "estimate_migration_time",
    "everything",
    "make_corrector",
    "make_predictor",
    "match_all",
    "nothing",
    "output_port_in",
    "overlapping_prefix",
    "max_insertion_rate",
    "merge_matches",
    "partition_new_rule",
    "priority_at_least",
    "priority_band",
    "shadow_capacity_for",
    "within_prefix",
]
