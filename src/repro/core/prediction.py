"""Rule-arrival-rate predictors (Section 5.1 of the paper).

The Rule Manager must migrate rules out of the shadow table *before* it
overflows.  Hermes therefore predicts the next interval's rule arrivals from
the observed time series.  The paper explores three predictors — EWMA, Cubic
Spline, and ARMA — and finds Cubic Spline (combined with the Slack corrector)
the most effective.  All three are implemented here behind one interface.
"""

from __future__ import annotations

import abc
from collections import deque
from typing import Deque, Optional

import numpy as np
from scipy.interpolate import CubicSpline


class Predictor(abc.ABC):
    """Online one-step-ahead predictor of rule arrival counts."""

    @abc.abstractmethod
    def update(self, value: float) -> None:
        """Feed the arrival count observed in the interval that just ended."""

    @abc.abstractmethod
    def predict(self) -> float:
        """Predict the arrival count of the next interval (never negative)."""

    def observe_and_predict(self, value: float) -> float:
        """Convenience: update with an observation, then predict."""
        self.update(value)
        return self.predict()


class EwmaPredictor(Predictor):
    """Exponentially weighted moving average [Lucas & Saccucci 1990].

    ``alpha`` close to 1 tracks recent samples aggressively; close to 0
    smooths heavily.
    """

    def __init__(self, alpha: float = 0.5) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._level: Optional[float] = None

    def update(self, value: float) -> None:
        """Blend the new observation into the smoothed level."""
        if self._level is None:
            self._level = float(value)
        else:
            self._level = self.alpha * float(value) + (1.0 - self.alpha) * self._level

    def predict(self) -> float:
        """The smoothed level is the one-step forecast."""
        return max(0.0, self._level if self._level is not None else 0.0)


class CubicSplinePredictor(Predictor):
    """Cubic-spline extrapolation over a sliding window [de Boor 1978].

    Fits a natural cubic spline through the last ``window`` observations and
    evaluates it one step past the end.  With fewer than four samples it
    falls back to the last observation (splines need >= 4 points).
    Extrapolations are clamped to a multiple of the window maximum so a
    steep spline tail cannot produce absurd forecasts.
    """

    def __init__(self, window: int = 8, clamp_factor: float = 3.0) -> None:
        if window < 4:
            raise ValueError(f"spline window must be >= 4, got {window}")
        self.window = window
        self.clamp_factor = clamp_factor
        self._samples: Deque[float] = deque(maxlen=window)

    def update(self, value: float) -> None:
        """Append to the sliding window."""
        self._samples.append(float(value))

    def predict(self) -> float:
        """Extrapolate one step beyond the window with a cubic spline."""
        if not self._samples:
            return 0.0
        if len(self._samples) < 4:
            return max(0.0, self._samples[-1])
        ys = np.asarray(self._samples, dtype=float)
        xs = np.arange(len(ys), dtype=float)
        spline = CubicSpline(xs, ys, bc_type="natural")
        forecast = float(spline(len(ys)))
        ceiling = self.clamp_factor * float(ys.max())
        return float(np.clip(forecast, 0.0, ceiling))


class ArmaPredictor(Predictor):
    """ARMA(p, q) forecaster [Whittle 1951] fit by Hannan–Rissanen.

    A lightweight two-stage estimator: first fit a long autoregression to
    estimate innovations, then regress the series on its own lags and the
    lagged innovations.  Falls back to the sample mean (or last value) while
    the window is too short for a stable fit.
    """

    def __init__(self, p: int = 2, q: int = 1, window: int = 32) -> None:
        if p < 1 or q < 0:
            raise ValueError(f"need p >= 1 and q >= 0, got p={p} q={q}")
        min_window = 4 * (p + q + 1)
        if window < min_window:
            raise ValueError(f"window {window} too small for ARMA({p},{q})")
        self.p = p
        self.q = q
        self.window = window
        self._samples: Deque[float] = deque(maxlen=window)

    def update(self, value: float) -> None:
        """Append to the sliding window."""
        self._samples.append(float(value))

    def predict(self) -> float:
        """One-step ARMA forecast over the current window."""
        count = len(self._samples)
        if count == 0:
            return 0.0
        ys = np.asarray(self._samples, dtype=float)
        if count < 3 * (self.p + self.q + 1):
            return max(0.0, float(ys.mean()))
        mean = ys.mean()
        centered = ys - mean
        innovations = self._estimate_innovations(centered)
        design_rows = []
        targets = []
        start = max(self.p, self.q)
        for t in range(start, count):
            ar_terms = [centered[t - lag] for lag in range(1, self.p + 1)]
            ma_terms = [innovations[t - lag] for lag in range(1, self.q + 1)]
            design_rows.append(ar_terms + ma_terms)
            targets.append(centered[t])
        design = np.asarray(design_rows, dtype=float)
        target = np.asarray(targets, dtype=float)
        coefficients, *_ = np.linalg.lstsq(design, target, rcond=None)
        ar_coeffs = coefficients[: self.p]
        ma_coeffs = coefficients[self.p :]
        ar_part = sum(
            ar_coeffs[lag - 1] * centered[count - lag] for lag in range(1, self.p + 1)
        )
        ma_part = sum(
            ma_coeffs[lag - 1] * innovations[count - lag]
            for lag in range(1, self.q + 1)
        )
        forecast = mean + ar_part + ma_part
        ceiling = 3.0 * float(ys.max()) if ys.max() > 0 else 1.0
        return float(np.clip(forecast, 0.0, ceiling))

    def _estimate_innovations(self, centered: np.ndarray) -> np.ndarray:
        """Stage 1 of Hannan–Rissanen: residuals of a long AR fit."""
        count = len(centered)
        long_order = min(max(self.p + self.q, 2) * 2, count // 2)
        innovations = np.zeros(count)
        design_rows = []
        targets = []
        for t in range(long_order, count):
            design_rows.append([centered[t - lag] for lag in range(1, long_order + 1)])
            targets.append(centered[t])
        if not design_rows:
            return innovations
        design = np.asarray(design_rows, dtype=float)
        target = np.asarray(targets, dtype=float)
        coefficients, *_ = np.linalg.lstsq(design, target, rcond=None)
        for t in range(long_order, count):
            lagged = np.asarray(
                [centered[t - lag] for lag in range(1, long_order + 1)]
            )
            innovations[t] = centered[t] - float(coefficients @ lagged)
        return innovations


PREDICTOR_NAMES = ("ewma", "cubic-spline", "arma")


def make_predictor(name: str, **kwargs) -> Predictor:
    """Build a predictor by registry name (``ewma``/``cubic-spline``/``arma``).

    Extra keyword arguments are forwarded to the predictor's constructor.
    """
    key = name.strip().lower().replace("_", "-").replace(" ", "-")
    if key == "ewma":
        return EwmaPredictor(**kwargs)
    if key in ("cubic-spline", "cubic", "spline"):
        return CubicSplinePredictor(**kwargs)
    if key == "arma":
        return ArmaPredictor(**kwargs)
    raise KeyError(f"unknown predictor {name!r}; known: {', '.join(PREDICTOR_NAMES)}")
