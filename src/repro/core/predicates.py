"""Match predicates: which rules get the guarantee (Section 7).

``CreateTCAMQoS`` takes a *match-predicate* selecting the rules entitled to
the guaranteed path.  Any ``Callable[[Rule], bool]`` works; this module
provides the vocabulary operators actually use — prefix regions, priority
bands, action kinds — plus boolean combinators, all composable and
printable (the string form shows up in operator tooling and logs).
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..tcam.prefix import Prefix
from ..tcam.rule import Rule

MatchPredicate = Callable[[Rule], bool]


class Predicate:
    """A named, composable match predicate.

    Supports ``&``, ``|``, and ``~`` for conjunction, disjunction, and
    negation; calling it evaluates the rule.
    """

    def __init__(self, fn: MatchPredicate, description: str) -> None:
        self._fn = fn
        self.description = description

    def __call__(self, rule: Rule) -> bool:
        return self._fn(rule)

    def __and__(self, other: "Predicate") -> "Predicate":
        return Predicate(
            lambda rule: self(rule) and other(rule),
            f"({self.description} and {other.description})",
        )

    def __or__(self, other: "Predicate") -> "Predicate":
        return Predicate(
            lambda rule: self(rule) or other(rule),
            f"({self.description} or {other.description})",
        )

    def __invert__(self) -> "Predicate":
        return Predicate(lambda rule: not self(rule), f"not {self.description}")

    def __repr__(self) -> str:
        return f"Predicate({self.description})"


def everything() -> Predicate:
    """Guarantee every rule (the default)."""
    return Predicate(lambda _rule: True, "everything")


def nothing() -> Predicate:
    """Guarantee no rule (an inactive QoS)."""
    return Predicate(lambda _rule: False, "nothing")


def within_prefix(prefix: "Prefix | str") -> Predicate:
    """Rules whose match lies wholly inside ``prefix``.

    Non-prefix (general ternary) matches qualify only when the prefix
    contains them as a ternary region.
    """
    if isinstance(prefix, str):
        prefix = Prefix.from_string(prefix)
    from ..tcam.ternary import TernaryMatch

    region = TernaryMatch.from_prefix(prefix)

    def check(rule: Rule) -> bool:
        return region.contains(rule.match)

    return Predicate(check, f"within {prefix}")


def overlapping_prefix(prefix: "Prefix | str") -> Predicate:
    """Rules whose match overlaps ``prefix`` at all."""
    if isinstance(prefix, str):
        prefix = Prefix.from_string(prefix)
    from ..tcam.ternary import TernaryMatch

    region = TernaryMatch.from_prefix(prefix)

    def check(rule: Rule) -> bool:
        return region.overlaps(rule.match)

    return Predicate(check, f"overlapping {prefix}")


def priority_band(low: int, high: int) -> Predicate:
    """Rules with ``low <= priority <= high``.

    Raises:
        ValueError: when the band is empty.
    """
    if low > high:
        raise ValueError(f"empty priority band [{low}, {high}]")
    return Predicate(
        lambda rule: low <= rule.priority <= high,
        f"priority in [{low}, {high}]",
    )


def action_kind(kind: str) -> Predicate:
    """Rules whose action is of the given kind (output/drop/controller)."""
    if kind not in ("output", "drop", "controller"):
        raise ValueError(f"unknown action kind {kind!r}")
    return Predicate(lambda rule: rule.action.kind == kind, f"action {kind}")


def output_port_in(ports: Sequence[int]) -> Predicate:
    """Output rules targeting one of the given ports."""
    allowed = frozenset(ports)
    return Predicate(
        lambda rule: rule.action.kind == "output" and rule.action.port in allowed,
        f"output port in {sorted(allowed)}",
    )
