"""The Gate Keeper: admission control and insertion-path selection.

The Gate Keeper (Section 3) sits on the switch's control path.  For every
FlowMod it decides whether the rule gets the guaranteed (shadow-table) path
or the best-effort (main-table) path:

* a *match predicate* selects which rules the operator bought guarantees for;
* a *token bucket* enforces the agreed insertion rate — actions arriving
  faster than the rate Hermes committed to (Equation 2) overflow to the main
  table rather than violating guarantees for admitted rules;
* the *lowest-priority fast path* (Section 4.2) sends rules that would land
  at the very bottom of the main table straight there: such inserts shift
  nothing (they are cheap anyway) and they are exactly the rules that would
  fragment the most.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

from ..tcam.rule import Rule


class TokenBucket:
    """A standard token bucket over continuous simulation time.

    Tokens accrue at ``rate`` per second up to ``burst``; each admitted
    action spends one token.  ``math.inf`` rates disable throttling.
    """

    def __init__(self, rate: float, burst: float) -> None:
        """Create a full bucket.

        Args:
            rate: token refill rate per second (must be positive; may be inf).
            burst: bucket depth (must be >= 1).
        """
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be at least 1, got {burst}")
        self.rate = rate
        self.burst = float(burst)
        self._tokens = float(burst)
        self._last_refill = 0.0

    @property
    def tokens(self) -> float:
        """Tokens currently available (as of the last refill)."""
        return self._tokens

    def _refill(self, now: float) -> None:
        if now < self._last_refill:
            raise ValueError(
                f"time went backwards: {now} < {self._last_refill}"
            )
        if now > self._last_refill:
            if math.isinf(self.rate):
                self._tokens = self.burst
            else:
                self._tokens = min(
                    self.burst, self._tokens + (now - self._last_refill) * self.rate
                )
            self._last_refill = now

    def try_consume(self, now: float, amount: float = 1.0) -> bool:
        """Spend ``amount`` tokens at time ``now``; False when insufficient.

        Raises:
            ValueError: when ``amount`` is not positive, or ``now`` precedes
                the last refill (the bucket assumes monotonic time).
        """
        if amount <= 0:
            raise ValueError(f"amount must be positive, got {amount}")
        self._refill(now)
        if self._tokens + 1e-12 >= amount:
            self._tokens -= amount
            return True
        return False


MatchPredicate = Callable[[Rule], bool]


def match_all(_rule: Rule) -> bool:
    """The default predicate: every rule gets the guarantee."""
    return True


def priority_at_least(threshold: int) -> MatchPredicate:
    """Guarantee only rules with priority >= ``threshold``."""

    def predicate(rule: Rule) -> bool:
        return rule.priority >= threshold

    return predicate


@dataclass(frozen=True)
class GateDecision:
    """Where an insertion goes, and why.

    Attributes:
        use_shadow: True for the guaranteed path.
        reason: one of ``"guaranteed"``, ``"predicate-miss"``,
            ``"rate-limited"``, ``"lowest-priority-fastpath"``,
            ``"shadow-full"``, ``"degraded"``.
    """

    use_shadow: bool
    reason: str


class GateKeeper:
    """Routes insertions between the shadow and main tables."""

    def __init__(
        self,
        predicate: MatchPredicate = match_all,
        bucket: Optional[TokenBucket] = None,
        lowest_priority_fastpath: bool = True,
    ) -> None:
        """Configure the gate.

        Args:
            predicate: selects the rules entitled to guarantees.
            bucket: admission-control token bucket; None disables rate
                limiting (every predicate-matching rule is admitted).
            lowest_priority_fastpath: enable the Section 4.2 optimization.
        """
        self.predicate = predicate
        self.bucket = bucket
        self.lowest_priority_fastpath = lowest_priority_fastpath
        self.admitted = 0
        self.diverted = 0
        self.reason_counts: dict = {}

    def decide(
        self,
        rule: Rule,
        now: float,
        *,
        shadow_has_room: bool,
        main_lowest_priority: Optional[int],
        degraded: bool = False,
    ) -> GateDecision:
        """Decide the insertion path for one rule.

        Args:
            rule: the incoming rule.
            now: simulation time (drives the token bucket).
            shadow_has_room: False when the shadow table is at capacity.
            main_lowest_priority: the smallest priority currently in the
                main table, or None when the main table is empty.
            degraded: True while the installer cannot honor guarantees
                (shadow unavailable, or the control channel's circuit
                breaker is open) — guaranteed rules demote to best-effort
                rather than pretending.

        Returns:
            The routing decision, with the dominating reason.
        """
        decision = self._decide(
            rule, now, shadow_has_room, main_lowest_priority, degraded
        )
        if decision.use_shadow:
            self.admitted += 1
        else:
            self.diverted += 1
        self.reason_counts[decision.reason] = (
            self.reason_counts.get(decision.reason, 0) + 1
        )
        return decision

    def _decide(
        self,
        rule: Rule,
        now: float,
        shadow_has_room: bool,
        main_lowest_priority: Optional[int],
        degraded: bool = False,
    ) -> GateDecision:
        if not self.predicate(rule):
            return GateDecision(use_shadow=False, reason="predicate-miss")
        if degraded:
            return GateDecision(use_shadow=False, reason="degraded")
        if (
            self.lowest_priority_fastpath
            and main_lowest_priority is not None
            and rule.priority <= main_lowest_priority
        ):
            # Appending at the bottom of the main table shifts nothing, so
            # it is cheap there — and bottom rules fragment the most if
            # partitioned (e.g. a lowest-priority 0.0.0.0/0 overlaps
            # everything).
            return GateDecision(use_shadow=False, reason="lowest-priority-fastpath")
        if not shadow_has_room:
            return GateDecision(use_shadow=False, reason="shadow-full")
        if self.bucket is not None and not self.bucket.try_consume(now):
            return GateDecision(use_shadow=False, reason="rate-limited")
        return GateDecision(use_shadow=True, reason="guaranteed")
