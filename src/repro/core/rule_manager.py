"""The Rule Manager: predictive migration from the shadow to the main table.

Section 5 of the paper.  The Rule Manager watches the rule-arrival time
series and migrates the shadow table's content to the main table *before*
the shadow overflows.  Migration follows the four-step workflow of Figure 7:

1. copy the rules out of the shadow (and consult the main table);
2. optimize — rewrite the rules to minimize how many must be written.  Our
   optimizer exploits a structural fact: fragments created by Algorithm 1
   exist only to protect *cross-table* priority semantics, so once they move
   into the main table (where the TCAM disambiguates overlaps natively) each
   fragment family collapses back into its single original rule.  Sibling
   prefixes with identical action and priority are merged as well;
3. write the optimized rules into the main table.  With atomic migration
   (the paper's incremental update) replacements are inserted *before* the
   rules they supersede are deleted, so no packet ever falls in a gap; the
   delete-first ablation records the transient uncovered time instead;
4. empty the shadow table.

Migration timing (t_m) is charged to simulated background time: optimizer
cost grows super-linearly in the rules processed (the Figure 15(b) shape)
and every TCAM write costs the main table's occupancy-dependent latency.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..faults.table import TcamWriteError, verified_insert
from ..obs.tracer import get_tracer
from ..tcam.rule import Rule
from ..tcam.table import TcamTable
from ..tcam.ternary import TernaryMatch
from .correction import Corrector
from ..tcam.moveplan import conflicts_with_resident
from .partition import PartitionMap, partition_new_rule
from .prediction import Predictor


@dataclass(frozen=True)
class MigrationReport:
    """Accounting for one shadow-to-main migration.

    Attributes:
        started_at: simulation time the migration began.
        rules_copied: shadow rules read in step 1.
        rules_written: optimized rules written to the main table in step 3.
        rules_merged_away: rule count eliminated by the step-2 optimizer.
        duration: total t_m in seconds (optimizer + writes + shadow clear).
        optimizer_time: step-2 share of the duration.
        write_time: step-3 share of the duration.
        transient_gap_time: seconds during which some key was transiently
            uncovered — always 0 under atomic migration.
        rules_reissued: step-3 writes that had to be re-issued because the
            TCAM write failed (visibly or silently) under fault injection —
            always 0 without an injector.
    """

    started_at: float
    rules_copied: int
    rules_written: int
    rules_merged_away: int
    duration: float
    optimizer_time: float
    write_time: float
    transient_gap_time: float = 0.0
    rules_reissued: int = 0


class MigrationTrigger(abc.ABC):
    """Policy deciding *when* to migrate (Section 5.1's alternatives)."""

    @abc.abstractmethod
    def should_migrate(self, occupancy: int, capacity: int) -> bool:
        """Decide on migration given the shadow's current fill level."""

    def observe_epoch(self, arrivals: float) -> None:
        """Feed one epoch's arrival count (predictive triggers learn here)."""


class PredictiveTrigger(MigrationTrigger):
    """Hermes's default: migrate when the *forecast* says overflow is near.

    The predicted next-epoch arrivals, inflated by the corrector, are added
    to the current occupancy; migration fires when the sum would exceed the
    shadow capacity.
    """

    def __init__(
        self,
        predictor: Predictor,
        corrector: Corrector,
        high_watermark: float = 0.9,
    ) -> None:
        """``high_watermark`` is a forecast-independent backstop: a shadow
        filled beyond this fraction migrates even when the predictor sees a
        quiet series (bursty workloads can park the occupancy high between
        bursts while the per-epoch forecast reads near zero)."""
        if not 0.0 < high_watermark <= 1.0:
            raise ValueError(f"high_watermark must be in (0, 1]: {high_watermark}")
        self.predictor = predictor
        self.corrector = corrector
        self.high_watermark = high_watermark
        self.last_forecast = 0.0
        # Watermark firings mean the forecast undershot badly enough that
        # the backstop had to act — the signal the auto-tuner learns from.
        self.watermark_fires = 0

    def observe_epoch(self, arrivals: float) -> None:
        """Update the predictor with a completed epoch's arrivals."""
        self.predictor.update(arrivals)

    def should_migrate(self, occupancy: int, capacity: int) -> bool:
        """Fire when the corrected forecast (or the watermark) overflows."""
        if occupancy == 0:
            return False
        self.last_forecast = self.corrector.apply(self.predictor.predict())
        if occupancy + self.last_forecast > capacity:
            return True
        if occupancy >= self.high_watermark * capacity:
            self.watermark_fires += 1
            return True
        return False


class ThresholdTrigger(MigrationTrigger):
    """Hermes-SIMPLE (Section 8.5): migrate past a fixed fill threshold.

    A threshold of 0.0 migrates whenever anything is in the shadow —
    maximum safety, maximum migration churn (Figure 12).
    """

    def __init__(self, threshold: float) -> None:
        """``threshold`` is the fill fraction in [0, 1]."""
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {threshold}")
        self.threshold = threshold

    def should_migrate(self, occupancy: int, capacity: int) -> bool:
        """Fire once the fill fraction reaches the threshold."""
        if occupancy == 0:
            return False
        return occupancy >= self.threshold * capacity


class RuleManager:
    """Runs the migration workflow against a shadow/main table pair."""

    def __init__(
        self,
        shadow: TcamTable,
        main: TcamTable,
        partition_map: PartitionMap,
        trigger: MigrationTrigger,
        epoch: float = 0.05,
        optimize: bool = True,
        atomic: bool = True,
        optimizer_unit_cost: float = 2e-6,
        copy_unit_cost: float = 1e-7,
        verify_writes: bool = False,
        verify_migrations: bool = False,
        fault_log=None,
    ) -> None:
        """Wire the manager to its tables.

        Args:
            shadow: the small guaranteed-insertion table.
            main: the large table rules migrate into.
            partition_map: Algorithm 1's mapping set, consulted to collapse
                fragment families during optimization.
            trigger: when-to-migrate policy.
            epoch: prediction interval in seconds.
            optimize: enable the step-2 rule minimizer (ablation flag).
            atomic: insert-before-delete consistency (ablation flag).
            optimizer_unit_cost: seconds of CPU per rule-sqrt(rules) unit of
                optimizer work (calibrates the Fig 15(b) curve).
            copy_unit_cost: seconds per rule for the step-1 copy.
            verify_writes: check every step-3 write against the table and
                re-issue lost ones — required under fault injection, where
                a write can silently no-op and break the partition
                invariant (a migrated rule the main table never received).
            verify_migrations: run :func:`repro.analysis.verifier.
                verify_moveplan` over each migration batch *before* it is
                written, replaying every intermediate state of the planned
                placement.  Findings accumulate in ``migration_violations``
                and surface through the tracer; the migration proceeds
                regardless (the checker is an observer, not a gate).
            fault_log: optional :class:`~repro.faults.log.FaultLog` to
                record re-issues and permanently lost writes into.
        """
        if epoch <= 0:
            raise ValueError(f"epoch must be positive, got {epoch}")
        self.shadow = shadow
        self.main = main
        self.partition_map = partition_map
        self.trigger = trigger
        self.epoch = epoch
        self.optimize = optimize
        self.atomic = atomic
        self.optimizer_unit_cost = optimizer_unit_cost
        self.copy_unit_cost = copy_unit_cost
        self.verify_writes = verify_writes
        self.verify_migrations = verify_migrations
        self.fault_log = fault_log
        self.reissued_writes = 0
        self.migrations: List[MigrationReport] = []
        self.migration_violations: List = []
        self.plans_verified = 0
        self._arrivals_this_epoch = 0
        self._epoch_start = 0.0
        self._stranded: List[Rule] = []

    # ------------------------------------------------------------------
    # Time and arrivals
    # ------------------------------------------------------------------
    def note_arrival(self, count: int = 1) -> None:
        """Record ``count`` physical rule insertions into the shadow table."""
        self._arrivals_this_epoch += count

    def tick(self, now: float) -> float:
        """Advance to ``now``; runs epoch bookkeeping and any migrations.

        Returns:
            Seconds of background work performed during this call.
        """
        background = 0.0
        # Close out completed epochs.  Long idle gaps are collapsed: the
        # trigger sees at most one trailing run of empty epochs so that a
        # quiet hour does not cost an hour of zero-feeding.
        pending_epochs = int((now - self._epoch_start) / self.epoch)
        if pending_epochs > 0:
            idle_epochs = max(0, pending_epochs - 1)
            self.trigger.observe_epoch(self._arrivals_this_epoch)
            for _ in range(min(idle_epochs, 8)):
                self.trigger.observe_epoch(0.0)
            self._arrivals_this_epoch = 0
            self._epoch_start += pending_epochs * self.epoch
            if self.trigger.should_migrate(self.shadow.occupancy, self.shadow.capacity):
                background += self.migrate(now).duration
        return background

    # ------------------------------------------------------------------
    # Migration (Figure 7)
    # ------------------------------------------------------------------
    def migrate(self, now: float) -> MigrationReport:
        """Run the four-step migration workflow immediately."""
        tracer = get_tracer()
        span = tracer.start_span(
            "hermes.migration", start=now, category="hermes"
        )
        shifts_before = (
            self.shadow.stats.total_shifts + self.main.stats.total_shifts
        )
        shadow_rules = self.shadow.rules()
        rules_copied = len(shadow_rules)
        copy_time = self.copy_unit_cost * (rules_copied + self.main.occupancy)
        if rules_copied == 0:
            report = MigrationReport(
                started_at=now,
                rules_copied=0,
                rules_written=0,
                rules_merged_away=0,
                duration=copy_time,
                optimizer_time=0.0,
                write_time=0.0,
            )
            self.migrations.append(report)
            span.finish(end=now + report.duration, rules_copied=0)
            return report

        optimized, merged_away, optimizer_time = self._optimize(shadow_rules)
        self._stranded = []
        if self.verify_migrations:
            self._verify_migration_plan(optimized, now)
        if self.atomic:
            # Steps 3 then 4: the shadow is emptied only after the main
            # table holds everything (migration-consistency, Section 5.2).
            write_time, gap_time, reissued = self._write_to_main(optimized, now)
            clear_time = self.shadow.clear().latency
        else:
            # The naive ordering the paper warns against: clear first,
            # write second.  Every optimized rule is uncovered from the
            # clear until its own write lands; the summed uncovered time is
            # the consistency cost the atomic protocol eliminates.
            clear_time = self.shadow.clear().latency
            write_time, duplicate_gap, reissued = self._write_to_main(optimized, now)
            gap_time = duplicate_gap + len(optimized) * clear_time
            cumulative = 0.0
            for rule_index in range(len(optimized)):
                per_write = write_time / max(1, len(optimized))
                cumulative += per_write
                gap_time += cumulative
        # Rules the main table had no room for stay behind in the shadow,
        # re-partitioned against the post-migration main table.
        for rule in self._stranded:
            outcome = partition_new_rule(rule, self.main.rules())
            for fragment in outcome.fragments:
                clear_time += self._insert_shadow(fragment)
            if outcome.was_partitioned:
                self.partition_map.record(rule, outcome)
        self.reissued_writes += reissued
        report = MigrationReport(
            started_at=now,
            rules_copied=rules_copied,
            rules_written=len(optimized),
            rules_merged_away=merged_away,
            duration=copy_time + optimizer_time + write_time + clear_time,
            optimizer_time=optimizer_time,
            write_time=write_time,
            transient_gap_time=gap_time,
            rules_reissued=reissued,
        )
        self.migrations.append(report)
        span.finish(
            end=now + report.duration,
            rules_copied=rules_copied,
            rules_written=len(optimized),
            merged_away=merged_away,
            reissued=reissued,
            optimizer_time=optimizer_time,
            write_time=write_time,
            shifts=(
                self.shadow.stats.total_shifts
                + self.main.stats.total_shifts
                - shifts_before
            ),
        )
        return report

    def migrations_per_second(self, horizon: float) -> float:
        """Migration frequency over a horizon (the Fig 12(b) metric)."""
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        return len(self.migrations) / horizon

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _optimize(self, shadow_rules: List[Rule]) -> Tuple[List[Rule], int, float]:
        """Step 2: minimize the rules that must be written to the main table.

        Returns (optimized rules, rules merged away, modelled CPU seconds).
        """
        if not self.optimize:
            time_cost = self.optimizer_unit_cost * len(shadow_rules)
            return list(shadow_rules), 0, time_cost

        # Collapse fragment families back into their originals: safe once
        # both live in the same table, where the TCAM itself disambiguates
        # overlapping priorities.
        by_origin: Dict[int, List[Rule]] = {}
        passthrough: List[Rule] = []
        for rule in shadow_rules:
            if rule.origin_id is not None and self.partition_map.is_partitioned(
                rule.origin_id
            ):
                by_origin.setdefault(rule.origin_id, []).append(rule)
            else:
                passthrough.append(rule)
        collapsed: List[Rule] = []
        for origin_id, fragments in by_origin.items():
            original = self.partition_map.original(origin_id)
            live_ids = self.partition_map.fragment_ids(origin_id)
            if original is not None and live_ids == {f.rule_id for f in fragments}:
                collapsed.append(original)
                self.partition_map.forget(origin_id)
            else:
                # Part of the family lives elsewhere (fragments that
                # overflowed into the main table); merge the shadow-resident
                # part but keep the absent ids tracked, or a later logical
                # delete would orphan them.
                elsewhere = live_ids - {f.rule_id for f in fragments}
                survivors = self._merge_family(origin_id, fragments, elsewhere)
                collapsed.extend(survivors)

        optimized = passthrough + collapsed
        merged_away = len(shadow_rules) - len(optimized)
        work_units = len(shadow_rules) * max(
            1.0, (len(shadow_rules) + self.main.occupancy) ** 0.5
        )
        return optimized, merged_away, self.optimizer_unit_cost * work_units

    def _merge_family(
        self, origin_id: int, fragments: List[Rule], keep_ids: Set[int] = frozenset()
    ) -> List[Rule]:
        """Merge sibling-prefix fragments of one partitioned logical rule.

        Fragments share a priority and an action by construction, so any
        sibling pair coalesces into its parent without changing semantics.
        The partition map's live-fragment set is updated to the merged ids
        plus ``keep_ids`` (family members not present in this batch).
        """
        non_prefix = [rule for rule in fragments if not rule.match.is_prefix]
        as_prefixes = {
            rule.match.to_prefix(): rule for rule in fragments if rule.match.is_prefix
        }
        changed = True
        while changed:
            changed = False
            for prefix in sorted(as_prefixes, key=lambda p: -p.length):
                if prefix not in as_prefixes or prefix.length == 0:
                    continue
                sibling = prefix.sibling()
                if sibling in as_prefixes:
                    keeper = as_prefixes.pop(prefix)
                    as_prefixes.pop(sibling)
                    parent_rule = keeper.with_match(
                        TernaryMatch.from_prefix(prefix.parent())
                    )
                    as_prefixes[prefix.parent()] = parent_rule
                    changed = True
        survivors = non_prefix + list(as_prefixes.values())
        self.partition_map.replace_fragments(
            origin_id,
            {rule.rule_id for rule in survivors} | set(keep_ids),
        )
        return survivors

    def _insert_shadow(self, rule: Rule) -> float:
        """Insert a stranded fragment back into the shadow, surviving faults."""
        if not self.verify_writes:
            return self.shadow.insert(rule).latency
        latency, ok = verified_insert(self.shadow, rule)
        if not ok and self.fault_log is not None:
            self.fault_log.record(
                "migration-strand-lost", time=0.0, target=self.shadow.name,
                rule_id=rule.rule_id,
            )
        return latency

    def _verify_migration_plan(self, optimized: List[Rule], now: float) -> None:
        """Check the placement this migration is about to perform.

        Mirrors the writer's own planning in :meth:`_write_to_main`: rules
        dominating a resident entry take the online shifting path (they have
        no zero-shift slot), refreshes of already-resident ids are handled
        by the refresh protocol, and the remainder — capped at the main
        table's free slots, exactly where the writer starts stranding — is
        the planned batch.  That batch is replayed write-by-write over the
        resident table so every intermediate lookup state is checked, not
        just the final one.
        """
        # Imported lazily: repro.analysis' package __init__ pulls plotting
        # and scipy helpers the migration path must not load unless a plan
        # is actually being verified.
        from ..analysis.verifier import verify_moveplan
        from ..tcam.moveplan import plan_batch_placement

        resident = self.main.rules()
        conflicted_ids = {
            rule.rule_id for rule in conflicts_with_resident(optimized, resident)
        }
        batch = [
            rule
            for rule in sorted(optimized, key=lambda r: -r.priority)
            if rule.rule_id not in conflicted_ids and rule.rule_id not in self.main
        ]
        free = max(0, self.main.capacity - self.main.occupancy)
        batch = batch[:free]
        if not batch:
            return
        plan = plan_batch_placement(batch, resident, self.main.capacity)
        violations = verify_moveplan(plan, resident, capacity=self.main.capacity)
        self.plans_verified += 1
        if violations:
            self.migration_violations.extend(violations)
            get_tracer().event(
                "hermes.migration.plan-violation",
                time=now,
                category="hermes",
                count=len(violations),
                kinds=sorted({violation.kind for violation in violations}),
            )

    def _insert_main(self, rule: Rule, planned: bool) -> Tuple[float, bool]:
        """One main-table write attempt; returns (latency, visibly_ok).

        A visible write fault is absorbed here (its latency still counts);
        a *silent* one looks ok and is only caught by the post-batch
        verification pass.
        """
        try:
            return self.main.insert(rule, planned=planned).latency, True
        except TcamWriteError as error:
            return error.latency, False

    def _write_to_main(self, optimized: List[Rule], now: float = 0.0) -> Tuple[float, float, int]:
        """Step 3: write rules into the main table.

        Returns (write seconds, transient-gap seconds, writes re-issued).
        Rules whose id (or whose whole-match twin) already exists in the
        main table are refreshed via the atomic (insert-then-delete) or
        naive (delete-then-insert) protocol.

        With ``verify_writes`` every write is checked against the table
        afterwards and lost ones are re-issued — Algorithm 1's partition
        invariant rests on migrated rules actually being in the main table,
        so a silently failed write left unrepaired would leave a shadow
        resident believing its blocker moved when it never arrived.
        """
        write_time = 0.0
        gap_time = 0.0
        reissued = 0
        # (rule that must be resident afterwards, planned placement, stale
        # duplicate to delete once the write verifies).  The atomic-refresh
        # replacement carries a FRESH rule_id, so verification must track
        # the replacement object, not the original id.
        expected: List[Tuple[Rule, bool, Optional[int]]] = []
        # A planned (zero-shift) placement only exists for rules that do
        # not dominate a resident main-table entry; dominating rules must
        # physically sit above their victims and pay the online shifting
        # cost (see repro.tcam.moveplan).
        conflicted_ids = {
            rule.rule_id
            for rule in conflicts_with_resident(optimized, self.main.rules())
        }
        # Highest priority first: in the physical layout each subsequent
        # (lower-priority) rule appends below the previous ones, so the
        # batch incurs the minimum possible shifting.
        for rule in sorted(optimized, key=lambda r: -r.priority):
            planned = rule.rule_id not in conflicted_ids
            if self.main.is_full and rule.rule_id not in self.main:
                # The main table cannot absorb the rest of the batch; leave
                # the remaining rules in the shadow for a later migration.
                self._stranded.append(rule)
                continue
            duplicate_id: Optional[int] = rule.rule_id if rule.rule_id in self.main else None
            if duplicate_id is None:
                latency, _visible_ok = self._insert_main(rule, planned)
                write_time += latency
                expected.append((rule, planned, None))
                continue
            if self.atomic:
                # Incremental update: the replacement goes in first (under a
                # temporary id), the stale entry leaves second; every packet
                # matches one of the two throughout.  When the insert
                # visibly fails the stale entry is kept serving and its
                # deletion deferred until the re-issue lands — deleting
                # first would turn a failed refresh into a blackhole.
                replacement = rule.with_match(rule.match)
                insert_latency, visible_ok = self._insert_main(replacement, planned)
                write_time += insert_latency
                if visible_ok:
                    write_time += self.main.delete(duplicate_id).latency
                    expected.append((replacement, planned, None))
                else:
                    expected.append((replacement, planned, duplicate_id))
            else:
                delete_latency = self.main.delete(duplicate_id).latency
                insert_latency, _visible_ok = self._insert_main(rule, planned)
                write_time += insert_latency + delete_latency
                gap_time += insert_latency  # uncovered until re-inserted
                expected.append((rule, planned, None))
        if not self.verify_writes:
            return write_time, gap_time, reissued
        for rule, planned, stale_id in expected:
            if rule.rule_id not in self.main:
                if self.main.is_full:
                    self._stranded.append(rule)
                    continue
                latency, ok = verified_insert(self.main, rule, planned=planned)
                write_time += latency
                reissued += 1
                if self.fault_log is not None:
                    self.fault_log.record(
                        "migration-reissue", time=now, target=self.main.name,
                        rule_id=rule.rule_id, recovered=ok,
                    )
                if not ok:
                    # Persistent failure: if a stale twin still serves, the
                    # logical rule stays covered; otherwise strand it back
                    # to the shadow so it is not silently lost.
                    if stale_id is None or stale_id not in self.main:
                        self._stranded.append(rule)
                    continue
            if stale_id is not None and stale_id in self.main:
                write_time += self.main.delete(stale_id).latency
        return write_time, gap_time, reissued
