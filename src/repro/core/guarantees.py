"""Guarantee math: shadow sizing, overheads, and Equations 1 & 2.

A guarantee of *g* seconds bounds the shadow table's capacity: the shadow may
hold at most as many rules as keep the worst-case insertion latency within
*g* (the insertion time is monotone in occupancy, Section 2.1).  The TCAM
space overhead (Figure 14) is the ratio of that shadow capacity to the TCAM's
physical capacity.  The sustainable insertion rate is Equation 1,
``lambda = S_ST / t_m``, degraded by the expected partition count ``r_p`` in
Equation 2, ``lambda = S_ST / (r_p * t_m)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..tcam.timing import EmpiricalTimingModel


@dataclass(frozen=True)
class GuaranteeSpec:
    """An operator-requested performance guarantee.

    Attributes:
        insertion_latency: upper bound, in seconds, on the time any single
            guaranteed rule insertion may take (the paper's headline
            configuration is 5 ms).
    """

    insertion_latency: float

    def __post_init__(self) -> None:
        if self.insertion_latency <= 0:
            raise ValueError(
                f"guarantee must be positive, got {self.insertion_latency}"
            )

    @classmethod
    def milliseconds(cls, value: float) -> "GuaranteeSpec":
        """Build a spec from a millisecond value (``GuaranteeSpec.milliseconds(5)``)."""
        return cls(insertion_latency=value / 1e3)


def shadow_capacity_for(timing: EmpiricalTimingModel, spec: GuaranteeSpec) -> int:
    """The largest shadow-table size that honours ``spec`` on this switch.

    Raises:
        ValueError: when even a single-entry shadow cannot meet the
            guarantee on this hardware (the guarantee is infeasible).
    """
    capacity = timing.max_occupancy_for_guarantee(spec.insertion_latency)
    if capacity < 1:
        raise ValueError(
            f"{timing.name}: a {spec.insertion_latency * 1e3:.2f} ms guarantee is "
            "infeasible — even an empty-table insert exceeds the budget"
        )
    return capacity


def asic_overhead(timing: EmpiricalTimingModel, spec: GuaranteeSpec) -> float:
    """Fraction of TCAM capacity consumed by the shadow slice (Figure 14)."""
    return shadow_capacity_for(timing, spec) / timing.capacity


def max_insertion_rate(
    shadow_capacity: int,
    migration_time: float,
    expected_partitions: float = 1.0,
) -> float:
    """Equations 1 and 2: the maximum sustainable insertion arrival rate.

    Args:
        shadow_capacity: S_ST, rules the shadow table holds.
        migration_time: t_m, seconds to migrate the shadow's content to the
            main table.
        expected_partitions: r_p, mean physical fragments per logical rule
            (1.0 recovers Equation 1).

    Returns:
        lambda, rules per second.
    """
    if shadow_capacity <= 0:
        raise ValueError("shadow capacity must be positive")
    if migration_time <= 0:
        raise ValueError("migration time must be positive")
    if expected_partitions < 1.0:
        raise ValueError("expected partitions cannot be below 1")
    return shadow_capacity / (expected_partitions * migration_time)


def estimate_migration_time(
    timing: EmpiricalTimingModel,
    rules_to_move: int,
    main_occupancy: int,
    optimizer_unit_cost: float = 2e-6,
) -> float:
    """Estimate t_m: optimizer time plus main-table write time.

    The optimizer's runtime grows super-linearly in the number of rules it
    rewrites (Figure 15(b)); TCAM writes are charged at the main table's
    occupancy-dependent insert cost.  Used for admission-control sizing
    before any migration has actually been observed.
    """
    if rules_to_move < 0 or main_occupancy < 0:
        raise ValueError("rule counts cannot be negative")
    total_rules = rules_to_move + main_occupancy
    optimizer_time = optimizer_unit_cost * rules_to_move * max(1.0, total_rules**0.5)
    # Migration writes have pre-planned placements (the step-2 optimizer
    # computes them, in the spirit of RuleTris [62]), so each write costs
    # the empty-table insert latency rather than the shifting cost.
    write_time = rules_to_move * timing.base_insertion_latency(0)
    return optimizer_time + write_time
