"""Online slack auto-tuning (the Section 8.6 future-work item).

"As part of future work, we will explore learning techniques to enable
Hermes to automatically tune itself."  Figure 13 shows why: the right
slack depends on the arrival rate and the overlap rate, which operators
rarely know in advance.

:class:`SlackAutoTuner` is an AIMD controller over the Slack corrector's
inflation factor, driven by two signals Hermes already produces:

* a *pressure* event — a guarantee violation or a shadow-full diversion —
  means the forecasts under-shot: slack increases additively (fast);
* a sustained run of clean windows means slack may be wasting migrations:
  slack decays multiplicatively (slow).

The controller is deliberately conservative in the downward direction:
under-provisioned slack breaks guarantees, over-provisioned slack only
costs extra migrations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .correction import SlackCorrector


@dataclass
class AutoTuneConfig:
    """AIMD parameters for the slack controller.

    Attributes:
        initial_slack: starting inflation factor.
        min_slack / max_slack: clamp range.
        increase_step: additive bump applied on a pressure event.
        decay_factor: multiplicative shrink applied after a clean streak.
        clean_windows_before_decay: consecutive pressure-free windows
            required before any decay.
    """

    initial_slack: float = 0.4
    min_slack: float = 0.0
    max_slack: float = 3.0
    increase_step: float = 0.25
    decay_factor: float = 0.95
    clean_windows_before_decay: int = 20

    def __post_init__(self) -> None:
        if not 0.0 <= self.min_slack <= self.initial_slack <= self.max_slack:
            raise ValueError(
                "need min_slack <= initial_slack <= max_slack, got "
                f"{self.min_slack} / {self.initial_slack} / {self.max_slack}"
            )
        if self.increase_step <= 0:
            raise ValueError("increase_step must be positive")
        if not 0.0 < self.decay_factor < 1.0:
            raise ValueError("decay_factor must be in (0, 1)")
        if self.clean_windows_before_decay < 1:
            raise ValueError("clean_windows_before_decay must be >= 1")


class SlackAutoTuner:
    """AIMD controller mutating a :class:`SlackCorrector` in place."""

    def __init__(
        self,
        corrector: SlackCorrector,
        config: AutoTuneConfig = AutoTuneConfig(),
    ) -> None:
        self.corrector = corrector
        self.config = config
        self.corrector.slack = config.initial_slack
        self._clean_streak = 0
        self.adjustments: List[float] = [config.initial_slack]

    @property
    def slack(self) -> float:
        """The current inflation factor."""
        return self.corrector.slack

    def observe_window(self, pressure_events: int) -> float:
        """Fold one observation window into the controller.

        Args:
            pressure_events: violations plus shadow-full diversions seen
                since the previous window.

        Returns:
            The (possibly adjusted) slack now in force.
        """
        if pressure_events < 0:
            raise ValueError("pressure_events cannot be negative")
        if pressure_events > 0:
            self._clean_streak = 0
            new_slack = min(
                self.config.max_slack,
                self.corrector.slack + self.config.increase_step * pressure_events,
            )
        else:
            self._clean_streak += 1
            if self._clean_streak >= self.config.clean_windows_before_decay:
                self._clean_streak = 0
                new_slack = max(
                    self.config.min_slack,
                    self.corrector.slack * self.config.decay_factor,
                )
            else:
                new_slack = self.corrector.slack
        if new_slack != self.corrector.slack:
            self.corrector.slack = new_slack
            self.adjustments.append(new_slack)
        return self.corrector.slack
