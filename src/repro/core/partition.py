"""Rule partitioning — Algorithm 1 of the paper, plus its bookkeeping.

Hermes inserts new rules into the shadow table, which packets probe *before*
the main table.  A new low-priority rule that overlaps a higher-priority rule
resident in the main table would therefore steal that rule's packets — the
correctness violation of Figure 4(b).  Algorithm 1 repairs this at insertion
time:

1. collect every main-table rule with higher priority that overlaps the new
   rule (``DetectOverlap``);
2. if one of them wholly subsumes the new rule, the new rule is dead — it
   could never match in a monolithic table — and is ignored (Figure 5(a));
3. otherwise iteratively *cut* the new rule's match so the overlap regions
   are excised (``EliminateOverlap``, Figure 5(b)/(c));
4. *merge* the fragments into the minimal equivalent rule set before
   inserting them into the shadow table.

The :class:`PartitionMap` records which fragments belong to which logical
rule and which main-table rules forced the cuts, so that deletions can
un-partition correctly (Figure 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set

from ..tcam.prefix import merge_prefixes
from ..tcam.rule import Rule
from ..tcam.ternary import TernaryMatch


@dataclass(frozen=True)
class PartitionOutcome:
    """Result of partitioning one new rule against the main table.

    Attributes:
        fragments: rules to physically insert into the shadow table.  When no
            overlap existed this is the original rule itself, unchanged.
        subsumed: True when a higher-priority main-table rule wholly covers
            the new rule — it must be ignored, not installed (Figure 5(a)).
        blockers: rule_ids of the main-table rules that forced cuts.
        cuts: number of EliminateOverlap invocations performed.
    """

    fragments: List[Rule]
    subsumed: bool = False
    blockers: frozenset = frozenset()
    cuts: int = 0

    @property
    def was_partitioned(self) -> bool:
        """True when the rule had to be fragmented (or fully subsumed)."""
        return self.subsumed or self.cuts > 0


def detect_overlaps(new_rule: Rule, main_rules: Iterable[Rule]) -> List[Rule]:
    """``DetectOverlap`` of Algorithm 1: higher-priority overlapping rules.

    Only *strictly higher* priority main rules threaten correctness: if the
    new rule's priority is greater than or equal to a main rule's, the shadow
    table answering first is exactly what a monolithic table would do.
    """
    return [
        resident
        for resident in main_rules
        if resident.priority > new_rule.priority and resident.overlaps(new_rule)
    ]


def eliminate_overlap(
    matches: Sequence[TernaryMatch], blocker: TernaryMatch
) -> List[TernaryMatch]:
    """``EliminateOverlap``: cut ``blocker``'s region out of every match."""
    survivors: List[TernaryMatch] = []
    for match in matches:
        survivors.extend(match.subtract(blocker))
    return survivors


def merge_matches(matches: Sequence[TernaryMatch]) -> List[TernaryMatch]:
    """``Merge``: minimize the fragment count (optimal for prefix sets).

    Prefix-shaped fragments are merged with the optimal sibling-coalescing
    algorithm; general ternary fragments are deduplicated and
    containment-pruned (a fragment inside another is redundant because all
    fragments share one action and priority).
    """
    if not matches:
        return []
    if all(match.is_prefix for match in matches):
        merged = merge_prefixes([match.to_prefix() for match in matches])
        return [TernaryMatch.from_prefix(prefix) for prefix in merged]
    unique = list(dict.fromkeys(matches))
    kept: List[TernaryMatch] = []
    for match in unique:
        if any(other.contains(match) for other in unique if other != match):
            continue
        kept.append(match)
    return kept


def partition_new_rule(new_rule: Rule, main_rules: Iterable[Rule]) -> PartitionOutcome:
    """Algorithm 1: partition ``new_rule`` against the main table's rules.

    Returns the fragments to install in the shadow table (with fresh ids and
    ``origin_id`` pointing at ``new_rule``), or a ``subsumed`` outcome when
    the rule is dead on arrival.
    """
    overlapping = detect_overlaps(new_rule, main_rules)
    if not overlapping:
        return PartitionOutcome(fragments=[new_rule])
    for blocker in overlapping:
        if blocker.match.contains(new_rule.match):
            # Figure 5(a): wholly subsumed by a higher-priority rule; in a
            # monolithic table this rule would never match a packet.
            return PartitionOutcome(
                fragments=[],
                subsumed=True,
                blockers=frozenset(r.rule_id for r in overlapping),
            )
    fragments: List[TernaryMatch] = [new_rule.match]
    cuts = 0
    for blocker in overlapping:
        fragments = eliminate_overlap(fragments, blocker.match)
        cuts += 1
        if not fragments:
            # Joint coverage by several blockers subsumes the rule even
            # though no single blocker did.
            return PartitionOutcome(
                fragments=[],
                subsumed=True,
                blockers=frozenset(r.rule_id for r in overlapping),
                cuts=cuts,
            )
    merged = merge_matches(fragments)
    return PartitionOutcome(
        fragments=[new_rule.with_match(match) for match in merged],
        blockers=frozenset(r.rule_id for r in overlapping),
        cuts=cuts,
    )


class PartitionMap:
    """The mapping set *M* of Algorithm 1.

    Tracks, for every partitioned logical rule: the original :class:`Rule`,
    the ids of its live fragments, and the main-table *blocker* rules whose
    presence forced the cuts.  Deleting a blocker from the main table
    consults this map to un-partition the affected rules (Figure 6).
    """

    def __init__(self) -> None:
        self._originals: Dict[int, Rule] = {}
        self._fragments: Dict[int, Set[int]] = {}
        self._blocked_by: Dict[int, Set[int]] = {}  # origin_id -> blocker ids
        self._blocks: Dict[int, Set[int]] = {}  # blocker id -> origin ids

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, original: Rule, outcome: PartitionOutcome) -> None:
        """Record a partitioned (or subsumed) insertion."""
        if not outcome.was_partitioned:
            return
        origin_id = original.rule_id
        self._originals[origin_id] = original
        self._fragments[origin_id] = {
            fragment.rule_id for fragment in outcome.fragments
        }
        self._blocked_by[origin_id] = set(outcome.blockers)
        for blocker_id in outcome.blockers:
            self._blocks.setdefault(blocker_id, set()).add(origin_id)

    def forget(self, origin_id: int) -> None:
        """Drop all state for a logical rule (it was deleted)."""
        self._originals.pop(origin_id, None)
        self._fragments.pop(origin_id, None)
        for blocker_id in self._blocked_by.pop(origin_id, set()):
            blocked = self._blocks.get(blocker_id)
            if blocked is not None:
                blocked.discard(origin_id)
                if not blocked:
                    del self._blocks[blocker_id]

    def origins_blocked_by(self, blocker_id: int) -> List[int]:
        """Ids of the logical rules this main-table rule forced cuts on."""
        return sorted(self._blocks.get(blocker_id, set()))

    def forget_blocker(self, blocker_id: int) -> List[Rule]:
        """A main-table rule was deleted: return the originals to restore.

        Clears the affected originals from the map (the caller re-inserts
        them from scratch, re-partitioning against the post-delete main
        table).
        """
        origin_ids = sorted(self._blocks.pop(blocker_id, set()))
        restored: List[Rule] = []
        for origin_id in origin_ids:
            original = self._originals.get(origin_id)
            if original is not None:
                restored.append(original)
            self.forget(origin_id)
        return restored

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_partitioned(self, origin_id: int) -> bool:
        """True when the logical rule currently lives as fragments."""
        return origin_id in self._originals

    def original(self, origin_id: int) -> Optional[Rule]:
        """The logical rule recorded for this id, if partitioned."""
        return self._originals.get(origin_id)

    def fragment_ids(self, origin_id: int) -> Set[int]:
        """Ids of the physical fragments of a logical rule."""
        return set(self._fragments.get(origin_id, set()))

    def replace_fragments(self, origin_id: int, fragment_ids: Iterable[int]) -> None:
        """Update a logical rule's live fragment set (after migration)."""
        if origin_id in self._originals:
            self._fragments[origin_id] = set(fragment_ids)

    def update_original(self, origin_id: int, updated: Rule) -> None:
        """Replace the stored logical rule (e.g. after an action rewrite).

        Fragment and blocker bookkeeping is preserved; only the original
        rule object changes.

        Raises:
            KeyError: when the id is not a tracked partitioned rule.
        """
        if origin_id not in self._originals:
            raise KeyError(f"rule #{origin_id} is not partitioned")
        self._originals[origin_id] = updated

    def tracked_originals(self) -> List[Rule]:
        """All logical rules currently represented by fragments."""
        return list(self._originals.values())

    def expected_partitions(self) -> float:
        """Mean fragments per partitioned rule — the r_p of Equation 2."""
        if not self._fragments:
            return 1.0
        total = sum(len(ids) for ids in self._fragments.values())
        return max(1.0, total / len(self._fragments))

    def __len__(self) -> int:
        return len(self._originals)
