"""The Hermes agent: a :class:`RuleInstaller` with performance guarantees.

This is the system of the paper.  A logical TCAM table is realized as two
physical slices — a small *shadow* table absorbing all guaranteed insertions
and a large *main* table — plus the machinery keeping the pair correct and
the shadow empty:

* the **Gate Keeper** routes each insertion (guaranteed path vs best-effort
  main-table path) and enforces the admitted rate with a token bucket;
* **Algorithm 1** partitions shadow-bound rules against higher-priority
  main-table residents so the two tables behave exactly like one;
* the **Rule Manager** predictively migrates rules out of the shadow before
  it fills (Section 5), using the configured predictor and corrector.

Use :func:`repro.core.api.CreateTCAMQoS` for the paper's operator-facing
interface, or construct :class:`HermesInstaller` directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..engine.clock import Clock
from ..faults.table import FaultyTable, verified_insert
from ..obs.tracer import get_tracer
from ..switchsim.installer import RuleInstaller
from ..switchsim.messages import FlowMod, FlowModCommand, FlowModResult
from ..tcam.rule import Rule
from ..tcam.slices import CarvedTcam, SliceConfig
from ..tcam.table import TcamTable
from ..tcam.timing import EmpiricalTimingModel
from ..tcam.trie import PrefixRuleIndex


class _IndexSync:
    """Table listener mirroring main-table changes into the overlap index."""

    def __init__(self, index: PrefixRuleIndex) -> None:
        self._index = index

    def rule_installed(self, rule: Rule) -> None:
        self._index.add(rule)

    def rule_removed(self, rule: Rule) -> None:
        self._index.discard(rule.rule_id)

    def rule_modified(self, old: Rule, new: Rule) -> None:
        self._index.discard(old.rule_id)
        self._index.add(new)
from .correction import Corrector, DeadzoneCorrector, SlackCorrector, make_corrector
from .gatekeeper import GateKeeper, MatchPredicate, TokenBucket, match_all
from .guarantees import (
    GuaranteeSpec,
    estimate_migration_time,
    max_insertion_rate,
    shadow_capacity_for,
)
from .partition import PartitionMap, partition_new_rule
from .prediction import Predictor, make_predictor
from .rule_manager import (
    MigrationTrigger,
    PredictiveTrigger,
    RuleManager,
    ThresholdTrigger,
)


@dataclass
class HermesConfig:
    """Tunables of a Hermes deployment (paper defaults preconfigured).

    Attributes:
        guarantee: the per-insertion latency bound to enforce (5 ms default,
            the paper's headline configuration).
        predictor: ``"cubic-spline"`` (default), ``"ewma"``, or ``"arma"``.
        corrector: ``"slack"`` (default), ``"deadzone"``, or ``"none"``.
        slack: Slack corrector inflation fraction; the paper's default is
            100% (Section 8.6).
        deadzone_margin: Deadzone corrector headroom in rules.
        epoch: prediction/migration decision interval in seconds.
        threshold: fill fraction for Hermes-SIMPLE; None selects the
            predictive trigger (regular Hermes).
        lowest_priority_fastpath: Section 4.2 optimization toggle.
        admission_control: enable the Gate Keeper's token bucket.
        atomic_migration: insert-before-delete migration consistency.
        optimize_migration: enable the step-2 rule minimizer.
        shadow_capacity: explicit shadow size; None derives it from the
            guarantee and the switch's timing model.
        verify_migrations: have the Rule Manager replay each migration's
            placement plan through the moveplan verifier before writing
            it; findings land in ``rule_manager.migration_violations``.
        partition_latency_budget: modelled software cost, per main-table
            rule examined, of Algorithm 1's overlap scan (Fig 15(b) shows
            the insertion-side algorithms are cheap; this keeps them so).
        degraded_window: how long (seconds) Hermes stays degraded after the
            control channel's circuit breaker opens — guaranteed rules
            demote to best-effort for this window rather than pretending
            the guarantee still holds.
    """

    guarantee: GuaranteeSpec = field(default_factory=lambda: GuaranteeSpec.milliseconds(5))
    predictor: str = "cubic-spline"
    corrector: str = "slack"
    slack: float = 1.0
    deadzone_margin: float = 100.0
    epoch: float = 0.05
    threshold: Optional[float] = None
    lowest_priority_fastpath: bool = True
    admission_control: bool = True
    atomic_migration: bool = True
    optimize_migration: bool = True
    shadow_capacity: Optional[int] = None
    verify_migrations: bool = False
    partition_latency_budget: float = 2e-7
    auto_tune: bool = False
    degraded_window: float = 1.0

    def build_corrector(self) -> Corrector:
        """Instantiate the configured corrector."""
        if self.corrector == "slack":
            return SlackCorrector(self.slack)
        if self.corrector == "deadzone":
            return DeadzoneCorrector(self.deadzone_margin)
        return make_corrector(self.corrector)

    def build_predictor(self) -> Predictor:
        """Instantiate the configured predictor."""
        return make_predictor(self.predictor)

    def build_trigger(self) -> MigrationTrigger:
        """Instantiate the migration trigger (predictive or threshold)."""
        if self.threshold is not None:
            return ThresholdTrigger(self.threshold)
        return PredictiveTrigger(self.build_predictor(), self.build_corrector())


class HermesInstaller(RuleInstaller):
    """Hermes running against one logical TCAM table.

    Implements :class:`RuleInstaller`, so it slots anywhere the naive
    installer or the baselines do — in particular under
    :class:`~repro.switchsim.agent.SwitchAgent` and the Varys simulator.
    """

    def __init__(
        self,
        timing: EmpiricalTimingModel,
        config: Optional[HermesConfig] = None,
        predicate: MatchPredicate = match_all,
        rng: Optional[np.random.Generator] = None,
        injector=None,
    ) -> None:
        """Carve the switch's TCAM and assemble the Hermes components.

        Args:
            timing: the switch's empirical TCAM timing model.
            config: Hermes tunables; defaults to the paper's configuration.
            predicate: selects which rules receive guarantees.
            rng: optional generator enabling latency noise.
            injector: optional :class:`~repro.faults.injector.FaultInjector`.
                When given, slice writes go through fault-wrapped tables,
                every insert is verified against the fault log and
                re-issued on loss, and the Rule Manager verifies its
                migrations (the partition invariant survives silent write
                failures).  None keeps the fault-free hot path untouched.

        Raises:
            ValueError: when the requested guarantee is infeasible on this
                switch (see :func:`shadow_capacity_for`).
        """
        self.timing = timing
        self.config = config if config is not None else HermesConfig()
        self.injector = injector
        self._clock = Clock()
        self._degraded_until: Optional[float] = None
        shadow_capacity = (
            self.config.shadow_capacity
            if self.config.shadow_capacity is not None
            else shadow_capacity_for(timing, self.config.guarantee)
        )
        if shadow_capacity >= timing.capacity:
            raise ValueError(
                f"shadow capacity {shadow_capacity} leaves no room for the "
                f"main table on {timing.name} (capacity {timing.capacity})"
            )
        self.tcam = CarvedTcam(
            timing,
            [
                SliceConfig("shadow", shadow_capacity, lookup_priority=10),
                SliceConfig(
                    "main", timing.capacity - shadow_capacity, lookup_priority=1
                ),
            ],
            rng=rng,
        )
        # The tables every Hermes component writes through.  With an
        # injector they are fault-wrapped proxies over the carved slices
        # (recarve mutates the slice in place, so the wrappers stay valid
        # across reconfiguration); without one they are the slices
        # themselves and no fault machinery touches the hot path.
        if injector is not None:
            clock = lambda: self._now  # noqa: E731
            self._shadow_table = FaultyTable(
                self.tcam.slice("shadow"), injector, clock=clock
            )
            self._main_table = FaultyTable(
                self.tcam.slice("main"), injector, clock=clock
            )
        else:
            self._shadow_table = self.tcam.slice("shadow")
            self._main_table = self.tcam.slice("main")
        self.partition_map = PartitionMap()
        # Overlap index over the main table, kept in lock-step through the
        # table's change notifications: Algorithm 1's DetectOverlap runs in
        # O(32 + matches) instead of scanning the whole table (the reason
        # Fig 15's insertion-side cost stays flat).
        self._main_index = PrefixRuleIndex()
        self.main.add_listener(_IndexSync(self._main_index))
        self.rule_manager = RuleManager(
            shadow=self.shadow,
            main=self.main,
            partition_map=self.partition_map,
            trigger=self.config.build_trigger(),
            epoch=self.config.epoch,
            optimize=self.config.optimize_migration,
            atomic=self.config.atomic_migration,
            verify_writes=injector is not None,
            verify_migrations=self.config.verify_migrations,
            fault_log=injector.log if injector is not None else None,
        )
        bucket = None
        if self.config.admission_control:
            bucket = TokenBucket(rate=self.supported_rate(), burst=shadow_capacity)
        self.gate_keeper = GateKeeper(
            predicate=predicate,
            bucket=bucket,
            lowest_priority_fastpath=self.config.lowest_priority_fastpath,
        )
        self.violations = 0
        self.near_violations = 0
        self.guaranteed_inserts = 0
        self.degraded_inserts = 0
        self.auto_tuner = None
        if self.config.auto_tune:
            trigger = self.rule_manager.trigger
            corrector = getattr(trigger, "corrector", None)
            if not isinstance(corrector, SlackCorrector):
                raise ValueError(
                    "auto_tune requires the 'slack' corrector with the "
                    "predictive trigger"
                )
            from .autotune import SlackAutoTuner

            self.auto_tuner = SlackAutoTuner(corrector)
            self._pressure_snapshot = 0
            self._last_tune_time = 0.0

    # ------------------------------------------------------------------
    # Derived properties
    # ------------------------------------------------------------------
    @property
    def _now(self) -> float:
        """The installer's virtual-time high-water mark (kernel clock)."""
        return self._clock.now

    @property
    def shadow(self) -> TcamTable:
        """The small guaranteed-insertion slice (fault-wrapped if injecting)."""
        return self._shadow_table

    @property
    def main(self) -> TcamTable:
        """The large best-effort slice (fault-wrapped if injecting)."""
        return self._main_table

    def _table(self, slice_name: str) -> TcamTable:
        """The write path for a slice located via ``tcam.find_rule``."""
        return self._shadow_table if slice_name == "shadow" else self._main_table

    # ------------------------------------------------------------------
    # Degraded mode
    # ------------------------------------------------------------------
    def enter_degraded(self, now: float, duration: Optional[float] = None) -> None:
        """Suspend guarantees for ``duration`` seconds (default: the
        configured ``degraded_window``).

        Wired to the resilient channel's ``on_breaker_open`` callback: when
        the switch stops acking, pretending the shadow path still meets its
        latency bound would be a lie — new guarantee-eligible rules demote
        to best-effort instead, with the honest ``"degraded"`` reason.
        """
        window = duration if duration is not None else self.config.degraded_window
        until = now + window
        if self._degraded_until is None or until > self._degraded_until:
            self._degraded_until = until
        if self.injector is not None:
            self.injector.log.record("degraded-enter", time=now, until=until)

    def is_degraded(self, now: float) -> bool:
        """True while guarantees are suspended."""
        if self._degraded_until is None:
            return False
        if now >= self._degraded_until:
            self._degraded_until = None
            return False
        return True

    def supported_rate(self) -> float:
        """Equation 2: the insertion rate Hermes commits to supporting."""
        shadow_capacity = self.shadow.capacity
        migration_time = estimate_migration_time(
            self.timing,
            rules_to_move=shadow_capacity,
            main_occupancy=min(self.main.capacity // 2, self.main.occupancy + 256),
        )
        return max_insertion_rate(
            shadow_capacity,
            migration_time,
            expected_partitions=self.partition_map.expected_partitions(),
        )

    def reconfigure_guarantee(self, spec: GuaranteeSpec) -> None:
        """Re-size the shadow slice for a new guarantee (ModQoSConfig).

        The shadow is first drained into the main table, then re-carved to
        the size the new guarantee allows; the admission bucket is rebuilt
        for the new sustainable rate.

        Raises:
            ValueError: when the new guarantee is infeasible on this switch.
        """
        new_capacity = shadow_capacity_for(self.timing, spec)
        if new_capacity >= self.timing.capacity:
            raise ValueError("guarantee leaves no room for the main table")
        self.rule_manager.migrate(self._now)
        if new_capacity <= self.shadow.capacity:
            # Shrink the shadow before growing the main slice so the carve
            # never transiently exceeds the physical capacity.
            self.tcam.recarve("shadow", new_capacity)
            self.tcam.recarve("main", self.timing.capacity - new_capacity)
        else:
            self.tcam.recarve("main", self.timing.capacity - new_capacity)
            self.tcam.recarve("shadow", new_capacity)
        self.config.guarantee = spec
        if self.config.admission_control:
            self.gate_keeper.bucket = TokenBucket(
                rate=self.supported_rate(), burst=new_capacity
            )

    def set_predicate(self, predicate: MatchPredicate) -> None:
        """Swap the guarantee-selection predicate (ModQoSMatch)."""
        self.gate_keeper.predicate = predicate

    def violation_rate(self) -> float:
        """Fraction of guaranteed-path inserts that broke the guarantee."""
        if self.guaranteed_inserts == 0:
            return 0.0
        return self.violations / self.guaranteed_inserts

    def violation_percentage(self) -> float:
        """Percentage of guarantee-*eligible* inserts Hermes failed to honour.

        Counts both guaranteed-path inserts that exceeded the latency bound
        and eligible inserts forced onto the best-effort path because the
        shadow was full or the bucket empty (the Fig 12(a) metric).
        """
        counts = self.gate_keeper.reason_counts
        diverted = counts.get("shadow-full", 0) + counts.get("rate-limited", 0)
        eligible = self.guaranteed_inserts + diverted
        if eligible == 0:
            return 0.0
        return 100.0 * (self.violations + diverted) / eligible

    # ------------------------------------------------------------------
    # RuleInstaller interface
    # ------------------------------------------------------------------
    def advance_time(self, now: float) -> float:
        """Drive the Rule Manager's clock; returns background seconds used."""
        self._clock.advance_to(max(self._clock.now, now))
        background = self.rule_manager.tick(self._now)
        if self.auto_tuner is not None:
            window = 4 * self.rule_manager.epoch
            if self._now - self._last_tune_time >= window:
                self._last_tune_time = self._now
                pressure = (
                    self.violations
                    + self.near_violations
                    + self.gate_keeper.reason_counts.get("shadow-full", 0)
                    + getattr(self.rule_manager.trigger, "watermark_fires", 0)
                )
                self.auto_tuner.observe_window(pressure - self._pressure_snapshot)
                self._pressure_snapshot = pressure
        return background

    def apply(self, flow_mod: FlowMod) -> FlowModResult:
        """Apply one control-plane action through Hermes."""
        if flow_mod.command is FlowModCommand.ADD:
            return self._apply_add(flow_mod.rule)
        if flow_mod.command is FlowModCommand.DELETE:
            return self._apply_delete(flow_mod.rule_id)
        return self._apply_modify(flow_mod)

    def lookup(self, key: int) -> Optional[Rule]:
        """Sequential lookup: shadow first, then main (Section 3)."""
        hit = self.shadow.lookup(key)
        if hit is not None:
            return hit
        return self.main.lookup(key)

    def occupancy(self) -> int:
        """Rules physically installed across both slices."""
        return self.tcam.total_occupancy

    def tables(self):
        """Both physical slices, for the ruleset verifier.

        Exposes the same tables the data plane probes, in probe order —
        independent of the partition map, so a verifier consuming this
        seam checks what the hardware would actually do.
        """
        return {"shadow": self.shadow.rules(), "main": self.main.rules()}

    def shift_count(self) -> int:
        """Cumulative entry shifts across both slices."""
        return self.shadow.stats.total_shifts + self.main.stats.total_shifts

    def gauges(self):
        """Shadow/main occupancy and the admission bucket's token level."""
        readings = {
            "shadow.occupancy": float(self.shadow.occupancy),
            "main.occupancy": float(self.main.occupancy),
        }
        bucket = self.gate_keeper.bucket
        if bucket is not None:
            readings["bucket.tokens"] = float(bucket.tokens)
        return readings

    def verify(self, reference=None, include_warnings: bool = False):
        """Run the ruleset verifier against the live pair.

        Convenience wrapper over
        :func:`repro.analysis.verifier.verify_partition`; returns the
        violations found (empty list = the pair provably behaves like one
        priority-ordered table).
        """
        from ..analysis.verifier import verify_partition

        return verify_partition(
            self.shadow,
            self.main,
            reference=reference,
            include_warnings=include_warnings,
        )

    def prefill(self, rules) -> None:
        """Background rules belong in the main table from the start.

        This is where the Rule Manager would have migrated them anyway;
        installing them directly avoids polluting violation statistics with
        warm-up traffic.  Prefill writes the raw slice: faults model the
        measured run, not the preexisting table state.
        """
        for rule in rules:
            self.tcam.slice("main").insert(rule)

    # ------------------------------------------------------------------
    # ADD
    # ------------------------------------------------------------------
    def _apply_add(self, rule: Rule) -> FlowModResult:
        # The Section 4.2 fastpath sends bottom-priority rules straight to
        # the main table because appends are cheap — but "cheap" still
        # grows with occupancy, so only offer the fastpath while a main
        # append fits the guarantee.
        append_cost = self.timing.insertion_latency(self.main.occupancy, shifts=0)
        fastpath_safe = append_cost <= self.config.guarantee.insertion_latency
        decision = self.gate_keeper.decide(
            rule,
            self._now,
            shadow_has_room=not self.shadow.is_full,
            main_lowest_priority=(
                self.main.lowest_priority if fastpath_safe else None
            ),
            degraded=self.is_degraded(self._now),
        )
        if decision.reason == "degraded":
            self.degraded_inserts += 1
        tracer = get_tracer()
        if not decision.use_shadow:
            if tracer.enabled:
                # Diverted inserts skip Algorithm 1: no partition cost.
                tracer.event(
                    "hermes.gatekeeper",
                    time=self._now,
                    category="hermes",
                    reason=decision.reason,
                    use_shadow=False,
                    latency=0.0,
                )
            # Diverted inserts are still offered load: the predictor must
            # see them or a full shadow looks like a quiet workload.
            self.rule_manager.note_arrival(1)
            result_latency = self._insert_resilient(self.main, rule)
            # A higher-priority rule landing in the main table can newly
            # dominate lower-priority rules resident in the shadow — the
            # mirror image of the Figure 4 hazard.  Re-partition those
            # shadow rules against the updated main table.
            repartition_latency = self._repartition_shadow_against(rule)
            return FlowModResult(
                latency=result_latency + repartition_latency,
                installed_rule_ids=(rule.rule_id,),
                used_guaranteed_path=False,
            )
        blockers = self._main_index.blockers_for(rule)
        outcome = partition_new_rule(rule, blockers)
        latency = self.config.partition_latency_budget * max(
            32, 4 * len(blockers)
        )
        if tracer.enabled:
            # ``latency`` at this point is pure GateKeeper + Algorithm 1
            # cost; the TCAM writes below add on top of it.
            tracer.event(
                "hermes.gatekeeper",
                time=self._now,
                category="hermes",
                reason=decision.reason,
                use_shadow=True,
                latency=latency,
                blockers=len(blockers),
                fragments=len(outcome.fragments),
            )
        installed: List[int] = []
        for fragment in outcome.fragments:
            if self.shadow.is_full:
                # Defensive overflow path: the remainder of an oversized
                # fragment family lands in the main table (best effort).
                latency += self._insert_resilient(self.main, fragment)
            else:
                latency += self._insert_resilient(self.shadow, fragment)
            installed.append(fragment.rule_id)
        if outcome.was_partitioned:
            self.partition_map.record(rule, outcome)
        self.rule_manager.note_arrival(max(1, len(outcome.fragments)))
        self.guaranteed_inserts += 1
        if latency > self.config.guarantee.insertion_latency:
            self.violations += 1
        elif latency > 0.5 * self.config.guarantee.insertion_latency:
            # Near-misses: no violation, but the auto-tuner treats a
            # latency this close to the bound as provisioning pressure.
            self.near_violations += 1
        return FlowModResult(
            latency=latency,
            installed_rule_ids=tuple(installed),
            used_guaranteed_path=True,
        )

    # ------------------------------------------------------------------
    # DELETE
    # ------------------------------------------------------------------
    def _apply_delete(self, rule_id: int) -> FlowModResult:
        latency = 0.0
        if self.partition_map.is_partitioned(rule_id):
            # The logical rule lives as fragments (possibly zero, when it
            # was subsumed on arrival): delete every live fragment.
            for fragment_id in self.partition_map.fragment_ids(rule_id):
                latency += self._delete_physical(fragment_id)
            self.partition_map.forget(rule_id)
            return FlowModResult(latency=latency)
        if self.tcam.find_rule(rule_id) is None:
            raise KeyError(f"Hermes: no rule #{rule_id} installed")
        latency += self._delete_physical(rule_id)
        return FlowModResult(latency=latency)

    def _delete_physical(self, rule_id: int) -> float:
        """Remove one physical entry, restoring any rules it blocked.

        Figure 6: deleting a main-table rule un-partitions the shadow rules
        it had forced cuts on — their fragments are removed and the
        originals re-inserted (re-partitioned against what is left).  This
        applies to *every* main-table removal, including fragments that
        migrated into the main table and later act as blockers themselves.
        """
        located = self.tcam.find_rule(rule_id)
        if located is None:
            return 0.0
        slice_name, _rule = located
        latency = self._table(slice_name).delete(rule_id).latency
        if slice_name == "main":
            # Figure 6's un-partition is delete-the-fragments *and*
            # add-back-the-original; the stale fragments must go first or
            # they linger as untracked duplicates.
            for origin_id in self.partition_map.origins_blocked_by(rule_id):
                for fragment_id in self.partition_map.fragment_ids(origin_id):
                    latency += self._delete_physical(fragment_id)
            for original in self.partition_map.forget_blocker(rule_id):
                latency += self._reinstall_original(original)
        return latency

    def _repartition_shadow_against(self, new_main_rule: Rule) -> float:
        """Re-cut shadow rules newly dominated by a main-table arrival.

        For every logical rule whose shadow presence the new main rule now
        shadows (overlap + strictly lower priority), the whole fragment
        family is lifted out of the shadow and re-partitioned against the
        updated main table, exactly as if it were arriving fresh.
        """
        latency = 0.0
        dominated_origins = []
        for resident in self.shadow.rules():
            if new_main_rule.priority > resident.priority and new_main_rule.overlaps(
                resident
            ):
                origin = (
                    resident.origin_id
                    if resident.origin_id is not None
                    else resident.rule_id
                )
                if origin not in dominated_origins:
                    dominated_origins.append(origin)
        for origin_id in dominated_origins:
            if self.partition_map.is_partitioned(origin_id):
                original = self.partition_map.original(origin_id)
                for fragment_id in self.partition_map.fragment_ids(origin_id):
                    latency += self._delete_physical(fragment_id)
                self.partition_map.forget(origin_id)
            else:
                original = self.shadow.get(origin_id)
                latency += self.shadow.delete(origin_id).latency
            latency += self._reinstall_original(original)
        return latency

    def _reinstall_original(self, original: Rule) -> float:
        latency = 0.0
        outcome = partition_new_rule(
            original, self._main_index.blockers_for(original)
        )
        for fragment in outcome.fragments:
            table = self.main if self.shadow.is_full else self.shadow
            latency += self._insert_resilient(table, fragment)
        if outcome.was_partitioned:
            self.partition_map.record(original, outcome)
        return latency

    def _insert_resilient(self, table, rule: Rule) -> float:
        """Insert, surviving injected write faults.

        Fault-free installs (no injector) are a plain ``insert`` — byte
        identical to the seed.  Under injection the write is verified and
        re-issued; an install that stays lost after the retry budget is
        recorded in the fault log so experiments can count it.
        """
        if self.injector is None:
            return table.insert(rule).latency
        latency, ok = verified_insert(table, rule)
        if not ok:
            self.injector.log.record(
                "install-lost",
                time=self._now,
                target=table.name,
                rule_id=rule.rule_id,
            )
        return latency

    # ------------------------------------------------------------------
    # MODIFY
    # ------------------------------------------------------------------
    def _apply_modify(self, flow_mod: FlowMod) -> FlowModResult:
        rule_id = flow_mod.rule_id
        original = self._logical_rule(rule_id)
        if original is None:
            raise KeyError(f"Hermes: no rule #{rule_id} installed")
        if flow_mod.new_priority is None and flow_mod.new_match is None:
            # Action-only modification: constant-time in-place rewrites of
            # every physical entry of the logical rule (Section 2.1.1).
            latency = 0.0
            for slice_name, physical_id in self._physical_entries(rule_id):
                latency += (
                    self._table(slice_name)
                    .modify(physical_id, action=flow_mod.new_action)
                    .latency
                )
            if self.partition_map.is_partitioned(rule_id):
                refreshed = Rule(
                    match=original.match,
                    priority=original.priority,
                    action=flow_mod.new_action,
                    rule_id=original.rule_id,
                    origin_id=original.origin_id,
                )
                self.partition_map.update_original(rule_id, refreshed)
            return FlowModResult(latency=latency, installed_rule_ids=(rule_id,))
        # Match or priority changes reposition TCAM entries: the paper
        # converts them into delete + insert (Section 4.1).
        replacement = Rule(
            match=(
                flow_mod.new_match if flow_mod.new_match is not None else original.match
            ),
            priority=(
                flow_mod.new_priority
                if flow_mod.new_priority is not None
                else original.priority
            ),
            action=(
                flow_mod.new_action
                if flow_mod.new_action is not None
                else original.action
            ),
            rule_id=original.rule_id,
            origin_id=original.origin_id,
        )
        delete_result = self._apply_delete(rule_id)
        add_result = self._apply_add(replacement)
        return FlowModResult(
            latency=delete_result.latency + add_result.latency,
            installed_rule_ids=add_result.installed_rule_ids,
            used_guaranteed_path=add_result.used_guaranteed_path,
        )

    def _logical_rule(self, rule_id: int) -> Optional[Rule]:
        if self.partition_map.is_partitioned(rule_id):
            return self.partition_map.original(rule_id)
        located = self.tcam.find_rule(rule_id)
        return located[1] if located is not None else None

    def _physical_entries(self, rule_id: int):
        """Yield (slice_name, physical_rule_id) for one logical rule."""
        if self.partition_map.is_partitioned(rule_id):
            for fragment_id in self.partition_map.fragment_ids(rule_id):
                located = self.tcam.find_rule(fragment_id)
                if located is not None:
                    yield located[0], fragment_id
        else:
            located = self.tcam.find_rule(rule_id)
            if located is not None:
                yield located[0], rule_id

    def __repr__(self) -> str:
        return (
            f"HermesInstaller({self.timing.name!r}, shadow="
            f"{self.shadow.occupancy}/{self.shadow.capacity}, main="
            f"{self.main.occupancy}/{self.main.capacity}, "
            f"violations={self.violations})"
        )
