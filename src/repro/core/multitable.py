"""Multi-table switches (Section 6 of the paper).

Modern switches expose a pipeline of logical TCAM tables.  Hermes handles
this "by independently carving each TCAM table to support a shadow and a
main table", allowing *different guarantees for different tables* (e.g. a
tight bound on the ACL table, best-effort on the forwarding table).  To
preserve the original pipeline's semantics, each *main* table keeps the
original table's miss behaviour (goto-next / to-controller / drop) while
every shadow keeps "goto the next table (the main table)".

:class:`MultiTableHermes` realizes exactly that: an ordered set of logical
tables, each backed by its own :class:`~repro.core.hermes.HermesInstaller`
(or a plain :class:`~repro.switchsim.installer.DirectInstaller` for tables
without guarantees), composed into one lookup pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..switchsim.installer import DirectInstaller, RuleInstaller
from ..switchsim.messages import FlowMod, FlowModResult
from ..switchsim.pipeline import MissBehavior, Pipeline, PipelineStage, PipelineVerdict
from ..tcam.rule import Rule
from .gatekeeper import MatchPredicate, match_all
from .guarantees import GuaranteeSpec
from .hermes import HermesConfig, HermesInstaller


@dataclass(frozen=True)
class LogicalTableSpec:
    """One logical table of the pipeline.

    Attributes:
        name: the table's pipeline name (e.g. ``"acl"``, ``"forwarding"``).
        guarantee: per-table insertion bound; ``None`` leaves the table
            unmanaged (a plain monolithic table, no Hermes carving).
        on_miss: the original table's miss behaviour, preserved by the
            main slice.
        predicate: which rules of this table get the guarantee.
        config: optional full Hermes config; its guarantee field is
            overridden by ``guarantee``.
    """

    name: str
    guarantee: Optional[GuaranteeSpec] = None
    on_miss: MissBehavior = MissBehavior.GOTO_NEXT
    predicate: MatchPredicate = match_all
    config: Optional[HermesConfig] = None


class MultiTableHermes:
    """Hermes across a pipeline of logical TCAM tables.

    Each logical table owns a physical TCAM (its own timing model
    instance); guaranteed tables are carved into shadow+main by a private
    :class:`HermesInstaller`.  FlowMods address a table by name; lookups
    traverse the pipeline in order with per-table miss behaviour.
    """

    def __init__(
        self,
        timing_factory,
        tables: Sequence[LogicalTableSpec],
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        """Build the pipeline.

        Args:
            timing_factory: zero-argument callable returning a fresh
                :class:`EmpiricalTimingModel` per logical table (each
                logical table is a separate physical TCAM bank).
            tables: the pipeline's logical tables, in traversal order.
            rng: optional generator for latency noise (shared).

        Raises:
            ValueError: on an empty pipeline or duplicate table names.
        """
        if not tables:
            raise ValueError("a multi-table switch needs at least one table")
        names = [spec.name for spec in tables]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate table names: {names}")
        self.specs: Dict[str, LogicalTableSpec] = {s.name: s for s in tables}
        self.installers: Dict[str, RuleInstaller] = {}
        stages: List[PipelineStage] = []
        for spec in tables:
            timing = timing_factory()
            if spec.guarantee is not None:
                config = spec.config if spec.config is not None else HermesConfig()
                config.guarantee = spec.guarantee
                installer: RuleInstaller = HermesInstaller(
                    timing, config=config, predicate=spec.predicate, rng=rng
                )
            else:
                installer = DirectInstaller(timing, rng=rng)
            self.installers[spec.name] = installer
            stages.append(
                PipelineStage(name=spec.name, table=installer, on_miss=spec.on_miss)
            )
        self.pipeline = Pipeline(stages)
        self._order = names

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------
    def table(self, name: str) -> RuleInstaller:
        """The installer managing one logical table.

        Raises:
            KeyError: for unknown table names.
        """
        return self.installers[name]

    def table_names(self) -> List[str]:
        """Logical tables in pipeline order."""
        return list(self._order)

    def apply(self, table_name: str, flow_mod: FlowMod) -> FlowModResult:
        """Apply a FlowMod to the named logical table."""
        return self.installers[table_name].apply(flow_mod)

    def advance_time(self, now: float) -> float:
        """Drive every table's background machinery; returns total seconds."""
        return sum(
            installer.advance_time(now) for installer in self.installers.values()
        )

    def guarantees(self) -> Dict[str, Optional[float]]:
        """Per-table guarantee in seconds (None for unmanaged tables)."""
        return {
            name: (
                spec.guarantee.insertion_latency
                if spec.guarantee is not None
                else None
            )
            for name, spec in self.specs.items()
        }

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def process(self, key: int) -> PipelineVerdict:
        """Run one packet through the whole pipeline.

        Within a Hermes-managed table the shadow is consulted before the
        main slice (that is the installer's ``lookup``); across tables the
        configured miss behaviour applies.
        """
        return self.pipeline.process(key)

    def lookup(self, key: int) -> Optional[Rule]:
        """Pipeline lookup returning just the matched rule (or None)."""
        verdict = self.pipeline.process(key)
        return verdict.rule

    def occupancy(self) -> Dict[str, int]:
        """Physical occupancy per logical table."""
        return {
            name: installer.occupancy()
            for name, installer in self.installers.items()
        }

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}={'hermes' if self.specs[name].guarantee else 'plain'}"
            for name in self._order
        )
        return f"MultiTableHermes({parts})"
