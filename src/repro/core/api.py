"""The operator-facing QoS interface (Section 7 of the paper).

The paper exposes five calls::

    int    CreateTCAMQoS(SwitchID, perf-guarantee, match-predicate);
    bool   DeleteQoS(ShadowID)
    bool   ModQoSConfig(ShadowID, perf-guarantee)
    bool   ModQoSMatch(ShadowID, match-predicate)
    double QoSOverheads(SwitchID, perf-guarantee, match-predicate)

:class:`HermesService` provides these verbatim (plus snake_case aliases).
``CreateTCAMQoS`` carves the switch's TCAM, instantiates a
:class:`~repro.core.hermes.HermesInstaller`, and returns a descriptor whose
:attr:`~QoSHandle.max_burst_rate` is the Equation 2 rate the Gate Keeper will
admit.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..tcam.timing import EmpiricalTimingModel
from .gatekeeper import MatchPredicate, match_all
from .guarantees import GuaranteeSpec, asic_overhead
from .hermes import HermesConfig, HermesInstaller


@dataclass(frozen=True)
class QoSHandle:
    """What ``CreateTCAMQoS`` returns.

    Attributes:
        shadow_id: the descriptor for later Mod/Delete calls.
        switch_id: the switch this QoS lives on.
        max_burst_rate: rules/second the Gate Keeper admits (Equation 2).
        shadow_capacity: entries carved for the shadow slice.
        overhead: fraction of TCAM capacity the shadow consumes.
    """

    shadow_id: int
    switch_id: str
    max_burst_rate: float
    shadow_capacity: int
    overhead: float


class HermesService:
    """Registry of switches and the QoS configurations installed on them."""

    def __init__(self) -> None:
        self._timings: Dict[str, EmpiricalTimingModel] = {}
        self._rngs: Dict[str, Optional[np.random.Generator]] = {}
        self._installers: Dict[int, HermesInstaller] = {}
        self._handles: Dict[int, QoSHandle] = {}
        self._descriptor_counter = itertools.count(1)

    # ------------------------------------------------------------------
    # Switch registry
    # ------------------------------------------------------------------
    def register_switch(
        self,
        switch_id: str,
        timing: EmpiricalTimingModel,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        """Make a switch (identified by its timing model) configurable.

        Raises:
            ValueError: when the switch id is already registered.
        """
        if switch_id in self._timings:
            raise ValueError(f"switch {switch_id!r} already registered")
        self._timings[switch_id] = timing
        self._rngs[switch_id] = rng

    def installer(self, shadow_id: int) -> HermesInstaller:
        """The live Hermes instance behind a descriptor.

        Raises:
            KeyError: for unknown or deleted descriptors.
        """
        return self._installers[shadow_id]

    def handle(self, shadow_id: int) -> QoSHandle:
        """The handle originally returned for a descriptor."""
        return self._handles[shadow_id]

    # ------------------------------------------------------------------
    # The paper's five calls
    # ------------------------------------------------------------------
    def CreateTCAMQoS(  # noqa: N802 — paper-verbatim name
        self,
        switch_id: str,
        perf_guarantee: GuaranteeSpec,
        match_predicate: MatchPredicate = match_all,
        config: Optional[HermesConfig] = None,
    ) -> QoSHandle:
        """Carve the switch and start Hermes with the requested guarantee.

        Raises:
            KeyError: for an unregistered switch.
            ValueError: when the guarantee is infeasible on the hardware.
        """
        timing = self._timings[switch_id]
        hermes_config = config if config is not None else HermesConfig()
        hermes_config.guarantee = perf_guarantee
        installer = HermesInstaller(
            timing,
            config=hermes_config,
            predicate=match_predicate,
            rng=self._rngs[switch_id],
        )
        shadow_id = next(self._descriptor_counter)
        handle = QoSHandle(
            shadow_id=shadow_id,
            switch_id=switch_id,
            max_burst_rate=installer.supported_rate(),
            shadow_capacity=installer.shadow.capacity,
            overhead=installer.shadow.capacity / timing.capacity,
        )
        self._installers[shadow_id] = installer
        self._handles[shadow_id] = handle
        return handle

    def DeleteQoS(self, shadow_id: int) -> bool:  # noqa: N802
        """Tear down a QoS: drain the shadow and stop guaranteeing.

        Returns False for unknown descriptors (paper signature is boolean).
        """
        installer = self._installers.pop(shadow_id, None)
        self._handles.pop(shadow_id, None)
        if installer is None:
            return False
        installer.rule_manager.migrate(installer._now)
        installer.set_predicate(lambda _rule: False)
        return True

    def ModQoSConfig(self, shadow_id: int, perf_guarantee: GuaranteeSpec) -> bool:  # noqa: N802
        """Re-size an existing QoS for a new guarantee."""
        installer = self._installers.get(shadow_id)
        if installer is None:
            return False
        installer.reconfigure_guarantee(perf_guarantee)
        handle = self._handles[shadow_id]
        self._handles[shadow_id] = QoSHandle(
            shadow_id=shadow_id,
            switch_id=handle.switch_id,
            max_burst_rate=installer.supported_rate(),
            shadow_capacity=installer.shadow.capacity,
            overhead=installer.shadow.capacity / installer.timing.capacity,
        )
        return True

    def ModQoSMatch(self, shadow_id: int, match_predicate: MatchPredicate) -> bool:  # noqa: N802
        """Change which rules a QoS guarantees."""
        installer = self._installers.get(shadow_id)
        if installer is None:
            return False
        installer.set_predicate(match_predicate)
        return True

    def QoSOverheads(  # noqa: N802
        self,
        switch_id: str,
        perf_guarantee: GuaranteeSpec,
        match_predicate: MatchPredicate = match_all,
    ) -> float:
        """Preview the TCAM overhead of a guarantee without installing it.

        The predicate does not change the shadow size (sizing depends only
        on the latency bound), but is accepted for signature fidelity and
        future predicate-aware sizing.

        Raises:
            KeyError: for an unregistered switch.
            ValueError: when the guarantee is infeasible.
        """
        del match_predicate  # sizing is predicate-independent today
        return asic_overhead(self._timings[switch_id], perf_guarantee)

    # Pythonic aliases.
    create_tcam_qos = CreateTCAMQoS
    delete_qos = DeleteQoS
    mod_qos_config = ModQoSConfig
    mod_qos_match = ModQoSMatch
    qos_overheads = QoSOverheads
