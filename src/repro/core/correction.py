"""Prediction-error correctors (Section 5.1 of the paper).

Workloads change abruptly, so raw forecasts under-shoot.  Hermes compensates
with control-theoretic corrections: *Slack* inflates the prediction by a
constant factor (a slack of 40% turns 1000 into 1400); *Deadzone* adds a
constant headroom of rules (a deadzone of 100 turns 1000 into 1100).  The
paper finds Cubic Spline + Slack (at 100% slack by default) most effective.
"""

from __future__ import annotations

import abc


class Corrector(abc.ABC):
    """Post-processor applied to a predictor's forecast."""

    @abc.abstractmethod
    def apply(self, prediction: float) -> float:
        """Return the inflated forecast (never below the raw prediction)."""


class SlackCorrector(Corrector):
    """Multiplicative inflation: ``prediction * (1 + slack)``."""

    def __init__(self, slack: float = 1.0) -> None:
        """``slack`` is a fraction: 0.4 means +40%, 1.0 means +100%."""
        if slack < 0.0:
            raise ValueError(f"slack must be non-negative, got {slack}")
        self.slack = slack

    def apply(self, prediction: float) -> float:
        """Inflate the forecast by the configured factor."""
        return prediction * (1.0 + self.slack)

    def __repr__(self) -> str:
        return f"SlackCorrector(slack={self.slack:.2f})"


class DeadzoneCorrector(Corrector):
    """Additive inflation: ``prediction + margin`` rules."""

    def __init__(self, margin: float = 100.0) -> None:
        """``margin`` is an absolute rule count added to every forecast."""
        if margin < 0.0:
            raise ValueError(f"margin must be non-negative, got {margin}")
        self.margin = margin

    def apply(self, prediction: float) -> float:
        """Add the configured headroom to the forecast."""
        return prediction + self.margin

    def __repr__(self) -> str:
        return f"DeadzoneCorrector(margin={self.margin:.0f})"


class NoCorrection(Corrector):
    """Pass-through corrector (for ablations)."""

    def apply(self, prediction: float) -> float:
        """Return the forecast unchanged."""
        return prediction

    def __repr__(self) -> str:
        return "NoCorrection()"


CORRECTOR_NAMES = ("slack", "deadzone", "none")


def make_corrector(name: str, **kwargs) -> Corrector:
    """Build a corrector by registry name (``slack``/``deadzone``/``none``)."""
    key = name.strip().lower()
    if key == "slack":
        return SlackCorrector(**kwargs)
    if key == "deadzone":
        return DeadzoneCorrector(**kwargs)
    if key in ("none", "off"):
        return NoCorrection()
    raise KeyError(f"unknown corrector {name!r}; known: {', '.join(CORRECTOR_NAMES)}")
