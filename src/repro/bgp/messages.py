"""BGP update messages.

Sections 2.3 and 8.4 of the paper feed BGP updates (captured by BGPStream)
through a router and measure the resulting FIB churn against the TCAM.  This
module models the two update kinds that matter — announcements and
withdrawals — with the attributes the best-path decision process consumes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from ..tcam.prefix import Prefix


class BgpUpdateKind(enum.Enum):
    """Announcement (new/changed path) or withdrawal (path gone)."""

    ANNOUNCE = "announce"
    WITHDRAW = "withdraw"


@dataclass(frozen=True)
class BgpRoute:
    """One path to a prefix, as learned from a peer.

    Attributes:
        prefix: the destination prefix.
        peer: identifier of the BGP session the route came from.
        as_path: the AS-level path (first element is the neighbouring AS).
        next_hop: IP of the next hop, as a 32-bit integer.
        local_pref: operator preference (higher wins).
        med: multi-exit discriminator (lower wins).
    """

    prefix: Prefix
    peer: str
    as_path: Tuple[int, ...]
    next_hop: int
    local_pref: int = 100
    med: int = 0

    def __post_init__(self) -> None:
        if not self.as_path:
            raise ValueError("a route needs a non-empty AS path")


@dataclass(frozen=True)
class BgpUpdate:
    """A timestamped update from one peer.

    ``route`` is required for announcements; withdrawals name only the
    prefix being pulled.
    """

    time: float
    kind: BgpUpdateKind
    peer: str
    prefix: Prefix
    route: Optional[BgpRoute] = None

    def __post_init__(self) -> None:
        if self.kind is BgpUpdateKind.ANNOUNCE:
            if self.route is None:
                raise ValueError("announcements carry a route")
            if self.route.prefix != self.prefix or self.route.peer != self.peer:
                raise ValueError("route attributes disagree with the update")

    @classmethod
    def announce(cls, time: float, route: BgpRoute) -> "BgpUpdate":
        """Announce ``route``."""
        return cls(
            time=time,
            kind=BgpUpdateKind.ANNOUNCE,
            peer=route.peer,
            prefix=route.prefix,
            route=route,
        )

    @classmethod
    def withdraw(cls, time: float, peer: str, prefix: Prefix) -> "BgpUpdate":
        """Withdraw ``peer``'s route to ``prefix``."""
        return cls(time=time, kind=BgpUpdateKind.WITHDRAW, peer=peer, prefix=prefix)
