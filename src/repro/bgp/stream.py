"""Synthetic BGPStream-style update generators.

The paper replays BGPStream captures from four vantage points — Equinix
(Chicago), TELXATL (Atlanta), NWAX (Portland), and the University of Oregon
(Section 8.1.3) — and observes that "traditional control planes generally
have low update rates except at the tail where updates occur with high
frequency (over 1000 updates per second)" (Section 2.3).

The generator reproduces exactly that shape: a low-rate Poisson background
of ordinary churn punctuated by bursts (session resets / path hunting)
whose instantaneous rate exceeds 1000 updates/second.  Four router profiles
give the four vantage points distinct base rates, burst frequencies, and
peer counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..tcam.prefix import Prefix
from .messages import BgpRoute, BgpUpdate


@dataclass(frozen=True)
class RouterProfile:
    """Statistical profile of one BGP vantage point.

    Attributes:
        name: vantage-point label.
        peers: number of BGP sessions.
        prefix_pool: distinct prefixes seen in the capture window (kept
            below commodity TCAM capacities, as a deployed FIB must be).
        base_rate: background updates/second (Poisson).
        burst_rate: instantaneous updates/second inside a burst.
        burst_arrival_rate: bursts per second (Poisson).
        burst_size_mean: mean updates per burst (geometric).
        withdraw_fraction: fraction of updates that are withdrawals.
    """

    name: str
    peers: int = 8
    prefix_pool: int = 1536
    base_rate: float = 20.0
    burst_rate: float = 2000.0
    burst_arrival_rate: float = 0.05
    burst_size_mean: float = 400.0
    withdraw_fraction: float = 0.15


ROUTER_PROFILES: Dict[str, RouterProfile] = {
    # A large IXP route collector: many peers, heavy churn, big bursts.
    "equinix-chicago": RouterProfile(
        name="equinix-chicago",
        peers=24,
        prefix_pool=2048,
        base_rate=40.0,
        burst_rate=2500.0,
        burst_arrival_rate=0.08,
        burst_size_mean=600.0,
    ),
    "telxatl": RouterProfile(
        name="telxatl",
        peers=16,
        prefix_pool=1792,
        base_rate=25.0,
        burst_rate=1800.0,
        burst_arrival_rate=0.06,
        burst_size_mean=450.0,
    ),
    "nwax": RouterProfile(
        name="nwax",
        peers=8,
        prefix_pool=1280,
        base_rate=12.0,
        burst_rate=1400.0,
        burst_arrival_rate=0.04,
        burst_size_mean=300.0,
    ),
    # The Oregon route-views collector: few direct peers, long quiet spells.
    "uoregon": RouterProfile(
        name="uoregon",
        peers=6,
        prefix_pool=1536,
        base_rate=8.0,
        burst_rate=1200.0,
        burst_arrival_rate=0.03,
        burst_size_mean=350.0,
    ),
}


def get_router_profile(name: str) -> RouterProfile:
    """Look up one of the four vantage-point profiles."""
    try:
        return ROUTER_PROFILES[name.strip().lower()]
    except KeyError:
        raise KeyError(
            f"unknown router {name!r}; known: {', '.join(sorted(ROUTER_PROFILES))}"
        ) from None


def _prefix_pool(profile: RouterProfile) -> List[Prefix]:
    """A deterministic pool of globally-routable-looking prefixes.

    Mixes /24s, /22s, /20s and /16s in roughly the proportions of the
    global table (dominated by /24s).
    """
    pool: List[Prefix] = []
    for index in range(profile.prefix_pool):
        draw = index % 10
        if draw < 6:
            length = 24
        elif draw < 8:
            length = 22
        elif draw < 9:
            length = 20
        else:
            length = 16
        # Spread over 1.0.0.0 - 223.x: unicast space.
        first = 1 + (index * 7) % 223
        second = (index * 131) % 256
        third = (index * 17) % 256
        network = (first << 24) | (second << 16) | (third << 8)
        mask = ((1 << length) - 1) << (32 - length)
        pool.append(Prefix(network & mask, length))
    return pool


def generate_updates(
    profile: RouterProfile,
    duration: float,
    rng: Optional[np.random.Generator] = None,
) -> List[BgpUpdate]:
    """Generate a timestamped update stream for one vantage point.

    Returns updates sorted by time.  Instantaneous rates follow the
    background Poisson process except inside bursts, which inject
    ``burst_size`` updates at ``burst_rate``.
    """
    if duration <= 0:
        raise ValueError(f"duration must be positive: {duration}")
    generator = rng if rng is not None else np.random.default_rng(11)
    pool = _prefix_pool(profile)
    peers = [f"{profile.name}-peer{index}" for index in range(profile.peers)]
    updates: List[BgpUpdate] = []

    def make_update(time: float) -> BgpUpdate:
        prefix = pool[int(generator.integers(0, len(pool)))]
        peer = peers[int(generator.integers(0, len(peers)))]
        if generator.random() < profile.withdraw_fraction:
            return BgpUpdate.withdraw(time, peer, prefix)
        path_length = int(generator.integers(2, 7))
        as_path = tuple(
            int(generator.integers(1000, 65000)) for _ in range(path_length)
        )
        route = BgpRoute(
            prefix=prefix,
            peer=peer,
            as_path=as_path,
            next_hop=int(generator.integers(1, 1 << 32)),
        )
        return BgpUpdate.announce(time, route)

    # Background churn.
    time = float(generator.exponential(1.0 / profile.base_rate))
    while time < duration:
        updates.append(make_update(time))
        time += float(generator.exponential(1.0 / profile.base_rate))
    # Bursts (session resets / path hunting).
    burst_time = float(generator.exponential(1.0 / profile.burst_arrival_rate))
    while burst_time < duration:
        burst_size = 1 + int(generator.geometric(1.0 / profile.burst_size_mean))
        cursor = burst_time
        for _ in range(burst_size):
            if cursor >= duration:
                break
            updates.append(make_update(cursor))
            cursor += float(generator.exponential(1.0 / profile.burst_rate))
        burst_time += float(generator.exponential(1.0 / profile.burst_arrival_rate))
    updates.sort(key=lambda update: update.time)
    return updates


def update_rate_series(
    updates: List[BgpUpdate], bin_seconds: float = 1.0
) -> List[Tuple[float, float]]:
    """Per-bin update rates — the Section 2.3 rate CDF is built from this."""
    if bin_seconds <= 0:
        raise ValueError("bin_seconds must be positive")
    if not updates:
        return []
    horizon = updates[-1].time
    bins = int(horizon / bin_seconds) + 1
    counts = [0] * bins
    for update in updates:
        counts[int(update.time / bin_seconds)] += 1
    return [
        (index * bin_seconds, count / bin_seconds)
        for index, count in enumerate(counts)
    ]
