"""BGP substrate: updates, RIB/decision process, FIB compilation, streams."""

from .fib import BgpRouter, Fib, FibStats
from .messages import BgpRoute, BgpUpdate, BgpUpdateKind
from .rib import BestPathChange, Rib, preference_key
from .stream import (
    ROUTER_PROFILES,
    RouterProfile,
    generate_updates,
    get_router_profile,
    update_rate_series,
)

__all__ = [
    "BestPathChange",
    "BgpRoute",
    "BgpRouter",
    "BgpUpdate",
    "BgpUpdateKind",
    "Fib",
    "FibStats",
    "ROUTER_PROFILES",
    "Rib",
    "RouterProfile",
    "generate_updates",
    "get_router_profile",
    "preference_key",
    "update_rate_series",
]
