"""BGP RIB and best-path selection.

The paper's preprocessing "converts the BGP updates into Forwarding
Information Base (FIB) rules ... because many RIB updates do not percolate
down to the FIB" (Section 8.1.3).  This module is the RIB half of that
pipeline: per-peer Adj-RIB-In tables and the standard best-path decision
process (local-pref, AS-path length, MED, tie-break on peer id).  An update
whose processing leaves the best path unchanged produces *no* FIB change —
the percolation filter the paper relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..tcam.prefix import Prefix
from .messages import BgpRoute, BgpUpdate, BgpUpdateKind


@dataclass(frozen=True)
class BestPathChange:
    """The RIB-level outcome of one update.

    Attributes:
        prefix: the affected prefix.
        previous: the best route before the update (None if none).
        current: the best route after the update (None if none remains).
    """

    prefix: Prefix
    previous: Optional[BgpRoute]
    current: Optional[BgpRoute]

    @property
    def changed(self) -> bool:
        """True when the best path actually moved (a FIB-relevant event)."""
        return self.previous != self.current


def preference_key(route: BgpRoute):
    """Sort key implementing the decision process: larger is better."""
    return (
        route.local_pref,
        -len(route.as_path),
        -route.med,
        route.peer,  # deterministic tie-break (stands in for router-id)
    )


class Rib:
    """Adj-RIB-In per peer plus the computed best path per prefix."""

    def __init__(self) -> None:
        self._routes: Dict[Prefix, Dict[str, BgpRoute]] = {}
        self._best: Dict[Prefix, BgpRoute] = {}

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def process(self, update: BgpUpdate) -> BestPathChange:
        """Apply one update and report whether the best path changed."""
        previous = self._best.get(update.prefix)
        table = self._routes.setdefault(update.prefix, {})
        if update.kind is BgpUpdateKind.ANNOUNCE:
            table[update.peer] = update.route
        else:
            table.pop(update.peer, None)
            if not table:
                del self._routes[update.prefix]
        current = self._select_best(update.prefix)
        if current is None:
            self._best.pop(update.prefix, None)
        else:
            self._best[update.prefix] = current
        return BestPathChange(prefix=update.prefix, previous=previous, current=current)

    def _select_best(self, prefix: Prefix) -> Optional[BgpRoute]:
        candidates = list(self._routes.get(prefix, {}).values())
        if not candidates:
            return None
        return max(candidates, key=preference_key)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def best_route(self, prefix: Prefix) -> Optional[BgpRoute]:
        """The current best route for a prefix, if any."""
        return self._best.get(prefix)

    def best_routes(self) -> List[BgpRoute]:
        """All current best routes (one per reachable prefix)."""
        return list(self._best.values())

    def route_count(self) -> int:
        """Total Adj-RIB-In entries across peers."""
        return sum(len(table) for table in self._routes.values())

    def prefix_count(self) -> int:
        """Distinct reachable prefixes."""
        return len(self._best)
