"""RIB -> FIB conversion: turning best-path changes into TCAM actions.

The FIB holds one rule per reachable prefix, pointing at the port of the
best route's next hop.  A best-path change becomes:

* an ADD when the prefix becomes reachable,
* a DELETE when it loses its last route,
* a MODIFY (action-only — the cheap TCAM operation) when only the next hop
  changes,
* nothing when the best path is unchanged — the RIB absorbed the update.

Rule priorities encode longest-prefix-match: priority equals prefix length,
so a /24 beats the /16 that covers it, exactly as LPM requires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..switchsim.messages import FlowMod
from ..tcam.prefix import Prefix
from ..tcam.rule import Action, Rule
from .messages import BgpRoute
from .rib import BestPathChange, Rib


@dataclass
class FibStats:
    """How RIB churn translated into FIB churn."""

    updates_processed: int = 0
    adds: int = 0
    deletes: int = 0
    modifies: int = 0
    suppressed: int = 0  # RIB updates that never reached the FIB

    @property
    def fib_actions(self) -> int:
        """Total TCAM-bound actions emitted."""
        return self.adds + self.deletes + self.modifies


class Fib:
    """The FIB compiler: best-path changes in, FlowMods out."""

    def __init__(self, port_of_peer: Optional[Dict[str, int]] = None) -> None:
        """``port_of_peer`` maps a peer to its egress port (default: hash)."""
        self._port_of_peer = port_of_peer
        self._installed: Dict[Prefix, Rule] = {}
        self.stats = FibStats()

    def port_for(self, route: BgpRoute) -> int:
        """Egress port for a route's peer."""
        if self._port_of_peer is not None:
            return self._port_of_peer[route.peer]
        return (hash(route.peer) % 64) + 1

    def compile_change(self, change: BestPathChange) -> List[FlowMod]:
        """Translate one best-path change into zero or more FlowMods."""
        self.stats.updates_processed += 1
        if not change.changed:
            self.stats.suppressed += 1
            return []
        previous_rule = self._installed.get(change.prefix)
        if change.current is None:
            # Prefix lost its last route: delete the FIB entry.
            if previous_rule is None:
                self.stats.suppressed += 1
                return []
            del self._installed[change.prefix]
            self.stats.deletes += 1
            return [FlowMod.delete(previous_rule.rule_id)]
        new_port = self.port_for(change.current)
        if previous_rule is None:
            rule = Rule.from_prefix(
                change.prefix, change.prefix.length, Action.output(new_port)
            )
            self._installed[change.prefix] = rule
            self.stats.adds += 1
            return [FlowMod.add(rule)]
        if previous_rule.action.port == new_port:
            # Same egress port: the data plane is already correct.
            self.stats.suppressed += 1
            return []
        updated = Rule(
            match=previous_rule.match,
            priority=previous_rule.priority,
            action=Action.output(new_port),
            rule_id=previous_rule.rule_id,
            origin_id=previous_rule.origin_id,
        )
        self._installed[change.prefix] = updated
        self.stats.modifies += 1
        return [FlowMod.modify(previous_rule.rule_id, action=Action.output(new_port))]

    def entry_count(self) -> int:
        """Installed FIB entries."""
        return len(self._installed)


class BgpRouter:
    """RIB + FIB glued together: updates in, timed FlowMods out."""

    def __init__(self, port_of_peer: Optional[Dict[str, int]] = None) -> None:
        self.rib = Rib()
        self.fib = Fib(port_of_peer)

    def process(self, update) -> List[FlowMod]:
        """Run one BGP update through the decision process and the FIB."""
        change = self.rib.process(update)
        return self.fib.compile_change(change)
