"""Benchmark: atomic-predicate vs symbolic verification on synthetic FIBs.

Sweeps table sizes with both engines over the same shadow+main pair and
writes a JSON artifact (``BENCH_verifier.json``) CI can archive.  The
symbolic engine's pairwise scan is quadratic, so past a time budget its
runtime is *projected* from the measured curve and the run is skipped —
that skip is the point: the AP engine keeps verifying sizes the symbolic
engine can no longer touch.

Environment knobs:
    ``BENCH_VERIFIER_SIZES``   comma-separated rule counts (default smoke
                               scale ``1000,2000,5000``).
    ``BENCH_VERIFIER_FULL``    set to 1 for the paper-scale sweep
                               (1k → 200k rules).
    ``BENCH_VERIFIER_BUDGET``  per-size symbolic time budget in seconds
                               (default 25).
    ``BENCH_VERIFIER_OUT``     artifact path (default
                               ``results/BENCH_verifier.json``).
"""

import os
import time

import numpy as np

from repro.analysis.ap import engines_agree
from repro.analysis.verifier import verify_partition
from repro.obs.perf.bench import write_bench_artifact
from repro.tcam.rule import Action, Rule
from repro.tcam.ternary import TernaryMatch

SMOKE_SIZES = (1000, 2000, 5000)
FULL_SIZES = (1000, 5000, 10000, 50000, 100000, 200000)


def _sizes():
    if os.environ.get("BENCH_VERIFIER_SIZES"):
        return tuple(
            int(part) for part in os.environ["BENCH_VERIFIER_SIZES"].split(",")
        )
    if os.environ.get("BENCH_VERIFIER_FULL"):
        return FULL_SIZES
    return SMOKE_SIZES


def synthetic_fib(count, seed=7):
    """A clean shadow+main pair of ``count`` prefix rules total.

    Prefix lengths and networks follow a deterministic RNG; shadow rules
    (5% of the pair, the paper's carve proportion) take strictly higher
    priorities so the pair verifies clean and the benchmark measures the
    scan, not violation rendering.
    """
    rng = np.random.default_rng(seed)
    lengths = rng.integers(8, 25, size=count)
    offsets = rng.integers(0, 1 << 62, size=count)
    rules = []
    for index in range(count):
        length = int(lengths[index])
        mask = ((1 << length) - 1) << (32 - length)
        value = (int(offsets[index]) << (32 - length)) & mask
        rules.append(
            Rule(
                match=TernaryMatch(value=value, mask=mask, width=32),
                priority=index + 1,
                action=Action.output(1 + index % 7),
                rule_id=index + 1,
            )
        )
    shadow_count = max(1, count // 20)
    shadow = [
        rule.with_priority(1_000_000 + rule.priority)
        for rule in rules[:shadow_count]
    ]
    return shadow, rules[shadow_count:]


def _timed(engine, shadow, main, reference):
    """Time the *full* verification: errors, warnings, and the semantic
    diff against a reference — the shape the CLI runs on captured
    snapshots, and where the symbolic engine's region algebra goes
    quadratic."""
    start = time.perf_counter()
    violations = verify_partition(
        shadow, main, reference=reference, include_warnings=True, engine=engine
    )
    return time.perf_counter() - start, violations


def run_sweep(sizes, budget):
    rows = []
    last_symbolic = None  # (size, seconds) anchor for quadratic projection
    for size in sizes:
        shadow, main = synthetic_fib(size)
        reference = shadow + main  # the pair's own lookup order
        ap_seconds, ap_violations = _timed("ap", shadow, main, reference)
        row = {
            "rules": size,
            "ap_seconds": ap_seconds,
            "ap_violations": len(ap_violations),
            "symbolic_seconds": None,
            "symbolic_projected_seconds": None,
            "speedup": None,
        }
        projected = (
            last_symbolic[1] * (size / last_symbolic[0]) ** 2
            if last_symbolic
            else 0.0
        )
        if projected <= budget:
            symbolic_seconds, symbolic_violations = _timed(
                "symbolic", shadow, main, reference
            )
            assert engines_agree(ap_violations, symbolic_violations)
            row["symbolic_seconds"] = symbolic_seconds
            row["speedup"] = symbolic_seconds / max(ap_seconds, 1e-9)
            last_symbolic = (size, symbolic_seconds)
        else:
            row["symbolic_projected_seconds"] = projected
        rows.append(row)
    return rows


def test_bench_verifier(benchmark):
    sizes = _sizes()
    budget = float(os.environ.get("BENCH_VERIFIER_BUDGET", "25"))
    rows = benchmark.pedantic(
        run_sweep, args=(sizes, budget), rounds=1, iterations=1
    )
    co_run_rows = [row for row in rows if row["speedup"] is not None]
    write_bench_artifact(
        "verifier",
        headline={
            "ap_seconds_largest": rows[-1]["ap_seconds"],
            "ap_rules_largest": rows[-1]["rules"],
            "speedup_largest_corun": (
                co_run_rows[-1]["speedup"] if co_run_rows else 0.0
            ),
        },
        payload={
            "sizes": list(sizes),
            "symbolic_budget_seconds": budget,
            "rows": rows,
        },
        out=os.environ.get("BENCH_VERIFIER_OUT"),
    )

    print()
    for row in rows:
        symbolic = (
            f"{row['symbolic_seconds']:.3f}s"
            if row["symbolic_seconds"] is not None
            else f"skipped (projected {row['symbolic_projected_seconds']:.0f}s)"
        )
        print(
            f"{row['rules']:>7} rules  ap={row['ap_seconds']:.3f}s  "
            f"symbolic={symbolic}"
        )

    co_run = [row for row in rows if row["speedup"] is not None]
    assert co_run, "symbolic never ran; lower the smallest size"
    # The headline claim: at the largest size both engines still run, AP is
    # at least an order of magnitude faster...
    assert co_run[-1]["speedup"] >= 10, co_run[-1]
    # ...and beyond the budget the symbolic engine drops out entirely while
    # AP keeps going (only asserted for the stock sweeps — a custom
    # BENCH_VERIFIER_SIZES may deliberately stay small).
    if not os.environ.get("BENCH_VERIFIER_SIZES"):
        assert any(row["symbolic_seconds"] is None for row in rows), (
            "symbolic engine finished every size inside its budget; raise "
            "the sweep ceiling"
        )
    assert all(row["ap_seconds"] < budget for row in rows)
