"""Shared benchmark plumbing.

Each benchmark regenerates one of the paper's tables or figures (quick
scale), prints the rendered artifact, and asserts the headline *shape* the
paper reports.  ``pytest benchmarks/ --benchmark-only`` runs them all.
"""

import pytest


def run_and_render(benchmark, run_fn, *args, **kwargs):
    """Run an experiment once under pytest-benchmark and print its artifact."""
    result = benchmark.pedantic(
        run_fn, args=args, kwargs=kwargs, rounds=1, iterations=1
    )
    print()
    print(result.render())
    return result
