"""Shared benchmark plumbing.

Each benchmark regenerates one of the paper's tables or figures (quick
scale), prints the rendered artifact, and asserts the headline *shape* the
paper reports.  ``pytest benchmarks/ --benchmark-only`` runs them all.

Every run also writes a ``hermes-bench/1`` artifact through
:func:`repro.obs.perf.bench.write_bench_artifact`: one
``results/BENCH_<suite>.json`` per suite, one trajectory point appended to
``results/perf_history.jsonl``, and a refreshed ``results/INDEX.md``.
Set ``HERMES_BENCH_DIR`` to redirect everything (CI does).
"""

from repro.obs.perf.bench import write_bench_artifact
from repro.obs.perf.wallclock import wallclock


def run_and_render(benchmark, run_fn, *args, suite=None, headline=None, **kwargs):
    """Run an experiment once under pytest-benchmark and print its artifact.

    ``suite`` defaults to the tail of ``run_fn``'s module name (``fig01``
    for ``repro.experiments.fig01``).  ``headline`` extends the artifact's
    comparison surface: a dict of extra metrics, or a callable receiving
    the experiment result and returning one; the run's wall-clock seconds
    are always included as ``run_seconds``.
    """
    timing = {}

    def timed(*inner_args, **inner_kwargs):
        start = wallclock()
        outcome = run_fn(*inner_args, **inner_kwargs)
        timing["run_seconds"] = wallclock() - start
        return outcome

    result = benchmark.pedantic(
        timed, args=args, kwargs=kwargs, rounds=1, iterations=1
    )
    print()
    print(result.render())
    suite_name = suite if suite else run_fn.__module__.rsplit(".", 1)[-1]
    metrics = {"run_seconds": timing["run_seconds"]}
    if headline is not None:
        metrics.update(headline(result) if callable(headline) else headline)
    write_bench_artifact(suite_name, metrics)
    return result
