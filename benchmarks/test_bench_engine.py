"""Benchmark: the discrete-event kernel's two completion strategies and
the process-parallel sweep runner.

Three measurements land in one JSON artifact (``BENCH_engine.json``):

* **dispatch micro-benchmark** — a real :class:`~repro.simulator.Simulation`
  is loaded with ≥10k active flows and the cost of ``K`` dispatches is
  measured for both strategies: scan mode calls ``_next_completion()`` (an
  O(active-flows) ETA scan) once per dispatch, event mode arms one kernel
  completion event per rate epoch and pays a heap peek per dispatch.  This
  isolates exactly the code path ``completion_mode`` switches.
* **end-to-end equality run** — the same moderate workload runs to
  completion under both modes; FCTs must be byte-identical (the ulp
  contract ``tests/engine/test_event_mode.py`` pins) and both wall times
  are recorded.
* **sweep speedup** — the sensitivity sweep runs serially and in parallel
  (workers capped at the detected core count).  Sweep cells ship to
  workers in chunks (see :class:`~repro.engine.sweep.SweepRunner`) so
  process startup is amortized.  On multi-core CI runners the parallel
  run must be ≥2× faster; that assertion fires only when
  ``BENCH_ENGINE_REQUIRE_SPEEDUP=1`` (the CI engine job sets it) AND the
  runner has at least 2 cores — a 1-core runner physically cannot speed
  up, and asserting there only records lies (an earlier artifact pinned a
  0.91× "speedup" from exactly that).  The artifact always records the
  honest timings and ``os.cpu_count()``.

Environment knobs:
    ``BENCH_ENGINE_FLOWS``            active flows in the dispatch
                                      micro-benchmark (default 10000).
    ``BENCH_ENGINE_DISPATCHES``       dispatches measured per strategy
                                      (default 2000).
    ``BENCH_ENGINE_SWEEP_WORKERS``    parallel worker count (default 4).
    ``BENCH_ENGINE_REQUIRE_SPEEDUP``  set to 1 to assert the ≥2× sweep
                                      speedup (CI, multi-core only).
    ``BENCH_ENGINE_OUT``              artifact path (default
                                      ``results/BENCH_engine.json``).
"""

import os
import time

import numpy as np

from repro.baselines import make_installer
from repro.experiments.sensitivity import SensitivityConfig
from repro.experiments.sensitivity import run as run_sensitivity
from repro.simulator import Simulation, SimulationConfig, TeAppConfig
from repro.simulator.simulation import _ActiveFlow
from repro.tcam import get_switch_model
from repro.obs.perf.bench import write_bench_artifact
from repro.topology import FatTreeSpec, build_fat_tree, hosts
from repro.traffic.flows import FlowSpec


def _synthetic_flows(count, seed=11, size=5e6):
    graph = build_fat_tree(FatTreeSpec(k=4, link_capacity=1e9))
    endpoints = hosts(graph)
    rng = np.random.default_rng(seed)
    flows = []
    for index in range(count):
        source = endpoints[index % len(endpoints)]
        destination = endpoints[(index * 7 + 3) % len(endpoints)]
        if source == destination:
            destination = endpoints[(index * 7 + 4) % len(endpoints)]
        flows.append(
            FlowSpec(
                source=source,
                destination=destination,
                size=size + float(rng.integers(0, 1e6)),
                start_time=0.001 * (index % 50),
            )
        )
    return graph, flows


def _loaded_simulation(flow_count):
    """A real Simulation whose active set holds ``flow_count`` flows.

    The flows are injected directly (their arrivals never dispatch), so
    the measurement below isolates the per-dispatch completion-selection
    cost from arrival/rate-recompute physics.
    """
    graph, flows = _synthetic_flows(flow_count)
    timing = get_switch_model("pica8-p3290")
    factory = lambda name: make_installer("naive", timing)
    simulation = Simulation(
        graph,
        flows[:1],
        factory,
        SimulationConfig(te=TeAppConfig(epoch=1e6), baseline_occupancy=0),
    )
    for index, spec in enumerate(flows):
        simulation._active[spec.flow_id] = _ActiveFlow(
            spec=spec,
            remaining_bytes=spec.size,
            path=(spec.source, spec.destination),
            rate=1e6 + (index % 97) * 1e3,
        )
    return simulation


def dispatch_microbench(flow_count, dispatches):
    """Per-dispatch completion-selection cost, scan vs event strategy.

    Scan mode's loop calls ``_next_completion()`` every iteration — K
    dispatches cost K full ETA scans over the active set.  Event mode arms
    the argmin once per rate epoch and pays one heap peek per dispatch.
    """
    simulation = _loaded_simulation(flow_count)

    start = time.perf_counter()
    for _ in range(dispatches):
        scan_pick = simulation._next_completion()
    scan_seconds = time.perf_counter() - start

    simulation._schedule_completion()  # one arm per rate epoch
    scheduler = simulation._scheduler
    start = time.perf_counter()
    for _ in range(dispatches):
        event_pick = scheduler.peek()
    event_seconds = time.perf_counter() - start

    assert scan_pick[1] is not None
    assert event_pick is not None
    # det: allow(float-eq) -- both strategies must pick the same argmin ETA
    assert event_pick.time == scan_pick[0]
    return {
        "flows": flow_count,
        "dispatches": dispatches,
        "scan_seconds": scan_seconds,
        "event_seconds": event_seconds,
        "speedup": scan_seconds / max(event_seconds, 1e-9),
    }


def end_to_end_comparison(flow_count=300):
    timings = {}
    fcts = {}
    for mode in ("scan", "event"):
        graph, flows = _synthetic_flows(flow_count, size=1e6)
        timing = get_switch_model("pica8-p3290")
        factory = lambda name: make_installer("naive", timing)
        config = SimulationConfig(
            te=TeAppConfig(epoch=1e6),
            baseline_occupancy=0,
            completion_mode=mode,
        )
        simulation = Simulation(graph, flows, factory, config)
        start = time.perf_counter()
        metrics = simulation.run()
        timings[mode] = time.perf_counter() - start
        fcts[mode] = metrics.fcts()
    assert len(fcts["event"]) == len(fcts["scan"]) == flow_count
    assert fcts["event"] == fcts["scan"], (
        "event mode must stay byte-identical to scan on pure "
        "arrival/completion workloads"
    )
    return {
        "flows": flow_count,
        "scan_seconds": timings["scan"],
        "event_seconds": timings["event"],
    }


def sweep_speedup(workers):
    config = SensitivityConfig(duration=1.0)
    start = time.perf_counter()
    serial = run_sensitivity(config, workers=1)
    serial_seconds = time.perf_counter() - start
    start = time.perf_counter()
    parallel = run_sensitivity(config, workers=workers)
    parallel_seconds = time.perf_counter() - start
    assert parallel.rows == serial.rows
    return {
        "cells": len(serial.rows),
        "workers": workers,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": serial_seconds / max(parallel_seconds, 1e-9),
    }


def run_bench():
    flow_count = int(os.environ.get("BENCH_ENGINE_FLOWS", "10000"))
    dispatches = int(os.environ.get("BENCH_ENGINE_DISPATCHES", "2000"))
    cpu_count = os.cpu_count() or 1
    # More workers than cores just multiplies process startup; cap at the
    # detected core count so the recorded speedup is honest.
    workers = min(
        int(os.environ.get("BENCH_ENGINE_SWEEP_WORKERS", "4")),
        max(cpu_count, 1),
    )
    return {
        "cpu_count": cpu_count,
        "dispatch": dispatch_microbench(flow_count, dispatches),
        "end_to_end": end_to_end_comparison(),
        "sweep": sweep_speedup(max(workers, 1)),
    }


def test_bench_engine(benchmark):
    payload = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    write_bench_artifact(
        "engine",
        headline={
            "dispatch_speedup": payload["dispatch"]["speedup"],
            "dispatch_event_seconds": payload["dispatch"]["event_seconds"],
            "end_to_end_event_seconds": payload["end_to_end"]["event_seconds"],
            "sweep_speedup": payload["sweep"]["speedup"],
        },
        payload=payload,
        out=os.environ.get("BENCH_ENGINE_OUT"),
    )

    dispatch = payload["dispatch"]
    sweep = payload["sweep"]
    print()
    print(
        f"dispatch ({dispatch['flows']} flows x {dispatch['dispatches']}): "
        f"scan={dispatch['scan_seconds']:.3f}s "
        f"event={dispatch['event_seconds']:.3f}s "
        f"({dispatch['speedup']:.0f}x)"
    )
    print(
        f"end-to-end ({payload['end_to_end']['flows']} flows): "
        f"scan={payload['end_to_end']['scan_seconds']:.2f}s "
        f"event={payload['end_to_end']['event_seconds']:.2f}s"
    )
    print(
        f"sweep ({sweep['cells']} cells, {sweep['workers']} workers, "
        f"{payload['cpu_count']} cpus): serial={sweep['serial_seconds']:.2f}s "
        f"parallel={sweep['parallel_seconds']:.2f}s "
        f"({sweep['speedup']:.2f}x)"
    )

    # The headline: scheduled completions beat the per-dispatch ETA scan by
    # orders of magnitude once the active set is large.
    assert dispatch["flows"] >= 10_000
    assert dispatch["speedup"] >= 10, dispatch
    if payload["cpu_count"] < 2:
        # A 1-core runner cannot parallelize; the artifact records the
        # honest timings but a speedup assertion there is meaningless.
        print("sweep speedup gate skipped: fewer than 2 cores detected")
    elif os.environ.get("BENCH_ENGINE_REQUIRE_SPEEDUP"):
        assert sweep["speedup"] >= 2.0, sweep
