"""Benchmark: the discrete-event kernel's two completion strategies, the
process-parallel sweep runner, and the columnar flow-state engine's
scaling curve.

Four measurements land in one JSON artifact (``BENCH_engine.json``):

* **dispatch micro-benchmark** — a real :class:`~repro.simulator.Simulation`
  is loaded with ≥10k active flows and the cost of ``K`` dispatches is
  measured for both strategies: scan mode calls ``_next_completion()`` (an
  O(active-flows) ETA scan) once per dispatch, event mode arms one kernel
  completion event per rate epoch and pays a heap peek per dispatch.  This
  isolates exactly the code path ``completion_mode`` switches.
* **end-to-end equality run** — the same moderate workload runs to
  completion under both modes; FCTs must be byte-identical (the ulp
  contract ``tests/engine/test_event_mode.py`` pins) and both wall times
  are recorded.
* **sweep speedup** — the sensitivity sweep runs serially and in parallel
  (workers capped at the detected core count).  Sweep cells ship to
  workers in chunks (see :class:`~repro.engine.sweep.SweepRunner`) so
  process startup is amortized.  On multi-core CI runners the parallel
  run must be ≥2× faster; that assertion fires only when
  ``BENCH_ENGINE_REQUIRE_SPEEDUP=1`` (the CI engine job sets it) AND the
  runner has at least 2 cores — a 1-core runner physically cannot speed
  up, and asserting there only records lies (an earlier artifact pinned a
  0.91× "speedup" from exactly that).  The artifact always records the
  honest timings and ``os.cpu_count()``.
* **flow-state scaling curve** — the ``flow_state="columnar"`` backend
  (:class:`~repro.simulator.flowstate.FlowStore`) against the object/dict
  reference, 1k → 1M flows.  Two probes per size: the rate-recompute
  microbenchmark times ``_recompute_rates()`` on a loaded simulation
  (the O(links × flows) progressive filling both backends implement),
  and a full event-mode run with batched same-instant arrivals and a
  ``max_time`` cut proves the size actually *runs* end to end.  The
  object backend is measured up to ``BENCH_ENGINE_SCALE_OBJECTS_CAP``
  flows and linearly projected beyond (1M ``_ActiveFlow`` + ``dict``
  fillings would take minutes and say nothing new); full object-backend
  runs stop at 1k flows because without the columnar backend's
  same-instant recompute batching an N-flow burst costs N fillings —
  quadratic admission work the curve exists to retire.  At 100k flows
  the columnar recompute must be ≥10× faster, and the largest size must
  complete a run with every flow concurrently active.

Environment knobs:
    ``BENCH_ENGINE_FLOWS``            active flows in the dispatch
                                      micro-benchmark (default 10000).
    ``BENCH_ENGINE_DISPATCHES``       dispatches measured per strategy
                                      (default 2000).
    ``BENCH_ENGINE_SWEEP_WORKERS``    parallel worker count (default 4).
    ``BENCH_ENGINE_REQUIRE_SPEEDUP``  set to 1 to assert the ≥2× sweep
                                      speedup (CI, multi-core only).
    ``BENCH_ENGINE_SCALE_MAX``        largest flow count on the scaling
                                      curve (default 1000000; CI's scale
                                      job caps it at 100000).
    ``BENCH_ENGINE_SCALE_OBJECTS_CAP``  largest flow count at which the
                                      object backend's recompute is
                                      measured rather than projected
                                      (default 100000).
    ``BENCH_ENGINE_OUT``              artifact path (default
                                      ``results/BENCH_engine.json``).
"""

import math
import os
import time

import numpy as np

from repro.baselines import make_installer
from repro.experiments.sensitivity import SensitivityConfig
from repro.experiments.sensitivity import run as run_sensitivity
from repro.simulator import Simulation, SimulationConfig, TeAppConfig
from repro.simulator.simulation import _ActiveFlow
from repro.tcam import get_switch_model
from repro.obs.perf.bench import write_bench_artifact
from repro.topology import FatTreeSpec, build_fat_tree, hosts
from repro.traffic.flows import FlowSpec


def _synthetic_flows(count, seed=11, size=5e6):
    graph = build_fat_tree(FatTreeSpec(k=4, link_capacity=1e9))
    endpoints = hosts(graph)
    rng = np.random.default_rng(seed)
    flows = []
    for index in range(count):
        source = endpoints[index % len(endpoints)]
        destination = endpoints[(index * 7 + 3) % len(endpoints)]
        if source == destination:
            destination = endpoints[(index * 7 + 4) % len(endpoints)]
        flows.append(
            FlowSpec(
                source=source,
                destination=destination,
                size=size + float(rng.integers(0, 1e6)),
                start_time=0.001 * (index % 50),
            )
        )
    return graph, flows


def _loaded_simulation(flow_count):
    """A real Simulation whose active set holds ``flow_count`` flows.

    The flows are injected directly (their arrivals never dispatch), so
    the measurement below isolates the per-dispatch completion-selection
    cost from arrival/rate-recompute physics.
    """
    graph, flows = _synthetic_flows(flow_count)
    timing = get_switch_model("pica8-p3290")
    factory = lambda name: make_installer("naive", timing)
    simulation = Simulation(
        graph,
        flows[:1],
        factory,
        SimulationConfig(te=TeAppConfig(epoch=1e6), baseline_occupancy=0),
    )
    for index, spec in enumerate(flows):
        simulation._active[spec.flow_id] = _ActiveFlow(
            spec=spec,
            remaining_bytes=spec.size,
            path=(spec.source, spec.destination),
            rate=1e6 + (index % 97) * 1e3,
        )
    return simulation


def dispatch_microbench(flow_count, dispatches):
    """Per-dispatch completion-selection cost, scan vs event strategy.

    Scan mode's loop calls ``_next_completion()`` every iteration — K
    dispatches cost K full ETA scans over the active set.  Event mode arms
    the argmin once per rate epoch and pays one heap peek per dispatch.
    """
    simulation = _loaded_simulation(flow_count)

    start = time.perf_counter()
    for _ in range(dispatches):
        scan_pick = simulation._next_completion()
    scan_seconds = time.perf_counter() - start

    simulation._schedule_completion()  # one arm per rate epoch
    scheduler = simulation._scheduler
    start = time.perf_counter()
    for _ in range(dispatches):
        event_pick = scheduler.peek()
    event_seconds = time.perf_counter() - start

    assert scan_pick[1] is not None
    assert event_pick is not None
    # det: allow(float-eq) -- both strategies must pick the same argmin ETA
    assert event_pick.time == scan_pick[0]
    return {
        "flows": flow_count,
        "dispatches": dispatches,
        "scan_seconds": scan_seconds,
        "event_seconds": event_seconds,
        "speedup": scan_seconds / max(event_seconds, 1e-9),
    }


def end_to_end_comparison(flow_count=300):
    timings = {}
    fcts = {}
    for mode in ("scan", "event"):
        graph, flows = _synthetic_flows(flow_count, size=1e6)
        timing = get_switch_model("pica8-p3290")
        factory = lambda name: make_installer("naive", timing)
        config = SimulationConfig(
            te=TeAppConfig(epoch=1e6),
            baseline_occupancy=0,
            completion_mode=mode,
        )
        simulation = Simulation(graph, flows, factory, config)
        start = time.perf_counter()
        metrics = simulation.run()
        timings[mode] = time.perf_counter() - start
        fcts[mode] = metrics.fcts()
    assert len(fcts["event"]) == len(fcts["scan"]) == flow_count
    assert fcts["event"] == fcts["scan"], (
        "event mode must stay byte-identical to scan on pure "
        "arrival/completion workloads"
    )
    return {
        "flows": flow_count,
        "scan_seconds": timings["scan"],
        "event_seconds": timings["event"],
    }


SCALE_SIZES = (1_000, 10_000, 100_000, 1_000_000)
SCALE_INSTANTS = 10
# Full object-backend runs stop here: every burst arrival pays a whole
# progressive filling (no same-instant batching), so run time grows
# quadratically in the flow count.
SCALE_OBJECTS_RUN_CAP = 1_000


def _scaling_flows(count, instants=SCALE_INSTANTS, seed=23):
    """``count`` flows in ``instants`` same-instant batches on a k=4 pod.

    Sizes are large (≈1 GB) so no flow can complete before the run's
    ``max_time`` cut — the curve measures arrival/recompute scaling, not
    completion dynamics.
    """
    graph = build_fat_tree(FatTreeSpec(k=4, link_capacity=1e9))
    endpoints = hosts(graph)
    rng = np.random.default_rng(seed)
    per_instant = max(1, count // instants)
    flows = []
    for index in range(count):
        source = endpoints[index % len(endpoints)]
        destination = endpoints[(index * 7 + 3) % len(endpoints)]
        if source == destination:
            destination = endpoints[(index * 7 + 4) % len(endpoints)]
        flows.append(
            FlowSpec(
                source=source,
                destination=destination,
                size=1e9 + float(rng.integers(0, 1e6)),
                start_time=0.01 * min(index // per_instant, instants - 1),
            )
        )
    return graph, flows


def _scale_config(flow_state, completion_mode="scan"):
    return SimulationConfig(
        te=TeAppConfig(epoch=1e6),
        baseline_occupancy=0,
        flow_state=flow_state,
        completion_mode=completion_mode,
        max_time=0.5,
    )


def _loaded_backend(graph, flows, flow_state):
    """A Simulation with every flow active on its real provider path.

    Flows are injected directly (as in :func:`_loaded_simulation`) so the
    recompute timing below isolates the progressive filling from
    arrival dispatch."""
    timing = get_switch_model("pica8-p3290")
    factory = lambda name: make_installer("naive", timing)
    simulation = Simulation(graph, flows[:1], factory, _scale_config(flow_state))
    for spec in flows:
        path = simulation.provider.ecmp_paths(spec.source, spec.destination)[0]
        if simulation._store is not None:
            simulation._store.add(spec, path)
        else:
            simulation._active[spec.flow_id] = _ActiveFlow(
                spec=spec, remaining_bytes=spec.size, path=path
            )
    return simulation


def _time_recompute(simulation, repeats):
    best = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        simulation._recompute_rates()
        best = min(best, time.perf_counter() - start)
    return best


def _timed_run(graph, flows, flow_state):
    timing = get_switch_model("pica8-p3290")
    factory = lambda name: make_installer("naive", timing)
    simulation = Simulation(
        graph, flows, factory, _scale_config(flow_state, completion_mode="event")
    )
    start = time.perf_counter()
    metrics = simulation.run()
    seconds = time.perf_counter() - start
    return seconds, metrics.peak_active


def flow_state_scaling(scale_max, objects_cap):
    """The 1k → 1M curve: columnar vs object flow state at each size."""
    sizes = [size for size in SCALE_SIZES if size <= scale_max]
    if not sizes:
        sizes = [min(SCALE_SIZES)]
    recompute_rows = []
    run_rows = []
    objects_anchor = None  # (flows, measured seconds) for projection
    for size in sizes:
        graph, flows = _scaling_flows(size)
        # Best-of-N timings: the speedup gate compares two measurements,
        # so noise on either side must not fake a regression.
        repeats = 3 if size <= 100_000 else 2

        columnar = _loaded_backend(graph, flows, "columnar")
        columnar_seconds = _time_recompute(columnar, repeats)
        del columnar

        row = {
            "flows": size,
            "columnar_recompute_seconds": columnar_seconds,
            "objects_recompute_seconds": None,
            "objects_projected": False,
            "speedup": None,
        }
        if size <= objects_cap:
            objects = _loaded_backend(graph, flows, "objects")
            row["objects_recompute_seconds"] = _time_recompute(objects, repeats)
            objects_anchor = (size, row["objects_recompute_seconds"])
            del objects
        elif objects_anchor is not None:
            anchor_flows, anchor_seconds = objects_anchor
            row["objects_recompute_seconds"] = anchor_seconds * size / anchor_flows
            row["objects_projected"] = True
        if row["objects_recompute_seconds"]:
            row["speedup"] = row["objects_recompute_seconds"] / max(
                columnar_seconds, 1e-9
            )
        recompute_rows.append(row)

        run_seconds, peak = _timed_run(graph, flows, "columnar")
        assert peak == size, (
            f"columnar run at {size} flows peaked at {peak} concurrent flows"
        )
        run_rows.append(
            {"flows": size, "backend": "columnar", "seconds": run_seconds}
        )
        if size <= SCALE_OBJECTS_RUN_CAP:
            run_seconds, peak = _timed_run(graph, flows, "objects")
            assert peak == size
            run_rows.append(
                {"flows": size, "backend": "objects", "seconds": run_seconds}
            )
    return {
        "sizes": sizes,
        "instants": SCALE_INSTANTS,
        "objects_measure_cap": objects_cap,
        "objects_run_cap": SCALE_OBJECTS_RUN_CAP,
        "recompute": recompute_rows,
        "runs": run_rows,
    }


def sweep_speedup(workers):
    config = SensitivityConfig(duration=1.0)
    start = time.perf_counter()
    serial = run_sensitivity(config, workers=1)
    serial_seconds = time.perf_counter() - start
    start = time.perf_counter()
    parallel = run_sensitivity(config, workers=workers)
    parallel_seconds = time.perf_counter() - start
    assert parallel.rows == serial.rows
    return {
        "cells": len(serial.rows),
        "workers": workers,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": serial_seconds / max(parallel_seconds, 1e-9),
    }


def run_bench():
    flow_count = int(os.environ.get("BENCH_ENGINE_FLOWS", "10000"))
    dispatches = int(os.environ.get("BENCH_ENGINE_DISPATCHES", "2000"))
    cpu_count = os.cpu_count() or 1
    # More workers than cores just multiplies process startup; cap at the
    # detected core count so the recorded speedup is honest.
    workers = min(
        int(os.environ.get("BENCH_ENGINE_SWEEP_WORKERS", "4")),
        max(cpu_count, 1),
    )
    scale_max = int(os.environ.get("BENCH_ENGINE_SCALE_MAX", "1000000"))
    objects_cap = int(
        os.environ.get("BENCH_ENGINE_SCALE_OBJECTS_CAP", "100000")
    )
    return {
        "cpu_count": cpu_count,
        "dispatch": dispatch_microbench(flow_count, dispatches),
        "end_to_end": end_to_end_comparison(),
        "sweep": sweep_speedup(max(workers, 1)),
        "flow_scaling": flow_state_scaling(scale_max, objects_cap),
    }


def test_bench_engine(benchmark):
    payload = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    columnar_runs = [
        row
        for row in payload["flow_scaling"]["runs"]
        if row["backend"] == "columnar"
    ]
    write_bench_artifact(
        "engine",
        headline={
            "dispatch_speedup": payload["dispatch"]["speedup"],
            "dispatch_event_seconds": payload["dispatch"]["event_seconds"],
            "end_to_end_event_seconds": payload["end_to_end"]["event_seconds"],
            "sweep_speedup": payload["sweep"]["speedup"],
            "flow_scaling_max_flows": payload["flow_scaling"]["sizes"][-1],
            "flow_scaling_recompute_speedup": max(
                row["speedup"] or 0.0
                for row in payload["flow_scaling"]["recompute"]
                if not row["objects_projected"]
            ),
            "flow_scaling_columnar_run_seconds": columnar_runs[-1]["seconds"],
        },
        payload=payload,
        out=os.environ.get("BENCH_ENGINE_OUT"),
    )

    dispatch = payload["dispatch"]
    sweep = payload["sweep"]
    print()
    print(
        f"dispatch ({dispatch['flows']} flows x {dispatch['dispatches']}): "
        f"scan={dispatch['scan_seconds']:.3f}s "
        f"event={dispatch['event_seconds']:.3f}s "
        f"({dispatch['speedup']:.0f}x)"
    )
    print(
        f"end-to-end ({payload['end_to_end']['flows']} flows): "
        f"scan={payload['end_to_end']['scan_seconds']:.2f}s "
        f"event={payload['end_to_end']['event_seconds']:.2f}s"
    )
    print(
        f"sweep ({sweep['cells']} cells, {sweep['workers']} workers, "
        f"{payload['cpu_count']} cpus): serial={sweep['serial_seconds']:.2f}s "
        f"parallel={sweep['parallel_seconds']:.2f}s "
        f"({sweep['speedup']:.2f}x)"
    )

    scaling = payload["flow_scaling"]
    for row in scaling["recompute"]:
        objects_note = "-"
        if row["objects_recompute_seconds"] is not None:
            suffix = " (projected)" if row["objects_projected"] else ""
            objects_note = (
                f"{row['objects_recompute_seconds']:.4f}s{suffix} "
                f"({row['speedup']:.1f}x)"
            )
        print(
            f"recompute @ {row['flows']:>7} flows: "
            f"columnar={row['columnar_recompute_seconds']:.4f}s "
            f"objects={objects_note}"
        )
    for row in scaling["runs"]:
        print(
            f"run @ {row['flows']:>7} flows [{row['backend']}]: "
            f"{row['seconds']:.2f}s"
        )

    # The headline: scheduled completions beat the per-dispatch ETA scan by
    # orders of magnitude once the active set is large.
    assert dispatch["flows"] >= 10_000
    assert dispatch["speedup"] >= 10, dispatch

    # The columnar contract: ≥10× faster rate recompute at 100k flows
    # (measured head-to-head, not projected) and a completed run at the
    # curve's largest size with every flow concurrently active (the
    # per-size assert in flow_state_scaling already checked the peaks).
    measured = {
        row["flows"]: row
        for row in scaling["recompute"]
        if row["objects_recompute_seconds"] is not None
        and not row["objects_projected"]
    }
    if 100_000 in measured:
        assert measured[100_000]["speedup"] >= 10, measured[100_000]
    assert columnar_runs[-1]["flows"] == scaling["sizes"][-1]

    if payload["cpu_count"] < 2:
        # A 1-core runner cannot parallelize; the artifact records the
        # honest timings but a speedup assertion there is meaningless.
        print("sweep speedup gate skipped: fewer than 2 cores detected")
    elif os.environ.get("BENCH_ENGINE_REQUIRE_SPEEDUP"):
        assert sweep["speedup"] >= 2.0, sweep
