"""Benchmark regenerating Figure 14 (ASIC overhead vs. guarantee)."""

from repro.experiments import fig14_overhead

from .conftest import run_and_render


def test_bench_fig14(benchmark):
    result = run_and_render(benchmark, fig14_overhead.run)
    overhead = {(row[0], row[1]): row[4] for row in result.rows}
    for switch in {row[0] for row in result.rows}:
        # Overhead is monotone in the guarantee (bigger budget, bigger shadow).
        assert overhead[(switch, 1.0)] <= overhead[(switch, 5.0)] <= overhead[
            (switch, 10.0)
        ]
    # The abstract's headline: <5% overhead for the 5 ms guarantee (Pica8).
    assert overhead[("Pica8 P-3290", 5.0)] < 5.0
