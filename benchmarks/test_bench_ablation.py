"""Benchmark for the design-choice ablations (DESIGN.md Section 4)."""

from repro.experiments import ablation

from .conftest import run_and_render


def test_bench_ablation(benchmark):
    result = run_and_render(benchmark, ablation.run)
    by_variant = {row[0]: row for row in result.rows}
    full = by_variant["full Hermes"]
    # Atomic migration is what keeps the coverage gap at zero.
    assert full[6] == 0
    assert by_variant["non-atomic migration"][6] > 0
    # The migration optimizer reduces what gets written to the main table.
    assert by_variant["no migration optimizer"][5] > full[5]
    assert by_variant["no migration optimizer"][7] > full[7]
    # The simple threshold trigger violates more than predictive Hermes.
    assert by_variant["threshold trigger (50%)"][3] >= full[3]
