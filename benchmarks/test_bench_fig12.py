"""Benchmark regenerating Figure 12 (Hermes-SIMPLE threshold sweep)."""

from repro.experiments import fig12_simple

from .conftest import run_and_render


def test_bench_fig12(benchmark):
    result = run_and_render(benchmark, fig12_simple.run)
    by_key = {(row[0], row[1]): row for row in result.rows}
    for switch in {row[0] for row in result.rows}:
        zero = by_key[(switch, 0)]
        hundred = by_key[(switch, 100)]
        # Threshold 0%: (near-)zero violations but the most migrations.
        assert zero[2] <= 1.0, switch
        assert zero[3] >= hundred[3], switch
        # Violations grow as the threshold loosens.
        assert hundred[2] >= zero[2], switch
        # Constant migration at threshold 0 costs more migrations than
        # regular (predictive) Hermes.
        assert zero[3] >= zero[5], switch
