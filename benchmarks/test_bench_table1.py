"""Benchmark regenerating Table 1 (update rate vs. occupancy)."""

from repro.experiments import table1

from .conftest import run_and_render


def test_bench_table1(benchmark):
    result = run_and_render(benchmark, table1.run)
    ratios = result.column("ratio")
    # The table-model calibration must reproduce the published rates.
    assert all(0.95 <= ratio <= 1.05 for ratio in ratios)
    # The occupancy cliff: Dell at 500 is >10x slower than at 250.
    by_key = {
        (row[0], row[1]): row[3] for row in result.rows
    }
    assert by_key[("Dell 8132F", 250)] / by_key[("Dell 8132F", 500)] > 10
