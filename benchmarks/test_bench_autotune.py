"""Benchmark for the online slack auto-tuner (Section 8.6 future work)."""

from repro.experiments import autotune_exp

from .conftest import run_and_render


def test_bench_autotune(benchmark):
    result = run_and_render(benchmark, autotune_exp.run)
    by_config = {row[0]: row for row in result.rows}
    tuned = by_config["auto-tuned (start 40%)"]
    fixed_zero = by_config["fixed slack 0%"]
    fixed_full = by_config["fixed slack 100%"]
    # The tuner raises its slack under pressure...
    assert tuned[4] > 0.4
    assert tuned[5] >= 1  # at least one adjustment happened
    # ...and ends no worse than the under-provisioned fixed config on both
    # violations and mean latency.
    assert tuned[3] <= fixed_zero[3]
    assert tuned[1] <= fixed_zero[1] * 1.05
    # The hand-tuned configuration remains the latency reference point.
    assert fixed_full[1] <= tuned[1]
