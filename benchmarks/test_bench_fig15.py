"""Benchmark regenerating Figure 15 (algorithm runtimes vs. rule count)."""

from repro.experiments import fig15_cpu

from .conftest import run_and_render


def _headline(result):
    """The hermes-bench/1 comparison surface: per-rule insertion cost and
    peak migration memory at the largest swept size."""
    return {
        "insertion_ms_per_rule": result.column("insertion algorithm (ms/rule)")[-1],
        "migration_ms_total": result.column("migration (ms total)")[-1],
        "peak_memory_mib": result.column("peak memory (MiB)")[-1],
    }


def test_bench_fig15(benchmark):
    config = fig15_cpu.Fig15Config(rule_counts=(100, 500, 1000, 2000))
    result = run_and_render(
        benchmark, fig15_cpu.run, config, suite="fig15", headline=_headline
    )
    counts = result.column("rules")
    insertion = result.column("insertion algorithm (ms/rule)")
    migration = result.column("migration (ms total)")
    memory = result.column("peak memory (MiB)")
    scale = counts[-1] / counts[0]
    # Insertion is near-flat; migration grows super-linearly.
    assert insertion[-1] < insertion[0] * 5
    assert migration[-1] > migration[0] * scale
    # Memory grows roughly linearly with the rules moved.
    assert memory[-1] > memory[0]
