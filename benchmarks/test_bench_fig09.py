"""Benchmark regenerating Figure 9 (flow completion time CDFs)."""

from repro.experiments import fig09_fct

from .conftest import run_and_render


def test_bench_fig09(benchmark):
    result = run_and_render(benchmark, fig09_fct.run)
    medians = {(row[0], row[1]): row[3] for row in result.rows}
    # The short-flow panel is where control latency shows: Hermes's median
    # beats every raw switch there; the all-flows panel converges (transfer
    # time dominates), so Hermes only needs to stay within noise of it.
    for scheme in ("Dell 8132F", "HP 5406zl", "Pica8 P-3290"):
        assert medians[("facebook/short", "Hermes")] <= medians[
            ("facebook/short", scheme)
        ] * 1.02, scheme
        assert medians[("facebook/all", "Hermes")] <= medians[
            ("facebook/all", scheme)
        ] * 1.10, scheme
