"""Benchmark for the chaos (lossy control channel) extension experiment."""

from repro.experiments import chaos

from .conftest import run_and_render


def test_bench_chaos(benchmark):
    result = run_and_render(benchmark, chaos.run)
    # rows: (scheme, drop rate, installs, retries, injected, lost, dups,
    #        invariant violations, blackhole ms)
    by_cell = {(row[0], row[1]): row for row in result.rows}

    for (scheme, drop_rate), row in by_cell.items():
        installs, retries, injected, lost, dups, invariant = row[2:8]
        # Nobody ever corrupts the TCAM: no duplicate entries, and the
        # partition invariant holds in every cell.
        assert dups == 0, (scheme, drop_rate)
        assert invariant == 0, (scheme, drop_rate)
        if "resilient" in scheme:
            # The headline guarantee: resilient delivery loses nothing.
            assert lost == 0, (scheme, drop_rate)
            if drop_rate > 0:
                assert injected > 0 and retries > 0
        elif drop_rate >= 0.1:
            # Fire-and-forget loses installs once the channel is lossy.
            assert lost > 0, (scheme, drop_rate)

    # Resilience is free when the channel is clean: at drop rate 0 the
    # resilient channel performs the same installs with zero retries
    # (overhead bounded well under the 5% budget — it is identical work).
    for base, hardened in (
        ("raw switch", "raw + resilient"),
        ("Hermes", "Hermes + resilient"),
    ):
        naive_row = by_cell[(base, 0.0)]
        resilient_row = by_cell[(hardened, 0.0)]
        assert resilient_row[2] == naive_row[2]  # identical install counts
        assert resilient_row[3] == 0  # no retries
        assert resilient_row[5] == 0  # nothing lost
