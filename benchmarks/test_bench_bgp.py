"""Benchmark regenerating the Sections 2.3 / 8.4 BGP results."""

from repro.experiments import bgp_section

from .conftest import run_and_render


def test_bench_bgp(benchmark):
    result = run_and_render(benchmark, bgp_section.run)
    for row in result.rows:
        (_router, updates, fib_actions, median_rate, max_rate,
         raw_p50, raw_p99, hermes_p50, hermes_p99) = row
        # RIB suppression: not every BGP update reaches the FIB.
        assert fib_actions < updates
        # The Section 2.3 shape: bursty tails well above the median rate.
        assert max_rate > 4 * median_rate
        # Hermes bounds installation latency through the bursts.
        assert hermes_p50 < raw_p50
        assert hermes_p99 < raw_p99
    # At least one vantage point shows the >1000 updates/s tail.
    assert max(row[4] for row in result.rows) > 1000
