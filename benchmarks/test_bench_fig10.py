"""Benchmark regenerating Figure 10 (Hermes vs. Tango vs. ESPRES)."""

from repro.experiments import fig10_related

from .conftest import run_and_render


def test_bench_fig10(benchmark):
    result = run_and_render(benchmark, fig10_related.run)
    medians = {(row[0], row[1]): row[3] for row in result.rows}
    for stream in ("facebook", "geant"):
        hermes = medians[(stream, "Hermes")]
        # The paper: Hermes outperforms both by more than 50% at the median.
        assert hermes < 0.5 * medians[(stream, "Tango")], stream
        assert hermes < 0.5 * medians[(stream, "ESPRES")], stream
    # Tango's aggregation only helps on the structured (facebook) stream.
    assert medians[("facebook", "Tango")] < medians[("facebook", "ESPRES")]
