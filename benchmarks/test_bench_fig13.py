"""Benchmark regenerating Figure 13 (insertion latency vs. slack factor)."""

from repro.experiments import fig13_slack

from .conftest import run_and_render


def test_bench_fig13(benchmark):
    result = run_and_render(benchmark, fig13_slack.run)
    mean_of = {(row[0], row[1], row[2]): row[3] for row in result.rows}
    # 1000 updates/s at full overlap: 100% slack beats 0% slack clearly.
    assert mean_of[(1000, 100, 100)] < mean_of[(1000, 100, 0)] * 0.6
    # 200 updates/s: slack barely matters (low rate is easy).
    assert mean_of[(200, 0, 100)] <= mean_of[(200, 0, 0)] * 1.2
    # Higher update rates hurt at low slack.
    assert mean_of[(1000, 100, 0)] > mean_of[(200, 100, 0)]
