"""Benchmark for the failure-recovery extension experiment."""

from repro.experiments import failover

from .conftest import run_and_render


def test_bench_failover(benchmark):
    result = run_and_render(benchmark, failover.run)
    blackhole = {row[0]: row[1] for row in result.rows}
    # Zero-latency control is the lower bound.
    assert blackhole["zero-latency"] <= min(blackhole.values()) + 1e-9
    # Hermes repairs close to that bound; the raw switch pays for every
    # repair rule at occupancy-driven TCAM latency.
    assert blackhole["Hermes"] < 0.2 * blackhole["raw switch"]
    # Repairs actually happened everywhere.
    assert all(row[3] > 0 for row in result.rows)
