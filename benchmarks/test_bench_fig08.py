"""Benchmark regenerating Figure 8 (rule installation time CDFs)."""

from repro.experiments import fig08_rit

from .conftest import run_and_render


def test_bench_fig08(benchmark):
    result = run_and_render(benchmark, fig08_rit.run)
    medians = {(row[0], row[1]): row[3] for row in result.rows}
    for workload in ("facebook", "geant"):
        hermes = medians[(workload, "Hermes")]
        for scheme in ("Dell 8132F", "HP 5406zl", "Pica8 P-3290"):
            raw = medians[(workload, scheme)]
            # The paper reports 80-94% median RIT improvement.
            assert (raw - hermes) / raw > 0.8, (workload, scheme)
