"""Benchmark regenerating Figure 1 (increased ratio of JCT)."""

import numpy as np

from repro.experiments import fig01_jct

from .conftest import run_and_render


def test_bench_fig01(benchmark):
    result = run_and_render(benchmark, fig01_jct.run)
    p95 = {(row[0], row[1]): row[-1] for row in result.rows}
    p50 = {(row[0], row[1]): row[3] for row in result.rows}
    # Short jobs suffer more than long jobs on the raw switch.
    assert p95[("Pica8 P-3290", "short")] >= p95[("Pica8 P-3290", "long")]
    # Hermes sits closest to the zero-latency baseline (ratio ~1).
    assert abs(p50[("Hermes", "short")] - 1.0) <= abs(
        p50[("Pica8 P-3290", "short")] - 1.0
    ) + 1e-9
    assert p95[("Hermes", "short")] <= p95[("Pica8 P-3290", "short")] + 1e-9
