"""Benchmark regenerating Figure 11 (installation-time series)."""

import numpy as np

from repro.experiments import fig11_timeseries

from .conftest import run_and_render


def test_bench_fig11(benchmark):
    result = run_and_render(benchmark, fig11_timeseries.run)
    facebook = [row for row in result.rows if row[0] == "facebook"]
    geant = [row for row in result.rows if row[0] == "geant"]
    # Baselines grow with occupancy: the last sample far exceeds the first.
    assert facebook[-1][3] > facebook[0][3]  # ESPRES grows
    assert geant[-1][2] > geant[0][2]  # Tango grows on geant too
    # Hermes stays flat: its worst sample is a small multiple of its best.
    hermes_series = [row[4] for row in result.rows]
    assert max(hermes_series) < 12 * max(min(hermes_series), 0.1)
    # Tango beats ESPRES on the structured stream by the end.
    assert facebook[-1][2] < facebook[-1][3]
