"""Benchmark regenerating the Section 8.6 predictor/corrector comparison."""

from repro.experiments import sensitivity

from .conftest import run_and_render


def test_bench_sensitivity(benchmark):
    result = run_and_render(benchmark, sensitivity.run)
    means = {(row[0], row[1]): row[2] for row in result.rows}
    best = min(means, key=means.get)
    # The paper's finding: Cubic Spline + Slack is the most effective pair.
    assert best == ("cubic-spline", "slack")
    # And it wins by a wide margin over the alternatives (paper: 80-94%).
    others = [value for key, value in means.items() if key != best]
    assert means[best] < 0.7 * min(others)
