"""Tests for the ESPRES / Tango / ShadowSwitch baselines."""

import pytest

from repro.baselines import (
    EspresInstaller,
    NaiveInstaller,
    ShadowSwitchInstaller,
    TangoInstaller,
    make_installer,
)
from repro.switchsim import FlowMod
from repro.tcam import Action, Prefix, Rule, pica8_p3290


def rule(prefix, priority, port=1):
    return Rule.from_prefix(prefix, priority, Action.output(port))


def key(address):
    return Prefix.from_string(address).network


def ascending_priority_batch(count=20, start=100):
    """A batch whose arrival order (ascending priority) maximizes shifting."""
    return [
        FlowMod.add(rule(f"10.{index}.0.0/16", start + index))
        for index in range(count)
    ]


class TestEspres:
    def test_reordering_beats_naive_on_adversarial_batch(self):
        naive = NaiveInstaller(pica8_p3290())
        espres = EspresInstaller(pica8_p3290())
        naive_latency = sum(
            r.latency for r in naive.apply_batch(ascending_priority_batch())
        )
        espres_latency = sum(
            r.latency for r in espres.apply_batch(ascending_priority_batch())
        )
        assert espres_latency < naive_latency

    def test_results_align_with_input_order(self):
        espres = EspresInstaller(pica8_p3290())
        mods = ascending_priority_batch(count=5)
        results = espres.apply_batch(mods)
        assert len(results) == 5
        for flow_mod, result in zip(mods, results):
            assert result.installed_rule_ids == (flow_mod.rule.rule_id,)

    def test_deletes_scheduled_before_adds(self):
        espres = EspresInstaller(pica8_p3290(), capacity=4)
        resident = rule("10.0.0.0/16", 10)
        espres.apply(FlowMod.add(resident))
        for index in range(3):
            espres.apply(FlowMod.add(rule(f"11.{index}.0.0/16", 10)))
        assert espres.table.is_full
        # Naive order would overflow: add arrives before the delete.
        batch = [FlowMod.add(rule("12.0.0.0/16", 10)), FlowMod.delete(resident.rule_id)]
        espres.apply_batch(batch)
        assert espres.occupancy() == 4

    def test_single_mods_pass_through(self):
        espres = EspresInstaller(pica8_p3290())
        r = rule("10.0.0.0/8", 5, port=3)
        espres.apply(FlowMod.add(r))
        assert espres.lookup(key("10.1.1.1")).action.port == 3


class TestTango:
    def test_sibling_aggregation_reduces_physical_entries(self):
        tango = TangoInstaller(pica8_p3290())
        batch = [
            FlowMod.add(rule(f"10.0.{index}.0/24", 50, port=2)) for index in range(8)
        ]
        tango.apply_batch(batch)
        assert tango.occupancy() == 1
        assert tango.logical_rule_count() == 8

    def test_aggregation_preserves_lookup_semantics(self):
        tango = TangoInstaller(pica8_p3290())
        batch = [
            FlowMod.add(rule("10.0.0.0/24", 50, port=2)),
            FlowMod.add(rule("10.0.1.0/24", 50, port=2)),
            FlowMod.add(rule("10.0.2.0/24", 50, port=3)),  # different action
        ]
        tango.apply_batch(batch)
        assert tango.lookup(key("10.0.0.5")).action.port == 2
        assert tango.lookup(key("10.0.1.5")).action.port == 2
        assert tango.lookup(key("10.0.2.5")).action.port == 3
        assert tango.occupancy() == 2

    def test_different_priorities_not_aggregated(self):
        tango = TangoInstaller(pica8_p3290())
        batch = [
            FlowMod.add(rule("10.0.0.0/24", 50)),
            FlowMod.add(rule("10.0.1.0/24", 60)),
        ]
        tango.apply_batch(batch)
        assert tango.occupancy() == 2

    def test_member_delete_splits_aggregate(self):
        tango = TangoInstaller(pica8_p3290())
        members = [rule(f"10.0.{index}.0/24", 50, port=2) for index in range(4)]
        tango.apply_batch([FlowMod.add(member) for member in members])
        assert tango.occupancy() == 1
        tango.apply(FlowMod.delete(members[0].rule_id))
        # The survivors re-aggregate: 10.0.1/24 alone + 10.0.2-3 -> /23.
        assert tango.logical_rule_count() == 3
        assert tango.lookup(key("10.0.0.5")) is None
        assert tango.lookup(key("10.0.3.5")).action.port == 2

    def test_aggregate_member_modify_splits(self):
        tango = TangoInstaller(pica8_p3290())
        members = [rule(f"10.0.{index}.0/24", 50, port=2) for index in range(2)]
        tango.apply_batch([FlowMod.add(member) for member in members])
        tango.apply(FlowMod.modify(members[0].rule_id, action=Action.output(9)))
        assert tango.lookup(key("10.0.0.5")).action.port == 9
        assert tango.lookup(key("10.0.1.5")).action.port == 2

    def test_plain_modify_in_place(self):
        tango = TangoInstaller(pica8_p3290())
        r = rule("10.0.0.0/24", 50, port=2)
        tango.apply(FlowMod.add(r))
        tango.apply(FlowMod.modify(r.rule_id, action=Action.output(4)))
        assert tango.lookup(key("10.0.0.5")).action.port == 4

    def test_delete_unknown_raises(self):
        with pytest.raises(KeyError):
            TangoInstaller(pica8_p3290()).apply(FlowMod.delete(12345))

    def test_aggregation_beats_espres_on_sibling_heavy_batch(self):
        espres = EspresInstaller(pica8_p3290())
        tango = TangoInstaller(pica8_p3290())
        make_batch = lambda: [
            FlowMod.add(rule(f"10.{index // 16}.{index % 16}.0/24", 50))
            for index in range(64)
        ]
        espres_latency = sum(r.latency for r in espres.apply_batch(make_batch()))
        tango_latency = sum(r.latency for r in tango.apply_batch(make_batch()))
        assert tango_latency < espres_latency


class TestShadowSwitch:
    def test_insert_is_software_fast(self):
        shadow = ShadowSwitchInstaller(pica8_p3290())
        result = shadow.apply(FlowMod.add(rule("10.0.0.0/8", 50)))
        assert result.latency == pytest.approx(5e-5)
        assert shadow.software_occupancy() == 1
        assert shadow.tcam.occupancy == 0

    def test_background_sync_moves_rules_to_tcam(self):
        shadow = ShadowSwitchInstaller(pica8_p3290(), sync_interval=0.05)
        shadow.apply(FlowMod.add(rule("10.0.0.0/8", 50)))
        background = shadow.advance_time(0.1)
        assert background > 0
        assert shadow.software_occupancy() == 0
        assert shadow.tcam.occupancy == 1
        assert shadow.time_in_software and shadow.time_in_software[0] >= 0

    def test_lookup_spans_both_levels(self):
        shadow = ShadowSwitchInstaller(pica8_p3290(), sync_interval=0.05)
        old = rule("10.0.0.0/8", 10, port=1)
        shadow.apply(FlowMod.add(old))
        shadow.advance_time(0.1)  # old now in TCAM
        new = rule("10.0.0.0/16", 90, port=2)
        shadow.apply(FlowMod.add(new))  # still in software
        assert shadow.lookup(key("10.0.1.1")).action.port == 2
        assert shadow.lookup(key("10.9.1.1")).action.port == 1

    def test_delete_from_software(self):
        shadow = ShadowSwitchInstaller(pica8_p3290())
        r = rule("10.0.0.0/8", 50)
        shadow.apply(FlowMod.add(r))
        shadow.apply(FlowMod.delete(r.rule_id))
        assert shadow.occupancy() == 0

    def test_delete_from_tcam(self):
        shadow = ShadowSwitchInstaller(pica8_p3290(), sync_interval=0.01)
        r = rule("10.0.0.0/8", 50)
        shadow.apply(FlowMod.add(r))
        shadow.advance_time(0.05)
        shadow.apply(FlowMod.delete(r.rule_id))
        assert shadow.occupancy() == 0

    def test_software_resident_fraction(self):
        shadow = ShadowSwitchInstaller(pica8_p3290(), sync_interval=1.0)
        assert shadow.software_resident_fraction() == 0.0
        shadow.apply(FlowMod.add(rule("10.0.0.0/8", 50)))
        assert shadow.software_resident_fraction() == 1.0

    def test_modify_in_software(self):
        shadow = ShadowSwitchInstaller(pica8_p3290())
        r = rule("10.0.0.0/8", 50, port=1)
        shadow.apply(FlowMod.add(r))
        shadow.apply(FlowMod.modify(r.rule_id, action=Action.output(6)))
        assert shadow.lookup(key("10.1.1.1")).action.port == 6


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("naive", NaiveInstaller),
            ("espres", EspresInstaller),
            ("tango", TangoInstaller),
            ("shadowswitch", ShadowSwitchInstaller),
        ],
    )
    def test_make_installer(self, name, cls):
        assert isinstance(make_installer(name, pica8_p3290()), cls)

    def test_make_hermes(self):
        from repro.core import HermesInstaller

        assert isinstance(
            make_installer("hermes", pica8_p3290()), HermesInstaller
        )

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_installer("magic", pica8_p3290())
