"""Tests for the fault-injection subsystem (specs, injector, log, table)."""

import pytest

from repro.faults import (
    AgentCrash,
    AgentStall,
    FaultInjector,
    FaultLog,
    FaultPlan,
    FaultyTable,
    FlowModFault,
    TcamWriteError,
    TcamWriteFault,
    verified_insert,
)
from repro.tcam import Action, Rule, TcamTable, pica8_p3290
from repro.tcam.table import TableFullError


def rule(prefix, priority):
    return Rule.from_prefix(prefix, priority, Action.output(1))


class TestSpecs:
    def test_null_plan_by_default(self):
        assert FaultPlan().is_null

    def test_any_nonzero_probability_is_not_null(self):
        assert not FaultPlan(flowmod=FlowModFault(drop=0.1)).is_null
        assert not FaultPlan(tcam=TcamWriteFault(silent=0.5)).is_null
        assert not FaultPlan(stall=AgentStall(probability=0.2, duration=1.0)).is_null
        assert not FaultPlan(crash=AgentCrash(times=(1.0,))).is_null

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            FlowModFault(drop=1.5)
        with pytest.raises(ValueError):
            TcamWriteFault(fail=-0.1)

    def test_crash_window(self):
        crash = AgentCrash(times=(2.0,), restart_delay=0.5)
        assert not crash.down_at(1.9)
        assert crash.down_at(2.0)
        assert crash.down_at(2.4)
        assert not crash.down_at(2.5)


class TestDeterminism:
    def test_same_seed_same_verdicts(self):
        plan = FaultPlan(flowmod=FlowModFault(drop=0.4, duplicate=0.2))
        a = FaultInjector(plan, seed=9)
        b = FaultInjector(plan, seed=9)
        verdicts_a = [a.flowmod_verdict(now=i * 0.1).kind for i in range(64)]
        verdicts_b = [b.flowmod_verdict(now=i * 0.1).kind for i in range(64)]
        assert verdicts_a == verdicts_b

    def test_different_seeds_differ(self):
        plan = FaultPlan(flowmod=FlowModFault(drop=0.5))
        a = FaultInjector(plan, seed=1)
        b = FaultInjector(plan, seed=2)
        assert [a.flowmod_verdict(0.0).kind for _ in range(64)] != [
            b.flowmod_verdict(0.0).kind for _ in range(64)
        ]

    def test_null_plan_consumes_no_randomness(self):
        # The determinism contract: attaching a null-plan injector must not
        # advance the RNG, so fault-free runs stay byte-identical.
        injector = FaultInjector(FaultPlan(), seed=3)
        before = injector.rng.bit_generator.state
        for index in range(16):
            assert injector.flowmod_verdict(now=index * 1.0).kind == "deliver"
            assert injector.write_verdict(now=index * 1.0) == "ok"
            assert not injector.agent_down("sw", index * 1.0)
            assert injector.stall_duration("sw", index * 1.0) == 0.0
        assert injector.rng.bit_generator.state == before
        assert len(injector.log) == 0

    def test_child_rng_streams_are_stable_and_independent(self):
        injector = FaultInjector(seed=5)
        a1 = injector.child_rng("channel:sw1").random(4).tolist()
        a2 = injector.child_rng("channel:sw1").random(4).tolist()
        b = injector.child_rng("channel:sw2").random(4).tolist()
        assert a1 == a2
        assert a1 != b


class TestFaultLog:
    def test_records_and_counts(self):
        log = FaultLog()
        log.record("flowmod-drop", time=1.0, target="sw1", xid=7)
        log.record("flowmod-drop", time=2.0, target="sw2", xid=8)
        log.record("tcam-write-silent", time=2.5, target="main")
        assert len(log) == 3
        assert log.count("flowmod-drop") == 2
        assert log.counts()["tcam-write-silent"] == 1
        drops = log.events("flowmod-drop")
        assert [event.detail["xid"] for event in drops] == [7, 8]

    def test_injector_logs_every_fault(self):
        plan = FaultPlan(flowmod=FlowModFault(drop=1.0))
        injector = FaultInjector(plan, seed=0)
        for _ in range(5):
            injector.flowmod_verdict(now=0.0)
        assert len(injector.log) == 5


class TestFaultyTable:
    def _table(self):
        return TcamTable(pica8_p3290(), name="main")

    def test_transparent_without_faults(self):
        injector = FaultInjector(FaultPlan(), seed=0)
        table = FaultyTable(self._table(), injector)
        r = rule("10.0.0.0/24", 5)
        table.insert(r)
        assert r.rule_id in table
        assert len(table) == 1
        assert table.get(r.rule_id).priority == 5

    def test_visible_failure_raises_and_charges_latency(self):
        plan = FaultPlan(tcam=TcamWriteFault(fail=1.0))
        table = FaultyTable(self._table(), FaultInjector(plan, seed=0))
        with pytest.raises(TcamWriteError) as excinfo:
            table.insert(rule("10.0.0.0/24", 5))
        assert excinfo.value.latency > 0
        assert len(table) == 0

    def test_silent_failure_acks_but_installs_nothing(self):
        plan = FaultPlan(tcam=TcamWriteFault(silent=1.0))
        table = FaultyTable(self._table(), FaultInjector(plan, seed=0))
        result = table.insert(rule("10.0.0.0/24", 5))
        assert result.latency > 0  # the switch did the work...
        assert len(table) == 0  # ...but nothing landed

    def test_deletes_stay_reliable(self):
        plan = FaultPlan(tcam=TcamWriteFault(fail=1.0, silent=0.0))
        inner = self._table()
        r = rule("10.0.0.0/24", 5)
        inner.insert(r)
        table = FaultyTable(inner, FaultInjector(plan, seed=0))
        table.delete(r.rule_id)
        assert r.rule_id not in table

    def test_capacity_errors_surface(self):
        timing = pica8_p3290()
        inner = TcamTable(timing, capacity=1, name="tiny")
        inner.insert(rule("10.0.0.0/24", 5))
        table = FaultyTable(inner, FaultInjector(FaultPlan(), seed=0))
        with pytest.raises(TableFullError):
            table.insert(rule("10.0.1.0/24", 6))


class TestVerifiedInsert:
    def test_recovers_from_silent_failures(self):
        # silent=0.5: some writes no-op; verified_insert must re-issue
        # until the rule is actually resident.
        plan = FaultPlan(tcam=TcamWriteFault(silent=0.5))
        table = FaultyTable(
            TcamTable(pica8_p3290(), name="main"), FaultInjector(plan, seed=2)
        )
        landed = 0
        for index in range(32):
            latency, ok = verified_insert(
                table, rule(f"10.0.{index}.0/24", 5), attempts=8
            )
            assert latency > 0
            landed += int(ok)
        assert landed == 32
        assert len(table) == 32

    def test_reports_failure_after_budget(self):
        plan = FaultPlan(tcam=TcamWriteFault(fail=1.0))
        table = FaultyTable(
            TcamTable(pica8_p3290(), name="main"), FaultInjector(plan, seed=0)
        )
        latency, ok = verified_insert(table, rule("10.0.0.0/24", 5), attempts=3)
        assert not ok
        assert latency > 0
        assert len(table) == 0

    def test_attempts_validation(self):
        table = TcamTable(pica8_p3290(), name="main")
        with pytest.raises(ValueError):
            verified_insert(table, rule("10.0.0.0/24", 5), attempts=0)
