"""Tests for traffic matrices, flow synthesis, jobs, and microbench traces."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.switchsim import FlowModCommand
from repro.topology import abilene, pops
from repro.traffic import (
    MicrobenchConfig,
    PriorityMode,
    flows_from_matrix,
    flows_of,
    generate_jobs,
    generate_trace,
    gravity_matrix,
    is_short_job,
    link_loads_from_matrix,
    matrix_total,
    sample_job_size,
    scale_matrix,
    seed_rules,
    task_counts_for,
    tomogravity_matrix,
)


class TestGravityMatrix:
    def test_total_matches_request(self):
        tm = gravity_matrix(pops(abilene()), total_traffic=10e9)
        assert matrix_total(tm) == pytest.approx(10e9)

    def test_diagonal_absent(self):
        tm = gravity_matrix(["a", "b", "c"], 100.0)
        assert ("a", "a") not in tm
        assert len(tm) == 6

    def test_weights_shape_the_matrix(self):
        tm = gravity_matrix(
            ["big", "mid", "tiny"],
            100.0,
            weights={"big": 10.0, "mid": 1.0, "tiny": 0.1},
        )
        assert tm[("big", "mid")] > tm[("mid", "tiny")]

    def test_validation(self):
        with pytest.raises(ValueError):
            gravity_matrix(["only"], 10.0)
        with pytest.raises(ValueError):
            gravity_matrix(["a", "b"], -1.0)
        with pytest.raises(ValueError):
            gravity_matrix(["a", "b"], 1.0, weights={"a": 0.0, "b": 0.0})

    def test_deterministic_default_weights(self):
        nodes = pops(abilene())
        assert gravity_matrix(nodes, 1e9) == gravity_matrix(nodes, 1e9)


class TestTomogravity:
    def test_recovers_gravity_matrix_from_loads(self):
        graph = abilene()
        truth = gravity_matrix(pops(graph), 50e9)
        loads = link_loads_from_matrix(graph, truth)
        estimate = tomogravity_matrix(graph, loads)
        error = sum(abs(estimate[p] - truth[p]) for p in truth) / matrix_total(truth)
        assert error < 0.10

    def test_estimates_are_nonnegative(self):
        graph = abilene()
        loads = link_loads_from_matrix(graph, gravity_matrix(pops(graph), 1e9))
        estimate = tomogravity_matrix(graph, loads)
        assert all(volume >= 0 for volume in estimate.values())

    def test_reproduces_link_loads(self):
        graph = abilene()
        truth = gravity_matrix(pops(graph), 10e9)
        loads = link_loads_from_matrix(graph, truth)
        estimated_loads = link_loads_from_matrix(
            graph, tomogravity_matrix(graph, loads)
        )
        for link, load in loads.items():
            assert estimated_loads[link] == pytest.approx(load, rel=0.05, abs=1e6)


class TestScaling:
    def test_scale(self):
        tm = gravity_matrix(["a", "b"], 100.0)
        assert matrix_total(scale_matrix(tm, 0.5)) == pytest.approx(50.0)

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            scale_matrix({}, -1.0)


class TestFlowSynthesis:
    def test_flows_sorted_and_in_window(self):
        tm = gravity_matrix(pops(abilene()), 1e9)
        flows = flows_from_matrix(tm, duration=2.0, rng=np.random.default_rng(0))
        times = [flow.start_time for flow in flows]
        assert times == sorted(times)
        assert all(0 <= t < 2.0 for t in times)

    def test_volume_roughly_realized(self):
        tm = gravity_matrix(pops(abilene()), 1e9)
        flows = flows_from_matrix(
            tm, duration=20.0, mean_flow_size=1e6, rng=np.random.default_rng(1)
        )
        realized = sum(flow.size for flow in flows) * 8 / 20.0
        assert realized == pytest.approx(1e9, rel=0.15)

    def test_endpoints_differ(self):
        tm = gravity_matrix(pops(abilene()), 1e9)
        for flow in flows_from_matrix(tm, duration=1.0):
            assert flow.source != flow.destination

    def test_validation(self):
        with pytest.raises(ValueError):
            flows_from_matrix({}, duration=0.0)


class TestFacebookJobs:
    def test_job_count_and_ordering(self):
        hosts = [f"h{i}" for i in range(64)]
        jobs = generate_jobs(hosts, job_count=50, rng=np.random.default_rng(0))
        assert len(jobs) == 50
        starts = [job.start_time for job in jobs]
        assert starts == sorted(starts)

    def test_majority_short_with_heavy_tail(self):
        rng = np.random.default_rng(7)
        sizes = [sample_job_size(rng) for _ in range(3000)]
        short_fraction = np.mean([size < 1e9 for size in sizes])
        assert 0.7 < short_fraction < 0.97
        assert max(sizes) > 50e9  # the tail reaches far

    def test_short_long_split_helper(self):
        hosts = [f"h{i}" for i in range(64)]
        jobs = generate_jobs(hosts, job_count=200, rng=np.random.default_rng(3))
        labels = {is_short_job(job) for job in jobs}
        assert labels == {True, False}  # both classes present

    def test_task_counts_scale_with_size(self):
        assert task_counts_for(1e6) <= task_counts_for(1e9) <= task_counts_for(1e12)

    def test_flows_respect_job_membership(self):
        hosts = [f"h{i}" for i in range(64)]
        jobs = generate_jobs(hosts, job_count=10, rng=np.random.default_rng(0))
        flows = flows_of(jobs)
        job_ids = {job.job_id for job in jobs}
        assert all(flow.job_id in job_ids for flow in flows)

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_jobs(["a"], job_count=5)
        with pytest.raises(ValueError):
            generate_jobs(["a", "b"], job_count=0)


class TestMicrobench:
    def test_trace_respects_rate_and_duration(self):
        config = MicrobenchConfig(arrival_rate=500, duration=2.0, overlap_rate=0.0)
        trace = generate_trace(config)
        assert len(trace) == 1000
        assert trace[-1].time == pytest.approx(2.0)

    def test_all_adds(self):
        for timed in generate_trace(MicrobenchConfig(arrival_rate=100, duration=0.5)):
            assert timed.flow_mod.command is FlowModCommand.ADD

    def test_zero_overlap_rules_miss_seeds(self):
        config = MicrobenchConfig(arrival_rate=200, duration=1.0, overlap_rate=0.0)
        seeds = seed_rules(config)
        for timed in generate_trace(config):
            for seed in seeds:
                assert not timed.flow_mod.rule.overlaps(seed)

    def test_full_overlap_rules_hit_seeds(self):
        config = MicrobenchConfig(arrival_rate=200, duration=1.0, overlap_rate=1.0)
        seeds = seed_rules(config)
        for timed in generate_trace(config):
            rule = timed.flow_mod.rule
            assert any(rule.overlaps(seed) for seed in seeds)
            # Overlapping rules sit below every seed priority, so the
            # partitioner must act on them.
            assert all(rule.priority < seed.priority for seed in seeds)

    def test_priority_modes(self):
        base = dict(arrival_rate=100, duration=1.0)
        ascending = [
            t.flow_mod.rule.priority
            for t in generate_trace(
                MicrobenchConfig(priority_mode=PriorityMode.ASCENDING, **base)
            )
        ]
        assert ascending == sorted(ascending)
        descending = [
            t.flow_mod.rule.priority
            for t in generate_trace(
                MicrobenchConfig(priority_mode=PriorityMode.DESCENDING, **base)
            )
        ]
        assert descending == sorted(descending, reverse=True)
        uniform = {
            t.flow_mod.rule.priority
            for t in generate_trace(
                MicrobenchConfig(priority_mode=PriorityMode.UNIFORM, **base)
            )
        }
        assert len(uniform) == 1

    def test_reproducible_with_seed(self):
        config = MicrobenchConfig(arrival_rate=100, duration=0.5, overlap_rate=0.5)
        first = [
            (t.time, str(t.flow_mod.rule.match)) for t in generate_trace(config)
        ]
        second = [
            (t.time, str(t.flow_mod.rule.match)) for t in generate_trace(config)
        ]
        assert first == second

    def test_validation(self):
        with pytest.raises(ValueError):
            MicrobenchConfig(arrival_rate=0)
        with pytest.raises(ValueError):
            MicrobenchConfig(overlap_rate=1.5)
        with pytest.raises(ValueError):
            MicrobenchConfig(duration=-1)
