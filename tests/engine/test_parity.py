"""Behavior-preservation tests for the kernel re-seat.

The digests below were captured at the pre-refactor seed HEAD (the legacy
``Simulation`` with its private heap and per-layer ``now`` cursors).  The
kernel-backed simulator must reproduce them byte-for-byte — metrics AND
golden trace — with zero tolerance.  Each scenario runs in a fresh
subprocess because rule ids come from a process-global counter.
"""

import hashlib
import json
import os
import subprocess
import sys

import pytest

# sha256 digests captured from the pre-kernel simulator (seed HEAD).
FIG01_DIGEST = "ad529ed5085c6c101dd7cb84eb3e514d8b7ba6f74f6110f7d8b0893178e9ea1b"
FIG08_DIGEST = "48c45e3e7ef0a0d64e99b0835def7af97c0711ef10e7c3d2048caa5dffeb44d8"
CHAOS_RESULT_DIGEST = (
    "acbdc2d3d7e6aa00fe02c53b73b6aa8213ea634e2e4d8f3ee09eab7b8575c244"
)
CHAOS_TRACE_DIGEST = (
    "f9af0d1c220df4e67fdd252413ce0f9e8cc0b32694975bedfd5256ca55adaddb"
)

_SCENARIO_SCRIPT = r"""
import hashlib
import json
import sys

import numpy as np


def _digest(metrics) -> str:
    payload = json.dumps(
        [metrics.rits(), metrics.fcts(), sorted(metrics.jcts().items())]
    ).encode()
    return hashlib.sha256(payload).hexdigest()


def fig01():
    from repro.experiments.common import (
        WorkloadScale,
        default_hermes_config,
        facebook_workload,
        run_te_simulation,
        te_simulation_config,
    )

    scale = WorkloadScale(job_count=10)
    graph, flows, _short, _long = facebook_workload(scale)
    config = te_simulation_config(scale)
    naive, _ = run_te_simulation(
        graph, flows, "naive", "pica8-p3290", config=config
    )
    hermes, _ = run_te_simulation(
        graph,
        flows,
        "hermes",
        "pica8-p3290",
        hermes_config=default_hermes_config(),
        config=config,
    )
    return hashlib.sha256(
        (_digest(naive) + _digest(hermes)).encode()
    ).hexdigest(), None


def fig08():
    from repro.experiments.common import (
        WorkloadScale,
        default_hermes_config,
        isp_workload,
        run_te_simulation,
        te_simulation_config,
    )

    scale = WorkloadScale(isp_flow_duration=3.0)
    graph, flows = isp_workload("geant", scale)
    config = te_simulation_config(scale, control_rtt=10e-3)
    metrics, _ = run_te_simulation(
        graph,
        flows,
        "hermes",
        "pica8-p3290",
        hermes_config=default_hermes_config(),
        config=config,
    )
    return _digest(metrics), None


def chaos():
    from repro.baselines import make_installer
    from repro.experiments.common import default_hermes_config
    from repro.faults import FaultInjector, FaultPlan, FlowModFault
    from repro.obs import RecordingTracer, trace_lines, use_tracer
    from repro.simulator import Simulation, SimulationConfig, TeAppConfig
    from repro.switchsim import ChannelConfig
    from repro.tcam import get_switch_model
    from repro.topology import FatTreeSpec, build_fat_tree, hosts
    from repro.traffic import flows_of, generate_jobs

    graph = build_fat_tree(FatTreeSpec(k=4, link_capacity=1e9))
    flows = flows_of(
        generate_jobs(
            hosts(graph), job_count=4, arrival_rate=6.0,
            rng=np.random.default_rng(13),
        )
    )
    plan = FaultPlan(flowmod=FlowModFault(drop=0.1, ack_loss_fraction=0.3))
    injector = FaultInjector(plan=plan, seed=13)
    config = SimulationConfig(
        te=TeAppConfig(epoch=0.25),
        baseline_occupancy=200,
        max_time=2.5,
        channel="resilient",
        channel_config=ChannelConfig(),
        fault_plan=plan,
        fault_seed=13,
    )
    timing = get_switch_model("pica8-p3290")
    hermes_config = default_hermes_config()
    factory = lambda name: make_installer(
        "hermes", timing, hermes_config=hermes_config, injector=injector
    )
    tracer = RecordingTracer(meta={"scenario": "engine-parity"})
    with use_tracer(tracer):
        simulation = Simulation(
            graph, flows, factory, config, injector=injector
        )
        metrics = simulation.run()
    trace_payload = "\n".join(trace_lines(tracer)).encode()
    return _digest(metrics), hashlib.sha256(trace_payload).hexdigest()


name = sys.argv[1]
result, trace = {"fig01": fig01, "fig08": fig08, "chaos": chaos}[name]()
print(json.dumps({"result": result, "trace": trace}))
"""

_EVENT_ORDER_SCRIPT = r"""
import json

from repro.engine import TIER_COMPLETION, EventScheduler, RngStreams

scheduler = EventScheduler()
rng = RngStreams(42).stream("event-order")
for index in range(200):
    time = round(float(rng.integers(0, 50)) * 0.25, 6)
    tier = TIER_COMPLETION if index % 7 == 0 else 1
    scheduler.schedule(time, f"kind-{index % 5}", payload=index, tier=tier)
lines = []
while scheduler:
    event = scheduler.pop()
    scheduler.clock.advance_to(event.time)
    lines.append(
        json.dumps(
            {
                "time": event.time,
                "tier": event.tier,
                "kind": event.kind,
                "payload": event.payload,
            },
            sort_keys=True,
        )
    )
print("\n".join(lines))
"""


def _run_script(script: str, *args: str) -> str:
    env = dict(os.environ)
    root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    env["PYTHONPATH"] = (
        os.path.join(root, "src") + os.pathsep + env.get("PYTHONPATH", "")
    )
    result = subprocess.run(
        [sys.executable, "-c", script, *args],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return result.stdout.strip()


def _scenario_digests(name: str) -> dict:
    return json.loads(_run_script(_SCENARIO_SCRIPT, name))


class TestPinnedDigests:
    """The kernel-backed simulator vs. the pre-refactor captures."""

    def test_fig01_byte_identical_to_seed(self):
        assert _scenario_digests("fig01")["result"] == FIG01_DIGEST

    def test_fig08_byte_identical_to_seed(self):
        assert _scenario_digests("fig08")["result"] == FIG08_DIGEST

    def test_traced_chaos_run_byte_identical_to_seed(self):
        digests = _scenario_digests("chaos")
        assert digests["result"] == CHAOS_RESULT_DIGEST
        assert digests["trace"] == CHAOS_TRACE_DIGEST

    def test_chaos_cross_process_determinism(self):
        # Two fresh interpreters, identical digests — the trace digest
        # covers every span/event/sample the run emitted.
        assert _scenario_digests("chaos") == _scenario_digests("chaos")


class TestGoldenEventOrder:
    def test_event_order_identical_across_interpreters(self):
        first = _run_script(_EVENT_ORDER_SCRIPT)
        second = _run_script(_EVENT_ORDER_SCRIPT)
        assert first == second
        records = [json.loads(line) for line in first.splitlines()]
        assert len(records) == 200
        # Order is (time, tier, seq): non-decreasing time, tiered ties,
        # and scheduling order within (time, tier).
        keys = [(r["time"], r["tier"], r["payload"]) for r in records]
        grouped = sorted(keys, key=lambda k: (k[0], k[1]))
        assert keys == grouped
        for (t1, tier1, seq1), (t2, tier2, seq2) in zip(keys, keys[1:]):
            if (t1, tier1) == (t2, tier2):
                assert seq1 < seq2

    def test_event_order_digest_is_stable(self):
        payload = _run_script(_EVENT_ORDER_SCRIPT).encode()
        digest = hashlib.sha256(payload).hexdigest()
        assert digest == hashlib.sha256(
            _run_script(_EVENT_ORDER_SCRIPT).encode()
        ).hexdigest()


@pytest.mark.parametrize("workers", [2])
class TestSweepParity:
    def test_sensitivity_parallel_matches_serial(self, workers):
        from repro.experiments.sensitivity import SensitivityConfig, run

        config = SensitivityConfig(duration=0.3)
        serial = run(config, workers=1)
        parallel = run(config, workers=workers)
        assert parallel.rows == serial.rows
        assert parallel.headers == serial.headers
