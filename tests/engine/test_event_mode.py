"""Tests for ``completion_mode="event"`` — kernel-scheduled completions.

Scan mode is the parity reference (byte-identical to the pre-kernel
simulator); event mode replaces the per-iteration O(active flows) ETA scan
with one scheduled completion per rate epoch.  The two agree *exactly*
whenever every dispatched event recomputes rates — i.e. pure
arrival/completion workloads — because then the scheduled ETA and the
scanned ETA are the same float expression.  With interleaved
non-recomputing events (TE epochs) completions can move by rounding ulps,
so there event mode is held to determinism, not byte-parity with scan.
"""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.baselines import make_installer
from repro.simulator import Simulation, SimulationConfig, TeAppConfig
from repro.tcam import get_switch_model
from repro.topology import FatTreeSpec, build_fat_tree, hosts
from repro.traffic import flows_of, generate_jobs


def _workload(job_count=8, seed=21):
    graph = build_fat_tree(FatTreeSpec(k=4, link_capacity=1e9))
    flows = flows_of(
        generate_jobs(
            hosts(graph),
            job_count=job_count,
            arrival_rate=6.0,
            rng=np.random.default_rng(seed),
        )
    )
    return graph, flows


def _run(config):
    graph, flows = _workload()
    timing = get_switch_model("pica8-p3290")
    factory = lambda name: make_installer("naive", timing)
    simulation = Simulation(graph, flows, factory, config)
    metrics = simulation.run()
    return metrics, simulation


def _no_te_config(completion_mode):
    # TE epoch far beyond the workload: no epochs fire, so every
    # dispatched event (arrival or completion) recomputes rates.
    return SimulationConfig(
        te=TeAppConfig(epoch=1e6),
        baseline_occupancy=0,
        completion_mode=completion_mode,
    )


class TestConfigValidation:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="completion_mode"):
            SimulationConfig(completion_mode="magic")

    def test_default_is_scan(self):
        assert SimulationConfig().completion_mode == "scan"


class TestScanEventEquality:
    def test_pure_arrival_completion_workload_is_byte_identical(self):
        scan_metrics, _ = _run(_no_te_config("scan"))
        event_metrics, _ = _run(_no_te_config("event"))
        assert event_metrics.fcts() == scan_metrics.fcts()
        # Job ids come from a process-global counter, so the second run's
        # keys are shifted; the completion times themselves must be equal.
        assert sorted(event_metrics.jcts().values()) == sorted(
            scan_metrics.jcts().values()
        )
        assert event_metrics.rits() == scan_metrics.rits()

    def test_event_mode_skips_stale_completions(self):
        # Every arrival recomputes rates and re-arms the completion event,
        # so all but the last epoch's events go stale — the run must still
        # complete every flow exactly once.
        scan_metrics, _ = _run(_no_te_config("scan"))
        event_metrics, simulation = _run(_no_te_config("event"))
        assert len(event_metrics.fcts()) == len(scan_metrics.fcts())
        assert not simulation._active


class TestEventModeWithTe:
    def test_te_workload_matches_scan_within_tolerance(self):
        config_scan = SimulationConfig(
            te=TeAppConfig(epoch=0.25),
            baseline_occupancy=50,
            max_time=3.0,
            completion_mode="scan",
        )
        config_event = SimulationConfig(
            te=TeAppConfig(epoch=0.25),
            baseline_occupancy=50,
            max_time=3.0,
            completion_mode="event",
        )
        scan_metrics, _ = _run(config_scan)
        event_metrics, _ = _run(config_event)
        assert len(event_metrics.fcts()) == len(scan_metrics.fcts())
        assert np.allclose(
            sorted(event_metrics.fcts()), sorted(scan_metrics.fcts())
        )


_EVENT_DIGEST_SCRIPT = r"""
import hashlib
import json

import numpy as np

from repro.baselines import make_installer
from repro.experiments.common import default_hermes_config
from repro.simulator import Simulation, SimulationConfig, TeAppConfig
from repro.tcam import get_switch_model
from repro.topology import FatTreeSpec, build_fat_tree, hosts
from repro.traffic import flows_of, generate_jobs

graph = build_fat_tree(FatTreeSpec(k=4, link_capacity=1e9))
flows = flows_of(
    generate_jobs(
        hosts(graph), job_count=6, arrival_rate=6.0,
        rng=np.random.default_rng(17),
    )
)
config = SimulationConfig(
    te=TeAppConfig(epoch=0.25),
    baseline_occupancy=100,
    max_time=3.0,
    completion_mode="event",
)
timing = get_switch_model("pica8-p3290")
hermes_config = default_hermes_config()
factory = lambda name: make_installer(
    "hermes", timing, hermes_config=hermes_config
)
metrics = Simulation(graph, flows, factory, config).run()
payload = json.dumps(
    [metrics.rits(), metrics.fcts(), sorted(metrics.jcts().items())]
).encode()
print(hashlib.sha256(payload).hexdigest())
"""


def _event_digest() -> str:
    env = dict(os.environ)
    root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    env["PYTHONPATH"] = (
        os.path.join(root, "src") + os.pathsep + env.get("PYTHONPATH", "")
    )
    result = subprocess.run(
        [sys.executable, "-c", _EVENT_DIGEST_SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return result.stdout.strip()


class TestEventModeDeterminism:
    def test_cross_process_digest_identical(self):
        assert _event_digest() == _event_digest()
