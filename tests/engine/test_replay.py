"""End-to-end tests for trace-driven replay (repro.engine.replay).

A traced simulation run is recorded, written as ``hermes-trace/1``,
reconstructed into a timed workload, and re-executed on the kernel clock.
The replayed trace must diff cleanly against the original with ``python -m
repro.obs diff``, and the ``python -m repro.engine replay`` CLI must close
the same loop from the command line.
"""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.baselines import make_installer
from repro.engine.replay import (
    ReplayAction,
    actions_from_records,
    reconstruct_workload,
    replay_file,
    replay_records,
)
from repro.experiments.common import default_hermes_config
from repro.obs import RecordingTracer, read_trace, use_tracer, write_trace
from repro.simulator import Simulation, SimulationConfig, TeAppConfig
from repro.tcam import get_switch_model
from repro.topology import FatTreeSpec, build_fat_tree, hosts
from repro.traffic import flows_of, generate_jobs


def _record_run(tmp_path):
    """Run a small traced hermes simulation and write its trace."""
    graph = build_fat_tree(FatTreeSpec(k=4, link_capacity=1e9))
    flows = flows_of(
        generate_jobs(
            hosts(graph),
            job_count=4,
            arrival_rate=6.0,
            rng=np.random.default_rng(23),
        )
    )
    config = SimulationConfig(
        te=TeAppConfig(epoch=0.25),
        baseline_occupancy=0,
        max_time=2.0,
        # Reactive routing punts every arrival to the controller, so the
        # trace records an agent.action span per installed FlowMod.
        routing_mode="reactive",
    )
    timing = get_switch_model("pica8-p3290")
    hermes_config = default_hermes_config()
    factory = lambda name: make_installer(
        "hermes", timing, hermes_config=hermes_config
    )
    tracer = RecordingTracer(meta={"scenario": "replay-test"})
    with use_tracer(tracer):
        Simulation(graph, flows, factory, config).run()
    trace_path = str(tmp_path / "original.jsonl")
    write_trace(tracer, trace_path)
    return trace_path


@pytest.fixture(scope="module")
def recorded_trace(tmp_path_factory):
    return _record_run(tmp_path_factory.mktemp("replay"))


class TestWorkloadReconstruction:
    def test_actions_are_time_ordered_agent_spans(self, recorded_trace):
        _, records = read_trace(recorded_trace)
        actions = actions_from_records(records)
        assert actions, "the traced run must have recorded agent actions"
        assert all(isinstance(action, ReplayAction) for action in actions)
        times = [action.time for action in actions]
        assert times == sorted(times)
        assert {action.command for action in actions} <= {
            "add",
            "modify",
            "delete",
        }

    def test_workload_covers_every_action(self, recorded_trace):
        _, records = read_trace(recorded_trace)
        actions = actions_from_records(records)
        workloads, skipped = reconstruct_workload(records)
        rebuilt = sum(len(timeline) for timeline in workloads.values())
        assert rebuilt + skipped == len(actions)
        for timeline in workloads.values():
            times = [timed.time for timed in timeline]
            assert times == sorted(times)

    def test_delete_without_prior_add_is_skipped(self):
        records = [
            {
                "type": "span",
                "name": "agent.action",
                "start": 0.5,
                "attrs": {"switch": "s1", "command": "delete"},
            }
        ]
        workloads, skipped = reconstruct_workload(records)
        assert skipped == 1
        assert workloads == {"s1": []}


class TestReplayExecution:
    def test_replay_runs_to_completion(self, recorded_trace):
        report = replay_file(recorded_trace, "hermes", "pica8-p3290",
                             hermes_config=default_hermes_config())
        assert report.executed > 0
        assert report.executed + report.skipped == len(report.actions)
        assert len(report.response_times) == report.executed
        assert all(rt >= 0.0 for rt in report.response_times)
        assert report.switches

    def test_replay_is_deterministic(self, recorded_trace):
        first = replay_records(
            read_trace(recorded_trace)[1], "naive", "pica8-p3290", seed=3
        )
        second = replay_records(
            read_trace(recorded_trace)[1], "naive", "pica8-p3290", seed=3
        )
        assert first.response_times == second.response_times

    def test_replay_against_other_scheme_and_model(self, recorded_trace):
        # The recorded workload re-executes against any scheme/model pair.
        report = replay_file(recorded_trace, "naive", "dell-8132f")
        assert report.executed > 0

    def test_replayed_trace_diffs_against_original(
        self, recorded_trace, tmp_path
    ):
        out_path = str(tmp_path / "replayed.jsonl")
        report = replay_file(
            recorded_trace,
            "hermes",
            "pica8-p3290",
            out_path=out_path,
            hermes_config=default_hermes_config(),
        )
        assert report.tracer is not None
        header, records = read_trace(out_path)
        assert header["meta"]["replay_of"] == recorded_trace
        assert sum(
            1
            for record in records
            if record.get("type") == "span"
            and record.get("name") == "agent.action"
        ) == report.executed
        completed = _run_cli(
            "-m", "repro.obs", "diff", recorded_trace, out_path
        )
        assert completed.returncode == 0
        assert "installed FlowMods" in completed.stdout


def _run_cli(*args):
    env = dict(os.environ)
    root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    env["PYTHONPATH"] = (
        os.path.join(root, "src") + os.pathsep + env.get("PYTHONPATH", "")
    )
    return subprocess.run(
        [sys.executable, *args], capture_output=True, text=True, env=env
    )


class TestReplayCli:
    def test_cli_replays_and_writes_trace(self, recorded_trace, tmp_path):
        out_path = str(tmp_path / "cli-replayed.jsonl")
        completed = _run_cli(
            "-m",
            "repro.engine",
            "replay",
            recorded_trace,
            "--scheme",
            "naive",
            "--switch",
            "pica8-p3290",
            "--out",
            out_path,
        )
        assert completed.returncode == 0, completed.stderr
        assert "replayed" in completed.stdout
        assert os.path.exists(out_path)
        header, _ = read_trace(out_path)
        assert header["meta"]["scheme"] == "naive"
