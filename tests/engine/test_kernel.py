"""Unit tests for the discrete-event kernel (repro.engine).

The kernel's contract is deterministic ordering: events dispatch in
``(time, tier, seq)`` order, named RNG streams reproduce the legacy
closure-counter seed derivation byte-for-byte, and sweep results merge in
task order no matter how many workers ran them.
"""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.engine import (
    TIER_COMPLETION,
    Clock,
    EventScheduler,
    RngStreams,
    SerialResource,
    SweepRunner,
    SweepTask,
    child_seed,
    write_bench,
)


class TestClock:
    def test_starts_at_zero_and_advances(self):
        clock = Clock()
        assert clock.now == 0.0
        assert clock.advance_to(2.5) == 2.5
        assert clock.now == 2.5

    def test_advancing_to_now_is_a_noop(self):
        clock = Clock(start=1.0)
        clock.advance_to(1.0)
        assert clock.now == 1.0

    def test_backwards_raises(self):
        clock = Clock()
        clock.advance_to(5.0)
        with pytest.raises(ValueError):
            clock.advance_to(4.999)


class TestSerialResource:
    def test_work_at_idle_starts_immediately(self):
        cpu = SerialResource()
        assert cpu.start_time(3.0) == 3.0
        assert cpu.acquire(3.0, duration=2.0) == 3.0
        assert cpu.free_at == 5.0

    def test_work_queues_behind_busy_horizon(self):
        cpu = SerialResource()
        cpu.acquire(0.0, duration=4.0)
        assert cpu.start_time(1.0) == 4.0
        assert cpu.acquire(1.0, duration=1.0) == 4.0
        assert cpu.free_at == 5.0

    def test_occupy_until_never_moves_backwards(self):
        cpu = SerialResource()
        cpu.occupy_until(10.0)
        cpu.occupy_until(7.0)
        assert cpu.free_at == 10.0

    def test_stall_matches_injector_semantics(self):
        # The fault injector's CPU stall: max(free_at, at_time) + duration.
        cpu = SerialResource()
        cpu.stall(2.0, duration=1.0)
        assert cpu.free_at == 3.0
        cpu.stall(1.0, duration=0.5)  # already busy past 1.0
        assert cpu.free_at == 3.5


class TestEventScheduler:
    def test_time_order(self):
        scheduler = EventScheduler()
        scheduler.schedule(3.0, "c")
        scheduler.schedule(1.0, "a")
        scheduler.schedule(2.0, "b")
        assert [scheduler.pop().kind for _ in range(3)] == ["a", "b", "c"]

    def test_same_time_ties_break_by_scheduling_order(self):
        # The legacy simulator heap was (time, seq, ...): same-instant
        # events fire in the order they were scheduled.
        scheduler = EventScheduler()
        for index in range(10):
            scheduler.schedule(1.0, f"event-{index}")
        assert [scheduler.pop().kind for _ in range(10)] == [
            f"event-{index}" for index in range(10)
        ]

    def test_completion_tier_beats_same_time_default(self):
        scheduler = EventScheduler()
        scheduler.schedule(1.0, "epoch")
        scheduler.schedule(1.0, "complete", tier=TIER_COMPLETION)
        assert scheduler.pop().kind == "complete"
        assert scheduler.pop().kind == "epoch"

    def test_scheduling_into_the_past_raises(self):
        scheduler = EventScheduler()
        scheduler.clock.advance_to(5.0)
        with pytest.raises(ValueError):
            scheduler.schedule(4.0, "late")
        scheduler.schedule(5.0, "now-is-fine")

    def test_peek_pop_next_time_pending(self):
        scheduler = EventScheduler()
        assert scheduler.peek() is None
        assert math.isinf(scheduler.next_time())
        assert not scheduler
        scheduler.schedule(2.0, "x", payload=("p",))
        assert scheduler.peek().kind == "x"
        assert scheduler.next_time() == 2.0
        assert scheduler.pending(("x", "y"))
        assert not scheduler.pending(("y",))
        event = scheduler.pop()
        assert event.payload == ("p",)
        assert len(scheduler) == 0

    def test_pop_does_not_advance_clock(self):
        scheduler = EventScheduler()
        scheduler.schedule(2.0, "x")
        scheduler.pop()
        assert scheduler.clock.now == 0.0

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["switch-a", "switch-b"]),
                st.floats(
                    min_value=0.0,
                    max_value=10.0,
                    allow_nan=False,
                    allow_infinity=False,
                ),
            ),
            max_size=40,
        )
    )
    def test_interleaving_two_timelines_never_reorders_ties(self, entries):
        # Two switch timelines scheduled into one kernel queue: events
        # come out time-sorted, and same-timestamp events preserve
        # scheduling order regardless of which timeline they belong to.
        scheduler = EventScheduler()
        for index, (switch, time) in enumerate(entries):
            scheduler.schedule(time, switch, payload=index)
        popped = [scheduler.pop() for _ in range(len(entries))]
        assert [e.time for e in popped] == sorted(e.time for e in popped)
        for first, second in zip(popped, popped[1:]):
            if first.time == second.time:
                assert first.payload < second.payload


def _dispatch_order(insertion_order, tiers):
    """Dispatch same-instant events inserted in ``insertion_order``."""
    scheduler = EventScheduler()
    for ident in insertion_order:
        scheduler.schedule(1.0, f"event-{ident}", payload=ident, tier=tiers[ident])
    return [scheduler.pop().payload for _ in insertion_order]


_TIE_N = 6


class TestTieBreakInvariance:
    """What the seq tie-break does and does not decide.

    Cross-tier order is part of the model: permuting insertion never
    changes it.  Same-tier order is *only* the tie-break: it tracks
    insertion order exactly, which is why two same-``(time, tier)``
    events with conflicting accesses are a schedule-order race — the
    hazard the sanitizer (:mod:`repro.analysis.races`) reports, and the
    planted-race fixture under ``tests/analysis/fixtures/`` exercises.
    """

    @given(
        tiers=st.lists(
            st.sampled_from([TIER_COMPLETION, 1]),
            min_size=_TIE_N,
            max_size=_TIE_N,
        ),
        permuted=st.permutations(list(range(_TIE_N))),
    )
    def test_cross_tier_order_never_depends_on_insertion(self, tiers, permuted):
        baseline = _dispatch_order(list(range(_TIE_N)), tiers)
        shuffled = _dispatch_order(permuted, tiers)
        position_b = {ident: i for i, ident in enumerate(baseline)}
        position_s = {ident: i for i, ident in enumerate(shuffled)}
        for a in range(_TIE_N):
            for b in range(a + 1, _TIE_N):
                if tiers[a] != tiers[b]:
                    assert (position_b[a] < position_b[b]) == (
                        position_s[a] < position_s[b]
                    )

    @given(
        tiers=st.lists(
            st.sampled_from([TIER_COMPLETION, 1]),
            min_size=_TIE_N,
            max_size=_TIE_N,
        ),
        permuted=st.permutations(list(range(_TIE_N))),
    )
    def test_same_tier_order_is_exactly_insertion_order(self, tiers, permuted):
        for insertion in (list(range(_TIE_N)), permuted):
            dispatched = _dispatch_order(insertion, tiers)
            for tier in (TIER_COMPLETION, 1):
                expected = [i for i in insertion if tiers[i] == tier]
                observed = [i for i in dispatched if tiers[i] == tier]
                assert observed == expected

    @given(permuted=st.permutations([0, 1]))
    def test_sanitizer_flags_exactly_the_seq_decided_conflicts(self, permuted):
        from repro.analysis.races import RaceSanitizer

        # Same tier: the pair's order is seq-decided, so a conflicting
        # write pair is a race.  Different tiers: ordered, no race.
        for tier_b, expected_races in ((1, 1), (TIER_COMPLETION, 0)):
            tiers = {0: 1, 1: tier_b}
            scheduler = EventScheduler()
            sanitizer = RaceSanitizer()
            sanitizer.watch_scheduler(scheduler)
            for ident in permuted:
                scheduler.schedule(
                    1.0, f"event-{ident}", payload=ident, tier=tiers[ident]
                )
            for _ in range(2):
                scheduler.pop()
                sanitizer.record_write("shared-key")
            sanitizer.finish()
            assert len(sanitizer.races) == expected_races


class TestRngStreams:
    def test_matches_legacy_closure_counter_derivation(self):
        # The n-th distinct stream must be default_rng(seed + n) — the
        # exact sequence the experiment layer's counter hack produced.
        streams = RngStreams(100)
        for n, name in enumerate(["installer:s1", "installer:s2", "x"], 1):
            expected = np.random.default_rng(100 + n)
            assert streams.stream(name).random() == expected.random()

    def test_streams_are_cached_by_name(self):
        streams = RngStreams(7)
        assert streams.stream("a") is streams.stream("a")
        assert streams.ordinal("a") == 1
        assert streams.ordinal("b") == 2
        assert streams.names() == ["a", "b"]

    def test_spawn_gives_decorrelated_deterministic_children(self):
        parent = RngStreams(5)
        child_a = parent.spawn(0)
        child_b = parent.spawn(1)
        assert child_a.seed == child_seed(5, 0)
        assert child_a.seed != child_b.seed
        assert parent.spawn(0).seed == child_a.seed

    def test_child_seed_is_stable_and_non_negative(self):
        assert child_seed(5, 0) == child_seed(5, 0)
        assert child_seed(5, 0) != child_seed(5, 1)
        assert child_seed(5, 0) >= 0


def _square(value):
    return value * value


def _fail(value):
    raise RuntimeError(f"boom {value}")


class TestSweepRunner:
    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            SweepRunner(workers=0)

    def test_serial_map_is_a_plain_loop(self):
        assert SweepRunner().map(_square, [(2,), (3,), (4,)]) == [4, 9, 16]

    def test_parallel_map_merges_in_task_order(self):
        serial = SweepRunner(workers=1).map(_square, [(n,) for n in range(8)])
        parallel = SweepRunner(workers=2).map(
            _square, [(n,) for n in range(8)]
        )
        assert parallel == serial

    def test_run_reports_labels_workers_and_timing(self):
        outcome = SweepRunner(workers=1).run(
            [
                SweepTask(func=_square, args=(3,), label="three"),
                SweepTask(func=_square, args=(4,), label="four"),
            ]
        )
        assert outcome.results == [9, 16]
        assert outcome.labels == ["three", "four"]
        assert outcome.workers == 1
        assert outcome.elapsed_seconds >= 0.0

    def test_task_errors_propagate(self):
        with pytest.raises(RuntimeError, match="boom"):
            SweepRunner(workers=1).map(_fail, [(1,)])
        with pytest.raises(RuntimeError, match="boom"):
            SweepRunner(workers=2).map(_fail, [(1,), (2,)])

    def test_chunksize_must_be_positive(self):
        with pytest.raises(ValueError):
            SweepRunner(workers=2, chunksize=0)

    def test_explicit_chunksize_preserves_task_order(self):
        serial = SweepRunner(workers=1).map(_square, [(n,) for n in range(9)])
        chunked = SweepRunner(workers=2, chunksize=4).map(
            _square, [(n,) for n in range(9)]
        )
        assert chunked == serial

    def test_auto_chunksize_batches_tasks(self):
        # 2 workers -> ~8 chunks; 100 tasks -> 13 per chunk, not 1.
        assert SweepRunner(workers=2)._chunk_size_for(100) == 13
        assert SweepRunner(workers=2)._chunk_size_for(3) == 1
        assert SweepRunner(workers=2, chunksize=5)._chunk_size_for(100) == 5

    def test_chunked_run_preserves_heterogeneous_order(self):
        tasks = [
            SweepTask(func=_square, args=(n,), label=f"t{n}") for n in range(7)
        ]
        outcome = SweepRunner(workers=2, chunksize=3).run(tasks)
        assert outcome.results == [n * n for n in range(7)]
        assert outcome.labels == [f"t{n}" for n in range(7)]


class TestWriteBench:
    def test_writes_format_tagged_json(self, tmp_path):
        target = tmp_path / "results" / "BENCH_engine.json"
        path = write_bench(
            str(target), "hermes-engine-bench/1", {"rows": [1, 2]}
        )
        import json

        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        assert document["format"] == "hermes-engine-bench/1"
        assert document["rows"] == [1, 2]
