"""Stateful (model-based) testing of the TCAM table.

A hypothesis rule-based state machine drives random insert / delete /
modify / lookup sequences against :class:`TcamTable` while maintaining a
simple dict model, checking after every step that the physical invariants
hold: descending-priority order, id-index consistency, occupancy bounds,
and lookup agreement with the model.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.tcam import Action, Prefix, Rule, TcamTable, pica8_p3290

CAPACITY = 24

prefix_strategy = st.builds(
    lambda bits, length: Prefix(
        ((10 << 24) | (bits << (32 - length)))
        & (((1 << length) - 1) << (32 - length)),
        length,
    ),
    bits=st.integers(min_value=0, max_value=255),
    length=st.integers(min_value=8, max_value=16),
)


class TcamTableMachine(RuleBasedStateMachine):
    """Random operation sequences against a model dict."""

    @initialize()
    def setup(self) -> None:
        self.table = TcamTable(pica8_p3290(), capacity=CAPACITY)
        self.model = {}  # rule_id -> Rule

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    @rule(
        prefix=prefix_strategy,
        priority=st.integers(min_value=1, max_value=60),
        port=st.integers(min_value=1, max_value=8),
    )
    def insert(self, prefix, priority, port):
        new_rule = Rule.from_prefix(prefix, priority, Action.output(port))
        if self.table.is_full:
            from repro.tcam import TableFullError

            try:
                self.table.insert(new_rule)
                raise AssertionError("full table accepted an insert")
            except TableFullError:
                return
        result = self.table.insert(new_rule)
        assert result.latency > 0
        assert 0 <= result.shifts <= len(self.model)
        self.model[new_rule.rule_id] = new_rule

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def delete(self, data):
        rule_id = data.draw(st.sampled_from(sorted(self.model)))
        self.table.delete(rule_id)
        del self.model[rule_id]

    @precondition(lambda self: self.model)
    @rule(data=st.data(), port=st.integers(min_value=1, max_value=8))
    def modify_action(self, data, port):
        rule_id = data.draw(st.sampled_from(sorted(self.model)))
        self.table.modify(rule_id, action=Action.output(port))
        old = self.model[rule_id]
        self.model[rule_id] = Rule(
            match=old.match,
            priority=old.priority,
            action=Action.output(port),
            rule_id=old.rule_id,
            origin_id=old.origin_id,
        )

    @rule(address=st.integers(min_value=0, max_value=(1 << 32) - 1))
    def lookup(self, address):
        hit = self.table.lookup(address)
        candidates = [
            r for r in self.model.values() if r.match.matches(address)
        ]
        if not candidates:
            assert hit is None
            return
        assert hit is not None
        best_priority = max(r.priority for r in candidates)
        # Equal-priority ties are broken by physical order; the hit must at
        # least carry the winning priority.
        assert hit.priority == best_priority
        assert hit.rule_id in self.model

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    @invariant()
    def physical_order_is_descending_priority(self):
        if not hasattr(self, "table"):
            return
        priorities = [r.priority for r in self.table.rules()]
        assert priorities == sorted(priorities, reverse=True)

    @invariant()
    def occupancy_matches_model(self):
        if not hasattr(self, "table"):
            return
        assert self.table.occupancy == len(self.model)
        assert self.table.occupancy <= self.table.capacity
        for rule_id in self.model:
            assert rule_id in self.table

    @invariant()
    def stats_are_consistent(self):
        if not hasattr(self, "table"):
            return
        stats = self.table.stats
        assert stats.insertions >= len(self.model)
        assert stats.insertions - stats.deletions == len(self.model)


TestTcamTableStateful = TcamTableMachine.TestCase
TestTcamTableStateful.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None, derandomize=True
)
