"""Tests for the empirical timing models and switch registry."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.tcam import (
    EmpiricalTimingModel,
    InsertOrder,
    commodity_switch_models,
    dell_8132f,
    get_switch_model,
    hp_5406zl,
    ideal_switch,
    pica8_p3290,
)

# Table 1 of the paper: occupancy -> updates per second.
PICA8_TABLE1 = {50: 1266.0, 200: 114.0, 1000: 23.0, 2000: 12.0}
DELL_TABLE1 = {50: 970.0, 250: 494.0, 500: 42.0, 750: 29.0}


class TestTable1Calibration:
    @pytest.mark.parametrize("occupancy,rate", sorted(PICA8_TABLE1.items()))
    def test_pica8_matches_published_rates(self, occupancy, rate):
        model = pica8_p3290()
        assert model.update_rate(occupancy) == pytest.approx(rate, rel=1e-6)

    @pytest.mark.parametrize("occupancy,rate", sorted(DELL_TABLE1.items()))
    def test_dell_matches_published_rates(self, occupancy, rate):
        model = dell_8132f()
        assert model.update_rate(occupancy) == pytest.approx(rate, rel=1e-6)

    def test_pica8_vs_dell_at_50_entries(self):
        # Paper Section 2.1.1: at 50 entries, Pica8 supports ~1266 updates/s
        # and Dell ~970: "more than 23% difference".
        ratio = pica8_p3290().update_rate(50) / dell_8132f().update_rate(50)
        assert ratio > 1.23

    def test_dell_occupancy_cliff(self):
        # Paper: inserting with 250 resident rules is >10x faster than 500.
        model = dell_8132f()
        assert model.update_rate(250) / model.update_rate(500) > 10


class TestInterpolation:
    def test_latency_monotone_in_occupancy(self):
        model = pica8_p3290()
        latencies = [model.base_insertion_latency(n) for n in range(0, 2500, 25)]
        assert all(b >= a for a, b in zip(latencies, latencies[1:]))

    def test_extrapolation_beyond_last_point(self):
        model = pica8_p3290()
        assert model.base_insertion_latency(2500) > model.base_insertion_latency(2000)

    def test_extrapolation_capped_at_capacity(self):
        model = pica8_p3290()
        at_capacity = model.base_insertion_latency(model.capacity)
        assert model.base_insertion_latency(model.capacity * 10) == at_capacity

    def test_empty_table_latency_positive(self):
        assert pica8_p3290().base_insertion_latency(0) > 0

    def test_decreasing_latency_points_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalTimingModel(
                name="bogus",
                capacity=100,
                occupancy_latency_points=[(10, 2e-3), (50, 1e-3)],
            )

    def test_empty_points_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalTimingModel(name="bogus", capacity=100, occupancy_latency_points=[])

    def test_negative_occupancy_rejected(self):
        with pytest.raises(ValueError):
            pica8_p3290().base_insertion_latency(-1)


class TestPenalties:
    def test_priority_free_append_is_cheaper(self):
        model = pica8_p3290()
        shifting = model.insertion_latency(500, shifts=500)
        appending = model.insertion_latency(500, shifts=0)
        assert shifting / appending == pytest.approx(model.priority_penalty)

    def test_partial_shift_between_floor_and_full(self):
        model = pica8_p3290()
        full = model.insertion_latency(500, shifts=500)
        half = model.insertion_latency(500, shifts=250)
        none = model.insertion_latency(500, shifts=0)
        assert none < half < full

    def test_descending_order_penalty(self):
        model = pica8_p3290()
        ascending = model.insertion_latency(500, order=InsertOrder.ASCENDING)
        descending = model.insertion_latency(500, order=InsertOrder.DESCENDING)
        assert descending / ascending == pytest.approx(10.0)

    def test_noise_is_reproducible_with_seed(self):
        model = pica8_p3290()
        a = model.insertion_latency(100, rng=np.random.default_rng(7))
        b = model.insertion_latency(100, rng=np.random.default_rng(7))
        assert a == b


class TestGuaranteeSizing:
    @pytest.mark.parametrize("model_factory", [pica8_p3290, dell_8132f, hp_5406zl])
    @pytest.mark.parametrize("guarantee_ms", [1.0, 5.0, 10.0])
    def test_sizing_respects_guarantee(self, model_factory, guarantee_ms):
        model = model_factory()
        budget = guarantee_ms / 1e3
        occupancy = model.max_occupancy_for_guarantee(budget)
        assert model.worst_case_insertion_latency(occupancy) <= budget
        if occupancy < model.capacity:
            assert model.worst_case_insertion_latency(occupancy + 1) > budget

    def test_tighter_guarantee_smaller_shadow(self):
        model = pica8_p3290()
        assert model.max_occupancy_for_guarantee(1e-3) < model.max_occupancy_for_guarantee(
            10e-3
        )

    def test_impossible_guarantee_gives_zero(self):
        assert pica8_p3290().max_occupancy_for_guarantee(1e-9) == 0

    def test_paper_headline_overhead(self):
        # Abstract: "with less than 5% overheads, Hermes provides 5ms
        # insertion guarantees" — holds for the Pica8 model.
        model = pica8_p3290()
        shadow = model.max_occupancy_for_guarantee(5e-3)
        assert 0 < shadow / model.capacity < 0.05

    @given(st.floats(min_value=1e-4, max_value=0.2))
    def test_sizing_monotone_in_budget(self, budget):
        model = dell_8132f()
        smaller = model.max_occupancy_for_guarantee(budget / 2)
        larger = model.max_occupancy_for_guarantee(budget)
        assert smaller <= larger


class TestOtherActions:
    def test_deletion_fast_and_constant(self):
        model = pica8_p3290()
        assert model.deletion_latency() < model.base_insertion_latency(500)
        assert model.deletion_latency() == model.deletion_latency()

    def test_modification_constant(self):
        model = pica8_p3290()
        assert model.modification_latency() == pytest.approx(model.modify_latency)


class TestIdealSwitch:
    def test_zero_latency(self):
        model = ideal_switch()
        assert model.base_insertion_latency(1000) == 0.0
        assert model.deletion_latency() == 0.0
        assert model.update_rate(100) == math.inf

    def test_guarantee_always_met(self):
        model = ideal_switch()
        assert model.max_occupancy_for_guarantee(1e-9) == model.capacity


class TestRegistry:
    def test_lookup_by_name_variants(self):
        assert get_switch_model("Pica8 P3290").name == "Pica8 P-3290"
        assert get_switch_model("dell_8132f").name == "Dell 8132F"
        assert get_switch_model("HP-5406ZL").name == "HP 5406zl"

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            get_switch_model("cisco-9000")

    def test_commodity_models_are_fresh_instances(self):
        first = commodity_switch_models()
        second = commodity_switch_models()
        assert [m.name for m in first] == [m.name for m in second]
        assert all(a is not b for a, b in zip(first, second))
