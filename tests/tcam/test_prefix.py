"""Unit and property tests for IPv4 prefix algebra."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.tcam.prefix import (
    MAX_PREFIX_LEN,
    Prefix,
    covers_same_addresses,
    merge_prefixes,
)


def P(text):
    return Prefix.from_string(text)


@st.composite
def prefixes(draw, max_length=MAX_PREFIX_LEN):
    length = draw(st.integers(min_value=0, max_value=max_length))
    network = draw(st.integers(min_value=0, max_value=(1 << 32) - 1))
    mask = ((1 << length) - 1) << (32 - length) if length else 0
    return Prefix(network & mask, length)


class TestConstruction:
    def test_from_string_roundtrip(self):
        assert str(P("192.168.1.0/24")) == "192.168.1.0/24"

    def test_bare_address_is_host_prefix(self):
        assert P("10.0.0.1").length == 32

    def test_default_route(self):
        assert Prefix.default_route() == P("0.0.0.0/0")

    def test_host_bits_rejected(self):
        with pytest.raises(ValueError):
            Prefix(P("10.0.0.1").network, 8)

    def test_bad_length_rejected(self):
        with pytest.raises(ValueError):
            Prefix(0, 33)

    def test_bad_octet_rejected(self):
        with pytest.raises(ValueError):
            P("300.0.0.0/8")

    def test_malformed_address_rejected(self):
        with pytest.raises(ValueError):
            P("10.0.0/8")


class TestRelations:
    def test_contains_child(self):
        assert P("10.0.0.0/8").contains(P("10.1.0.0/16"))

    def test_contains_is_reflexive(self):
        assert P("10.0.0.0/8").contains(P("10.0.0.0/8"))

    def test_child_does_not_contain_parent(self):
        assert not P("10.1.0.0/16").contains(P("10.0.0.0/8"))

    def test_disjoint_prefixes_do_not_overlap(self):
        assert not P("10.0.0.0/8").overlaps(P("11.0.0.0/8"))

    def test_overlap_is_containment_for_prefixes(self):
        assert P("10.0.0.0/8").overlaps(P("10.2.3.0/24"))

    def test_matches_addresses_inside(self):
        p = P("192.168.1.0/24")
        assert p.matches(P("192.168.1.77").network)
        assert not p.matches(P("192.168.2.1").network)

    def test_size(self):
        assert P("10.0.0.0/30").size == 4
        assert Prefix.default_route().size == 1 << 32

    def test_first_last_address(self):
        p = P("10.0.0.0/30")
        assert p.last_address - p.first_address == 3


class TestStructure:
    def test_split_children_partition_parent(self):
        parent = P("10.0.0.0/8")
        left, right = parent.split()
        assert left.size + right.size == parent.size
        assert parent.contains(left) and parent.contains(right)
        assert not left.overlaps(right)

    def test_split_host_prefix_fails(self):
        with pytest.raises(ValueError):
            P("1.2.3.4/32").split()

    def test_parent_of_child(self):
        assert P("10.128.0.0/9").parent() == P("10.0.0.0/8")

    def test_default_route_has_no_parent_or_sibling(self):
        with pytest.raises(ValueError):
            Prefix.default_route().parent()
        with pytest.raises(ValueError):
            Prefix.default_route().sibling()

    def test_siblings(self):
        left, right = P("10.0.0.0/8").split()
        assert left.sibling() == right
        assert left.is_sibling_of(right)
        assert not left.is_sibling_of(left)


class TestSubtract:
    def test_subtract_contained(self):
        result = P("192.168.1.0/24").subtract(P("192.168.1.0/26"))
        assert sorted(map(str, result)) == ["192.168.1.128/25", "192.168.1.64/26"]

    def test_subtract_disjoint_returns_self(self):
        p = P("10.0.0.0/8")
        assert p.subtract(P("11.0.0.0/8")) == [p]

    def test_subtract_containing_returns_empty(self):
        assert P("10.1.0.0/16").subtract(P("10.0.0.0/8")) == []

    def test_subtract_self_returns_empty(self):
        p = P("10.0.0.0/8")
        assert p.subtract(p) == []

    def test_subtract_all_multiple_holes(self):
        p = P("10.0.0.0/24")
        holes = [P("10.0.0.0/26"), P("10.0.0.128/26")]
        remainder = p.subtract_all(holes)
        for hole in holes:
            for fragment in remainder:
                assert not fragment.overlaps(hole)
        assert covers_same_addresses(remainder + holes, [p])

    @given(prefixes(max_length=24), st.data())
    def test_subtract_covers_exact_complement(self, parent, data):
        extra = data.draw(st.integers(min_value=0, max_value=32 - parent.length))
        child_length = parent.length + extra
        offset = data.draw(
            st.integers(min_value=0, max_value=(1 << (child_length - parent.length)) - 1)
        )
        child = Prefix(
            parent.network | (offset << (32 - child_length)), child_length
        )
        remainder = parent.subtract(child)
        # Fragments are disjoint from the hole and from each other.
        for fragment in remainder:
            assert not fragment.overlaps(child)
        assert covers_same_addresses(remainder + [child], [parent])


class TestMerge:
    def test_merge_siblings_into_parent(self):
        left, right = P("10.0.0.0/8").split()
        assert merge_prefixes([left, right]) == [P("10.0.0.0/8")]

    def test_merge_removes_contained(self):
        assert merge_prefixes([P("10.0.0.0/8"), P("10.1.0.0/16")]) == [P("10.0.0.0/8")]

    def test_merge_is_idempotent_on_disjoint(self):
        prefixes = [P("10.0.0.0/8"), P("11.0.0.0/8"), P("192.168.0.0/16")]
        # 10/8 and 11/8 are siblings and coalesce into 10.0.0.0/7.
        assert merge_prefixes(prefixes) == [P("10.0.0.0/7"), P("192.168.0.0/16")]

    def test_merge_empty(self):
        assert merge_prefixes([]) == []

    def test_merge_cascades_to_fixpoint(self):
        quarters = [
            P("10.0.0.0/10"),
            P("10.64.0.0/10"),
            P("10.128.0.0/10"),
            P("10.192.0.0/10"),
        ]
        assert merge_prefixes(quarters) == [P("10.0.0.0/8")]

    @given(st.lists(prefixes(), max_size=12))
    def test_merge_preserves_coverage(self, prefix_list):
        merged = merge_prefixes(prefix_list)
        assert covers_same_addresses(merged, prefix_list)

    @given(st.lists(prefixes(), max_size=12))
    def test_merge_never_grows(self, prefix_list):
        assert len(merge_prefixes(prefix_list)) <= max(1, len(set(prefix_list)))

    @given(st.lists(prefixes(), max_size=12))
    def test_merge_result_is_canonical_minimal(self, prefix_list):
        """The result has no containment and no sibling pair — the unique
        minimal prefix representation of the covered address set."""
        merged = merge_prefixes(prefix_list)
        as_set = set(merged)
        for prefix in merged:
            assert not any(
                other != prefix and other.contains(prefix) for other in merged
            )
            if prefix.length > 0:
                assert prefix.sibling() not in as_set

    @given(st.lists(prefixes(), max_size=12))
    def test_merge_is_idempotent(self, prefix_list):
        once = merge_prefixes(prefix_list)
        assert merge_prefixes(once) == once
